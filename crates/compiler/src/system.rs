//! System-level (chip-granularity) partitioning: the pass that runs
//! *before* the per-chip CG-level optimization when the architecture
//! integrates more than one chip.
//!
//! The condensed graph's dependency-preserving linearization is split
//! into one contiguous segment per chip. Contiguity keeps every cut edge
//! pointing forward (chip `k` only ever feeds chips `> k`), so a single
//! inference flows through the chips as a pipeline and consecutive
//! inferences overlap chip-by-chip. The split is chosen by dynamic
//! programming to minimize the bottleneck chip — the estimated segment
//! latency plus the cost of the inter-chip transfers feeding it — which
//! is exactly the steady-state pipeline initiation interval.

use crate::cost::CostModel;
use crate::frontend::CondensedGraph;
use crate::strategy::Strategy;

/// One activation transfer crossing a chip boundary (a cut edge of the
/// chip partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterChipTransferPlan {
    /// Global condensed-graph index of the producing group.
    pub producer: usize,
    /// Global condensed-graph index of the consuming group.
    pub consumer: usize,
    /// Chip executing the producer.
    pub from_chip: u32,
    /// Chip executing the consumer.
    pub to_chip: u32,
    /// Activation bytes moved over the interconnect.
    pub bytes: u64,
}

/// The system-level plan: which chip executes each condensed group and
/// which transfers cross chip boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemPlan {
    /// Number of chips in the system.
    pub chip_count: u32,
    /// Executing chip of every condensed group (indexed by group).
    pub assignment: Vec<u32>,
    /// The cut edges, in (producer, consumer) order.
    pub transfers: Vec<InterChipTransferPlan>,
    /// How many system-level candidates the compiler scored before
    /// settling on this split (1 for the sequential pipeline, which only
    /// ever considers the contiguous DP seed).
    pub explored_candidates: u32,
    /// The search's end-to-end estimate of the steady-state pipeline
    /// initiation interval under this split, in cycles (0 when the
    /// estimator did not run, e.g. on legacy single-chip paths).
    pub estimated_interval_cycles: u64,
    /// The CG-level strategy chosen for each chip. Sequential compilation
    /// uses one global strategy; the joint search may pick per chip.
    pub chip_strategies: Vec<Strategy>,
}

impl SystemPlan {
    /// The trivial plan of a single-chip system.
    pub fn single_chip(group_count: usize) -> Self {
        SystemPlan {
            chip_count: 1,
            assignment: vec![0; group_count],
            transfers: Vec::new(),
            explored_candidates: 1,
            estimated_interval_cycles: 0,
            chip_strategies: Vec::new(),
        }
    }

    /// Builds a plan from an explicit chip assignment, deriving the cut
    /// edges from the condensed graph.
    pub fn from_assignment(
        condensed: &CondensedGraph,
        chip_count: u32,
        assignment: Vec<u32>,
    ) -> Self {
        let transfers = cut_transfers(condensed, &assignment);
        SystemPlan {
            chip_count,
            assignment,
            transfers,
            explored_candidates: 1,
            estimated_interval_cycles: 0,
            chip_strategies: Vec::new(),
        }
    }

    /// Global group indices assigned to `chip`, in linear order.
    pub fn chip_groups(&self, chip: u32) -> Vec<usize> {
        (0..self.assignment.len()).filter(|i| self.assignment[*i] == chip).collect()
    }

    /// Total bytes crossing chip boundaries per inference.
    pub fn cut_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// The chips that feed `chip` through the interconnect.
    pub fn producer_chips(&self, chip: u32) -> Vec<u32> {
        let mut chips: Vec<u32> =
            self.transfers.iter().filter(|t| t.to_chip == chip).map(|t| t.from_chip).collect();
        chips.sort_unstable();
        chips.dedup();
        chips
    }
}

/// Splits the condensed graph across the chips of `cost_model`'s
/// architecture.
///
/// The linearization is partitioned into `chip_count` contiguous segments
/// minimizing the most expensive segment, where a segment's cost is its
/// estimated execution latency (per-group compute plus the weight
/// staging its stages pay) plus the serialization cost of the cut
/// activations entering it. With one chip this degenerates to the
/// identity plan.
pub fn partition_chips(condensed: &CondensedGraph, cost_model: &CostModel) -> SystemPlan {
    let chip_count = cost_model.arch().chip_count();
    let n = condensed.len();
    if chip_count <= 1 || n == 0 {
        let mut plan = SystemPlan::single_chip(n);
        plan.chip_count = chip_count.max(1);
        return plan;
    }
    let chips = chip_count as usize;

    // Per-group estimates, computed once: execution cycles assuming the
    // chip's cores are available for duplication (the per-chip mapping
    // pass will spend vacant cores exactly this way), and the weight
    // footprint.
    let group_cycles: Vec<u64> = condensed
        .groups()
        .iter()
        .map(|group| {
            let cores = cost_model.min_cores(group).min(cost_model.total_cores());
            let replicas = (cost_model.total_cores() / cores).max(1);
            cost_model.group_cycles(group, cores, replicas)
        })
        .collect();
    let mut compute_prefix = vec![0u64; n + 1];
    let mut weight_prefix = vec![0u64; n + 1];
    for index in 0..n {
        compute_prefix[index + 1] = compute_prefix[index] + group_cycles[index];
        weight_prefix[index + 1] =
            weight_prefix[index] + condensed.groups()[index].metrics.weight_bytes;
    }

    // Segment cost for the contiguous range [start, end). Cut edges are
    // priced at one hop: the DP does not know which earlier segment a
    // producer lands on, and with a contiguous split cut edges
    // overwhelmingly connect adjacent chips — exact for point-to-point
    // fabrics, a mild underestimate for long ring skips.
    let segment_cost = |start: usize, end: usize| -> u64 {
        let cut_in_bytes: u64 = condensed.groups()[start..end]
            .iter()
            .flat_map(|g| g.preds.iter())
            .filter(|d| d.group < start)
            .map(|d| d.bytes)
            .sum();
        (compute_prefix[end] - compute_prefix[start])
            + cost_model.weight_reload_cycles(weight_prefix[end] - weight_prefix[start])
            + cost_model.interchip_transfer_cycles(cut_in_bytes, 1)
    };

    // dp[k][i]: minimal bottleneck of placing the first `i` groups on the
    // first `k + 1` chips; cut[k][i] reconstructs the split points.
    let mut dp = vec![vec![u64::MAX; n + 1]; chips];
    let mut cut = vec![vec![0usize; n + 1]; chips];
    for (i, slot) in dp[0].iter_mut().enumerate() {
        *slot = segment_cost(0, i);
    }
    for k in 1..chips {
        for i in 0..=n {
            for j in 0..=i {
                let candidate = dp[k - 1][j].max(segment_cost(j, i));
                if candidate < dp[k][i] {
                    dp[k][i] = candidate;
                    cut[k][i] = j;
                }
            }
        }
    }

    // Reconstruct the boundaries and build the assignment.
    let mut boundaries = vec![0usize; chips + 1];
    boundaries[chips] = n;
    let mut end = n;
    for k in (1..chips).rev() {
        end = cut[k][end];
        boundaries[k] = end;
    }
    let mut assignment = vec![0u32; n];
    for chip in 0..chips {
        assignment[boundaries[chip]..boundaries[chip + 1]].fill(chip as u32);
    }

    SystemPlan::from_assignment(condensed, chip_count, assignment)
}

/// The cut edges of an assignment, in (producer, consumer) order.
pub(crate) fn cut_transfers(
    condensed: &CondensedGraph,
    assignment: &[u32],
) -> Vec<InterChipTransferPlan> {
    let mut transfers = Vec::new();
    for group in condensed.groups() {
        for dep in &group.preds {
            if assignment[dep.group] != assignment[group.index] {
                transfers.push(InterChipTransferPlan {
                    producer: dep.group,
                    consumer: group.index,
                    from_chip: assignment[dep.group],
                    to_chip: assignment[group.index],
                    bytes: dep.bytes,
                });
            }
        }
    }
    transfers.sort_by_key(|t| (t.producer, t.consumer));
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_arch::ArchConfig;
    use cimflow_nn::models;

    fn condensed(model: cimflow_nn::Model) -> CondensedGraph {
        CondensedGraph::from_graph(&model.graph).unwrap()
    }

    #[test]
    fn single_chip_is_the_identity_plan() {
        let graph = condensed(models::resnet18(64));
        let cost = CostModel::new(&ArchConfig::paper_default());
        let plan = partition_chips(&graph, &cost);
        assert_eq!(plan.chip_count, 1);
        assert!(plan.assignment.iter().all(|c| *c == 0));
        assert!(plan.transfers.is_empty());
        assert_eq!(plan.cut_bytes(), 0);
    }

    #[test]
    fn multichip_split_is_contiguous_and_forward() {
        for chips in [2u32, 4, 8] {
            let graph = condensed(models::vgg19(64));
            let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(chips));
            let plan = partition_chips(&graph, &cost);
            assert_eq!(plan.chip_count, chips);
            assert_eq!(plan.assignment.len(), graph.len());
            // Contiguity: the assignment is non-decreasing.
            assert!(plan.assignment.windows(2).all(|w| w[0] <= w[1]));
            // Every transfer points forward through the pipeline.
            for transfer in &plan.transfers {
                assert!(transfer.from_chip < transfer.to_chip);
                assert!(transfer.producer < transfer.consumer);
                assert!(transfer.bytes > 0);
            }
            assert!(!plan.transfers.is_empty(), "a chain split must cut at least one edge");
        }
    }

    #[test]
    fn split_balances_the_weight_footprint() {
        let graph = condensed(models::vgg19(64));
        let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(2));
        let plan = partition_chips(&graph, &cost);
        let weight_of = |chip: u32| -> u64 {
            plan.chip_groups(chip).iter().map(|i| graph.groups()[*i].metrics.weight_bytes).sum()
        };
        let (a, b) = (weight_of(0), weight_of(1));
        let total = a + b;
        assert!(a > 0 && b > 0, "both chips get work");
        // Neither chip carries (almost) everything.
        assert!(a < total * 9 / 10 && b < total * 9 / 10, "{a} vs {b}");
    }

    #[test]
    fn single_group_graphs_partition_onto_one_chip() {
        // A model condensing to exactly one group: every chip count must
        // yield a well-formed plan with all the work on one chip, no
        // transfers, and idle remaining chips.
        use cimflow_nn::{GraphBuilder, Model, OpKind, TensorShape};
        let mut b = GraphBuilder::new();
        let input = b.input("image", TensorShape::feature_map(3, 16, 16));
        let conv = b
            .node(
                "conv",
                OpKind::Conv2d {
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: (1, 1),
                    groups: 1,
                },
                &[input],
            )
            .unwrap();
        let model = Model::new("single", b.finish(&[conv]).unwrap());
        let graph = condensed(model);
        assert_eq!(graph.len(), 1);
        for chips in [1u32, 2, 8] {
            let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(chips));
            let plan = partition_chips(&graph, &cost);
            assert_eq!(plan.chip_count, chips);
            assert_eq!(plan.assignment.len(), 1);
            let owner = plan.assignment[0];
            assert!(owner < chips, "the group lands on a real chip");
            assert!(plan.transfers.is_empty(), "one group can never cut an edge");
            assert_eq!(plan.cut_bytes(), 0);
            for chip in (0..chips).filter(|c| *c != owner) {
                assert!(plan.chip_groups(chip).is_empty());
                assert!(plan.producer_chips(chip).is_empty());
            }
        }
    }

    #[test]
    fn more_chips_than_groups_leaves_trailing_chips_idle() {
        // A 3-group toy model on 8 chips: every chip gets at most one
        // group and the plan stays well-formed.
        let graph = condensed(models::mobilenet_v2(32));
        let chips = graph.len() as u32 + 3;
        let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(chips));
        let plan = partition_chips(&graph, &cost);
        assert_eq!(plan.assignment.len(), graph.len());
        assert!(plan.assignment.iter().all(|c| *c < chips));
        // Producer chips of any chip are earlier chips only.
        for chip in 0..chips {
            assert!(plan.producer_chips(chip).iter().all(|p| *p < chip));
        }
    }
}
