//! CG-level preprocessing: condensation of the computation graph around
//! its MVM-based operators and dependency-preserving linearization.
//!
//! "During preprocessing, the compiler first identifies and extracts
//! MVM-based operators, then groups adjacent operators with them to create
//! a condensed CG. This analysis produces a dependency-preserving linear
//! sequence of operators that forms the foundation for subsequent
//! optimization stages." (paper Sec. III-C)

use std::collections::BTreeMap;

use cimflow_nn::{Graph, OpId, OpKind};

use crate::CompileError;

/// A dependency from one operator group onto another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupDep {
    /// Index of the producing group in the condensed graph.
    pub group: usize,
    /// Activation bytes consumed from that producer.
    pub bytes: u64,
}

/// Workload metrics of one condensed operator group, used by the cost
/// model and the OP-level mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupMetrics {
    /// Weight footprint in bytes (INT8 weights + INT32 biases).
    pub weight_bytes: u64,
    /// Multiply-accumulate count of the anchor operator.
    pub macs: u64,
    /// Reduction-dimension length of the im2col weight matrix
    /// (`in_channels / groups × kh × kw`).
    pub k_rows: u32,
    /// Output channels of the anchor operator.
    pub out_channels: u32,
    /// Output spatial positions of the anchor operator (`oh × ow`).
    pub out_pixels: u32,
    /// Bytes of the group's final output tensor.
    pub output_bytes: u64,
    /// Bytes of the anchor's primary activation input.
    pub input_bytes: u64,
    /// Element-wise work of the fused non-MVM operators.
    pub vector_elems: u64,
    /// Whether the anchor is a depth-wise convolution.
    pub is_depthwise: bool,
}

/// One node of the condensed computation graph: an MVM-based anchor
/// operator plus the adjacent non-MVM operators fused onto it.
#[derive(Debug, Clone, PartialEq)]
pub struct OpGroup {
    /// Index of the group in the dependency-preserving linearization.
    pub index: usize,
    /// The anchor MVM operator.
    pub anchor: OpId,
    /// Name of the anchor operator (used in reports and errors).
    pub name: String,
    /// Non-MVM operators fused onto the anchor.
    pub fused: Vec<OpId>,
    /// Producing groups this group depends on.
    pub preds: Vec<GroupDep>,
    /// Whether the group reads the graph input (from global memory).
    pub reads_graph_input: bool,
    /// Whether the group produces a graph output (to global memory).
    pub writes_graph_output: bool,
    /// Aggregated workload metrics.
    pub metrics: GroupMetrics,
}

/// The condensed computation graph: MVM groups in dependency-preserving
/// linear order.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedGraph {
    groups: Vec<OpGroup>,
}

impl CondensedGraph {
    /// Condenses a computation graph around its MVM-based operators and
    /// splits any operator whose weights exceed `max_group_weight_bytes`
    /// into output-channel slices, so that every group can be held by the
    /// chip's CIM arrays in some execution stage (VGG19's first fully
    /// connected layer alone exceeds the whole default chip).
    ///
    /// # Errors
    ///
    /// See [`Self::from_graph`].
    pub fn from_graph_with_capacity(
        graph: &Graph,
        max_group_weight_bytes: u64,
    ) -> Result<Self, CompileError> {
        let condensed = Self::from_graph(graph)?;
        Ok(condensed.split_oversized(max_group_weight_bytes.max(1)))
    }

    /// Splits groups whose weights exceed `limit` into equal
    /// output-channel slices, remapping dependencies onto the slices.
    fn split_oversized(self, limit: u64) -> Self {
        if self.groups.iter().all(|g| g.metrics.weight_bytes <= limit) {
            return self;
        }
        // Map old group index -> new indices of its parts.
        let mut parts_of: Vec<Vec<usize>> = Vec::with_capacity(self.groups.len());
        let mut new_groups: Vec<OpGroup> = Vec::new();
        for group in &self.groups {
            let parts = (group.metrics.weight_bytes.div_ceil(limit)).max(1) as u32;
            let parts = parts.min(group.metrics.out_channels.max(1));
            let mut indices = Vec::with_capacity(parts as usize);
            for part in 0..parts {
                let mut piece = group.clone();
                piece.index = new_groups.len();
                if parts > 1 {
                    piece.name = format!("{}.part{part}", group.name);
                    piece.metrics.out_channels = (group.metrics.out_channels / parts).max(1);
                    piece.metrics.weight_bytes =
                        (group.metrics.weight_bytes / u64::from(parts)).max(1);
                    piece.metrics.macs = (group.metrics.macs / u64::from(parts)).max(1);
                    piece.metrics.output_bytes =
                        (group.metrics.output_bytes / u64::from(parts)).max(1);
                    piece.metrics.vector_elems = group.metrics.vector_elems / u64::from(parts);
                }
                indices.push(piece.index);
                new_groups.push(piece);
            }
            parts_of.push(indices);
        }
        // Remap predecessor references onto every part of the producer.
        for group in &mut new_groups {
            let old_preds = std::mem::take(&mut group.preds);
            for dep in old_preds {
                let parts = &parts_of[dep.group];
                for part in parts {
                    group.preds.push(GroupDep {
                        group: *part,
                        bytes: (dep.bytes / parts.len() as u64).max(1),
                    });
                }
            }
            group.preds.sort_by_key(|d| d.group);
            group.preds.dedup_by_key(|d| d.group);
        }
        CondensedGraph { groups: new_groups }
    }

    /// Condenses a computation graph around its MVM-based operators.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::EmptyWorkload`] if the model contains no
    /// MVM-based operator, or a model validation error.
    pub fn from_graph(graph: &Graph) -> Result<Self, CompileError> {
        graph.validate()?;
        let order = graph.topological_order();
        if !order.iter().any(|id| graph.node(*id).op.is_mvm_based()) {
            return Err(CompileError::EmptyWorkload);
        }

        // Assign every node to a group: MVM nodes anchor new groups,
        // non-MVM nodes join the group of their latest producing group.
        let mut node_group: BTreeMap<OpId, usize> = BTreeMap::new();
        let mut groups: Vec<OpGroup> = Vec::new();
        let mut pending: Vec<OpId> = Vec::new();
        for id in &order {
            let node = graph.node(*id);
            if node.op.is_mvm_based() {
                let index = groups.len();
                let input_shape = graph.input_shape(*id);
                let (k_rows, is_depthwise) = match node.op {
                    OpKind::Conv2d { kernel, groups: g, .. } => {
                        ((input_shape.c / g.max(1)) * kernel.0 * kernel.1, g > 1)
                    }
                    OpKind::Linear { .. } => (input_shape.elements_per_item() as u32, false),
                    _ => unreachable!("anchor must be MVM-based"),
                };
                let output_shape = graph.output_shape(*id);
                let metrics = GroupMetrics {
                    weight_bytes: node.op.weight_bytes(input_shape),
                    macs: node.op.macs(input_shape),
                    k_rows: k_rows.max(1),
                    out_channels: output_shape.c,
                    out_pixels: (output_shape.spatial() * u64::from(output_shape.n)).max(1) as u32,
                    output_bytes: output_shape.bytes(graph.tensor(node.output).dtype),
                    input_bytes: input_shape.bytes(graph.tensor(node.inputs[0]).dtype),
                    vector_elems: 0,
                    is_depthwise,
                };
                groups.push(OpGroup {
                    index,
                    anchor: *id,
                    name: node.name.clone(),
                    fused: Vec::new(),
                    preds: Vec::new(),
                    reads_graph_input: false,
                    writes_graph_output: false,
                    metrics,
                });
                node_group.insert(*id, index);
                // Ops that appeared before the first MVM operator attach to it.
                for p in pending.drain(..) {
                    node_group.insert(p, index);
                    groups[index].fused.push(p);
                }
            } else {
                let latest = node
                    .inputs
                    .iter()
                    .filter_map(|t| graph.producer(*t))
                    .filter_map(|p| node_group.get(&p).copied())
                    .max();
                match latest {
                    Some(g) => {
                        node_group.insert(*id, g);
                        groups[g].fused.push(*id);
                    }
                    None => pending.push(*id),
                }
            }
        }

        // Fused metrics, dependencies, graph input/output flags.
        for id in &order {
            let node = graph.node(*id);
            let gi = node_group[id];
            if !node.op.is_mvm_based() {
                let input_shape = graph.input_shape(*id);
                groups[gi].metrics.vector_elems += node.op.vector_elems(input_shape);
                // Fused operators may enlarge the group's final output
                // (e.g. pooling shrinks it); track the last produced tensor.
                let out = graph.tensor(node.output);
                groups[gi].metrics.output_bytes = out.shape.bytes(out.dtype);
            }
            for input in &node.inputs {
                match graph.producer(*input) {
                    Some(producer) => {
                        let pg = node_group[&producer];
                        if pg != gi {
                            let bytes =
                                graph.tensor(*input).shape.bytes(graph.tensor(*input).dtype);
                            let deps = &mut groups[gi].preds;
                            if let Some(existing) = deps.iter_mut().find(|d| d.group == pg) {
                                existing.bytes = existing.bytes.max(bytes);
                            } else {
                                deps.push(GroupDep { group: pg, bytes });
                            }
                        }
                    }
                    None => groups[gi].reads_graph_input = true,
                }
            }
            if graph.outputs().contains(&node.output) {
                groups[gi].writes_graph_output = true;
            }
        }
        for group in &mut groups {
            group.preds.sort_by_key(|d| d.group);
        }
        Ok(CondensedGraph { groups })
    }

    /// The condensed groups in dependency-preserving linear order.
    pub fn groups(&self) -> &[OpGroup] {
        &self.groups
    }

    /// Number of condensed groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the condensed graph is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total weight bytes across all groups.
    pub fn total_weight_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.metrics.weight_bytes).sum()
    }

    /// Indices of the direct predecessors of a group.
    pub fn pred_indices(&self, index: usize) -> Vec<usize> {
        self.groups[index].preds.iter().map(|d| d.group).collect()
    }

    /// The restriction of the condensed graph to the groups `assignment`
    /// maps to `chip`, densely re-indexed. Returns the subgraph together
    /// with the global index of every subgraph group.
    ///
    /// Cut edges are rewritten for per-chip compilation: a predecessor on
    /// another chip becomes a graph-input fetch (its activation arrives
    /// in this chip's global memory over the interconnect), and a group
    /// whose consumer lives on another chip is marked as writing a graph
    /// output so code generation spills its activation to global memory,
    /// where the inter-chip transfer picks it up.
    pub fn chip_subgraph(&self, assignment: &[u32], chip: u32) -> (CondensedGraph, Vec<usize>) {
        assert_eq!(assignment.len(), self.groups.len(), "one chip per group");
        let selected: Vec<usize> =
            (0..self.groups.len()).filter(|i| assignment[*i] == chip).collect();
        let mut remap = vec![usize::MAX; self.groups.len()];
        for (new, &old) in selected.iter().enumerate() {
            remap[old] = new;
        }
        let mut groups = Vec::with_capacity(selected.len());
        for &old in &selected {
            let mut group = self.groups[old].clone();
            group.index = remap[old];
            let preds = std::mem::take(&mut group.preds);
            for dep in preds {
                if assignment[dep.group] == chip {
                    group.preds.push(GroupDep { group: remap[dep.group], bytes: dep.bytes });
                } else {
                    group.reads_graph_input = true;
                }
            }
            let feeds_other_chip = self
                .groups
                .iter()
                .any(|g| assignment[g.index] != chip && g.preds.iter().any(|d| d.group == old));
            if feeds_other_chip {
                group.writes_graph_output = true;
            }
            groups.push(group);
        }
        (CondensedGraph { groups }, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn condensation_keeps_only_mvm_anchors() {
        let model = models::resnet18(64);
        let condensed = CondensedGraph::from_graph(&model.graph).unwrap();
        let mvm_count = model.graph.nodes().iter().filter(|n| n.op.is_mvm_based()).count();
        assert_eq!(condensed.len(), mvm_count);
        // Every non-MVM node is fused somewhere.
        let fused_total: usize = condensed.groups().iter().map(|g| g.fused.len()).sum();
        assert_eq!(fused_total + mvm_count, model.graph.len());
    }

    #[test]
    fn linearization_preserves_dependencies() {
        for model in [models::resnet18(64), models::efficientnet_b0(64)] {
            let condensed = CondensedGraph::from_graph(&model.graph).unwrap();
            for group in condensed.groups() {
                for dep in &group.preds {
                    assert!(dep.group < group.index, "{} depends forward", group.name);
                    assert!(dep.bytes > 0);
                }
            }
        }
    }

    #[test]
    fn first_group_reads_input_and_last_writes_output() {
        let model = models::vgg19(32);
        let condensed = CondensedGraph::from_graph(&model.graph).unwrap();
        assert!(condensed.groups().first().unwrap().reads_graph_input);
        assert!(condensed.groups().last().unwrap().writes_graph_output);
        assert!(condensed.groups().iter().filter(|g| g.reads_graph_input).count() >= 1);
    }

    #[test]
    fn residual_groups_have_two_predecessors() {
        let model = models::resnet18(64);
        let condensed = CondensedGraph::from_graph(&model.graph).unwrap();
        // Blocks with identity shortcuts: the conv2 group consumes both its
        // conv1 predecessor and the block input group.
        let with_two_preds = condensed.groups().iter().filter(|g| g.preds.len() >= 2).count();
        assert!(with_two_preds >= 4, "expected residual joins, found {with_two_preds}");
    }

    #[test]
    fn metrics_are_positive_and_consistent() {
        let model = models::mobilenet_v2(64);
        let condensed = CondensedGraph::from_graph(&model.graph).unwrap();
        let stats = model.graph.stats();
        let total_macs: u64 = condensed.groups().iter().map(|g| g.metrics.macs).sum();
        assert_eq!(total_macs, stats.total_macs);
        let total_weights: u64 = condensed.total_weight_bytes();
        assert_eq!(total_weights, stats.total_weight_bytes);
        for group in condensed.groups() {
            assert!(group.metrics.k_rows > 0);
            assert!(group.metrics.out_channels > 0);
            assert!(group.metrics.out_pixels > 0);
            assert!(group.metrics.output_bytes > 0);
        }
        assert!(condensed.groups().iter().any(|g| g.metrics.is_depthwise));
    }

    #[test]
    fn chip_subgraphs_cover_the_graph_and_rewrite_cut_edges() {
        let model = models::resnet18(64);
        let condensed = CondensedGraph::from_graph(&model.graph).unwrap();
        let n = condensed.len();
        // Contiguous halves.
        let assignment: Vec<u32> = (0..n).map(|i| u32::from(i >= n / 2)).collect();
        let (first, first_ids) = condensed.chip_subgraph(&assignment, 0);
        let (second, second_ids) = condensed.chip_subgraph(&assignment, 1);
        assert_eq!(first.len() + second.len(), n);
        assert_eq!(first_ids.last().copied().unwrap() + 1, second_ids[0]);
        // Subgraph dependencies are internal and backward.
        for sub in [&first, &second] {
            for group in sub.groups() {
                for dep in &group.preds {
                    assert!(dep.group < group.index);
                }
            }
        }
        // The boundary producer spills for the next chip, the boundary
        // consumer fetches from global memory.
        assert!(first.groups().last().unwrap().writes_graph_output);
        assert!(second.groups().first().unwrap().reads_graph_input);
        assert!(second.groups().first().unwrap().preds.is_empty());
    }

    #[test]
    fn model_without_mvm_ops_is_rejected() {
        use cimflow_nn::{ActivationKind, GraphBuilder, TensorShape};
        let mut b = GraphBuilder::new();
        let x = b.input("x", TensorShape::feature_map(3, 8, 8));
        let r = b.node("relu", OpKind::Activation(ActivationKind::Relu), &[x]).unwrap();
        let graph = b.finish(&[r]).unwrap();
        assert_eq!(CondensedGraph::from_graph(&graph), Err(CompileError::EmptyWorkload));
    }
}
