//! The system-level search layer: joint optimization over (chip split ×
//! per-chip stage partition × per-chip strategy).
//!
//! The sequential pipeline treats the chip split as a preprocessing step:
//! [`partition_chips`](crate::system::partition_chips) picks one
//! contiguous split minimizing a bottleneck-segment proxy, and every chip
//! is then partitioned independently under one global
//! [`Strategy`]. [`SystemSearch`] instead treats the split as a decision
//! variable: a pool of candidate assignments — the contiguous DP seed,
//! balance-driven contiguous alternatives, boundary perturbations, and
//! non-contiguous group moves for branchy graphs — is each lowered
//! through the per-chip stage partitioner (with per-chip strategy
//! choice) and scored by the *end-to-end* estimated pipeline initiation
//! interval, which prices cut activations at the tile-streaming residual
//! the simulator's overlapped hand-off actually pays.

use std::collections::{HashSet, VecDeque};
use std::fmt;

use cimflow_obs::Tracer;

use crate::cost::{CostModel, STREAM_TILE_BYTES};
use crate::error::CompileError;
use crate::frontend::CondensedGraph;
use crate::partition::{partition_with_strategy, PartitionDecision};
use crate::strategy::Strategy;
use crate::system::{self, SystemPlan};

/// Upper bound on scored candidates per compilation, a guard against
/// quadratic blow-up on very branchy graphs.
const CANDIDATE_CAP: usize = 48;
/// Rounds of greedy non-contiguous refinement.
const MOVE_ROUNDS: usize = 2;

/// How the compiler searches the system-level mapping space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SearchMode {
    /// Today's fixed pass sequence: contiguous DP chip split, then one
    /// global strategy per chip. The default; reproduces historical
    /// plans bit-exactly.
    #[default]
    Sequential,
    /// Joint search over chip split, per-chip stage partition and
    /// per-chip strategy, scored by the estimated pipeline interval.
    Joint,
}

impl SearchMode {
    /// Both modes, in sweep-axis order.
    pub const ALL: [SearchMode; 2] = [SearchMode::Sequential, SearchMode::Joint];

    /// Short name used in plans, reports and sweep files.
    pub fn name(self) -> &'static str {
        match self {
            SearchMode::Sequential => "sequential",
            SearchMode::Joint => "joint",
        }
    }

    /// Parses a mode from its short or variant name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sequential" | "Sequential" | "seq" => Some(SearchMode::Sequential),
            "joint" | "Joint" => Some(SearchMode::Joint),
            _ => None,
        }
    }
}

impl fmt::Display for SearchMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::Serialize for SearchMode {
    fn serialize(&self) -> serde::Content {
        serde::Content::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for SearchMode {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected search mode string"))?;
        SearchMode::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown search mode `{text}`")))
    }
}

/// The per-chip lowering a scored candidate settled on.
#[derive(Debug, Clone)]
pub struct ChipLowering {
    /// The CG-level strategy chosen for this chip.
    pub strategy: Strategy,
    /// The stage partition, or `None` for a chip without work.
    pub decision: Option<PartitionDecision>,
}

/// The result of a system-level search: the chosen split with its
/// per-chip lowerings, ready for code generation.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The chosen system plan (explored-candidate count and the interval
    /// estimate are recorded on it).
    pub system: SystemPlan,
    /// Per-chip strategy and stage partition, indexed by chip.
    pub chips: Vec<ChipLowering>,
}

/// Estimates the steady-state pipeline initiation interval of a chip
/// assignment given each chip's estimated stage-partition latency.
///
/// Under the simulator's tile-granular hand-off a consumer chip starts
/// once the first tiles of its cut inputs land, so a cut edge charges its
/// consumer only the streaming residual of one tile — head latency plus
/// one tile's serialization — rather than the full activation transfer.
pub(crate) fn estimate_interval(
    condensed: &CondensedGraph,
    cost: &CostModel,
    assignment: &[u32],
    chip_latency: &[u64],
) -> u64 {
    let mut interval = 1u64;
    for (chip, latency) in chip_latency.iter().enumerate() {
        let mut residual = 0u64;
        for group in condensed.groups() {
            if assignment[group.index] as usize != chip {
                continue;
            }
            for dep in &group.preds {
                let from = assignment[dep.group];
                if from as usize == chip {
                    continue;
                }
                let hops = cost.interchip_hops(from, chip as u32);
                residual += cost.interchip_transfer_cycles(dep.bytes.min(STREAM_TILE_BYTES), hops);
            }
        }
        interval = interval.max(latency + residual);
    }
    interval
}

/// Prices a compilation analytically, without code generation or
/// simulation: the sequential pipeline's estimated initiation interval
/// for `strategy` on this graph/architecture pair.
///
/// This is the cheapest rung of the evaluation-fidelity ladder — the
/// contiguous DP chip split is seeded exactly as the sequential pipeline
/// would, each chip's subgraph is stage-partitioned under the one global
/// strategy, and the assignment is scored by the same
/// `estimate_interval` the joint searcher uses to rank candidates. The
/// returned cycle count is an *estimate* (it prices cut activations at
/// the tile-streaming residual, not measured congestion), so it is
/// suitable for ranking points, not for reporting absolute latency.
///
/// # Errors
///
/// Returns the stage partitioner's [`CompileError`] when any chip's
/// subgraph cannot be partitioned under `strategy`.
pub fn estimate_sequential_interval(
    condensed: &CondensedGraph,
    cost: &CostModel,
    strategy: Strategy,
) -> Result<u64, CompileError> {
    let chips = cost.arch().chip_count();
    let seed = system::partition_chips(condensed, cost);
    let mut latencies = Vec::with_capacity(chips as usize);
    for chip in 0..chips {
        let (sub, _) = condensed.chip_subgraph(&seed.assignment, chip);
        latencies.push(if sub.is_empty() {
            0
        } else {
            partition_with_strategy(&sub, cost, strategy)?.estimated_cycles()
        });
    }
    Ok(estimate_interval(condensed, cost, &seed.assignment, &latencies))
}

/// The joint system-level searcher (see the module docs).
#[derive(Debug)]
pub struct SystemSearch<'a> {
    condensed: &'a CondensedGraph,
    cost: &'a CostModel,
    strategy: Strategy,
}

impl<'a> SystemSearch<'a> {
    /// Prepares a search for one compilation.
    pub fn new(condensed: &'a CondensedGraph, cost: &'a CostModel, strategy: Strategy) -> Self {
        SystemSearch { condensed, cost, strategy }
    }

    /// Runs the search and returns the best candidate found.
    ///
    /// The contiguous DP seed is always candidate zero, so the result is
    /// never worse (by the shared interval estimator) than what the
    /// sequential pipeline would have chosen.
    pub fn run(&self) -> SearchOutcome {
        // When the calling thread carries an ambient tracer (the eval
        // service installs one on its workers), the search leaves one
        // span per compilation and one per scored candidate — no tracer,
        // no cost beyond this thread-local read.
        let mut search_span =
            Tracer::ambient().map(|tracer| tracer.thread_span("system-search", "compiler"));
        let chips = self.cost.arch().chip_count().max(1);
        let n = self.condensed.len();
        if chips <= 1 || n == 0 {
            let mut system = SystemPlan::single_chip(n);
            system.chip_count = chips.max(1);
            let lowering = self.lower_chip(&vec![0; n], 0);
            let latency = lowering.decision.as_ref().map_or(0, PartitionDecision::estimated_cycles);
            system.estimated_interval_cycles = latency.max(1);
            system.chip_strategies = vec![lowering.strategy];
            if let Some(span) = search_span.as_mut() {
                span.attr("explored", 1u64).attr("interval", system.estimated_interval_cycles);
            }
            return SearchOutcome { system, chips: vec![lowering] };
        }

        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let mut pool: Vec<Vec<u32>> = Vec::new();
        let enqueue = |pool: &mut Vec<Vec<u32>>, seen: &mut HashSet<Vec<u32>>, a: Vec<u32>| {
            if a.len() == n && a.iter().all(|c| *c < chips) && seen.insert(a.clone()) {
                pool.push(a);
            }
        };

        // Candidate 0: the sequential pipeline's contiguous DP seed.
        let seed = system::partition_chips(self.condensed, self.cost).assignment;
        enqueue(&mut pool, &mut seen, seed.clone());
        // Balance-driven contiguous alternatives.
        enqueue(&mut pool, &mut seen, self.balanced_split(chips, BalanceBy::Compute));
        enqueue(&mut pool, &mut seen, self.balanced_split(chips, BalanceBy::Weight));
        // Boundary perturbations of the seed.
        for candidate in boundary_moves(&seed, chips) {
            enqueue(&mut pool, &mut seen, candidate);
        }

        let mut explored = 0usize;
        let mut best: Option<(u64, Vec<u32>, Vec<ChipLowering>)> = None;
        for assignment in &pool {
            explored += 1;
            if let Some((interval, lowerings)) = self.score(assignment) {
                if best.as_ref().is_none_or(|(b, _, _)| interval < *b) {
                    best = Some((interval, assignment.clone(), lowerings));
                }
            }
        }

        // Non-contiguous refinement for branchy graphs: greedily move the
        // endpoints of cut edges between chips while the estimated
        // interval keeps improving and the chip-level dependency graph
        // stays acyclic (the simulator's hand-off needs a DAG of chips).
        if self.is_branchy() {
            'rounds: for _ in 0..MOVE_ROUNDS {
                let Some((current_best, base, _)) = best.clone() else { break };
                let mut improved = false;
                for group in cut_endpoint_groups(self.condensed, &base) {
                    for target in 0..chips {
                        if explored >= CANDIDATE_CAP {
                            break 'rounds;
                        }
                        if target == base[group] {
                            continue;
                        }
                        let mut moved = base.clone();
                        moved[group] = target;
                        if !chip_dag_is_acyclic(self.condensed, &moved, chips)
                            || !seen.insert(moved.clone())
                        {
                            continue;
                        }
                        explored += 1;
                        if let Some((interval, lowerings)) = self.score(&moved) {
                            if interval < current_best
                                && best.as_ref().is_none_or(|(b, _, _)| interval < *b)
                            {
                                best = Some((interval, moved, lowerings));
                                improved = true;
                            }
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // When not even the seed fits — some chip's subgraph exceeds
        // capacity under every candidate strategy — fall back to the seed
        // split with its (partially `None`) lowerings, so the caller
        // surfaces the same per-chip capacity error the sequential
        // pipeline reports instead of the search panicking.
        let (interval, assignment, lowerings) = best.unwrap_or_else(|| {
            let lowerings: Vec<ChipLowering> =
                (0..chips).map(|chip| self.lower_chip(&seed, chip)).collect();
            (0, seed, lowerings)
        });
        let mut system = SystemPlan::from_assignment(self.condensed, chips, assignment);
        system.explored_candidates = explored as u32;
        system.estimated_interval_cycles = interval;
        system.chip_strategies = lowerings.iter().map(|l| l.strategy).collect();
        if let Some(span) = search_span.as_mut() {
            span.attr("chips", u64::from(chips))
                .attr("groups", n)
                .attr("explored", explored)
                .attr("interval", interval);
        }
        SearchOutcome { system, chips: lowerings }
    }

    /// Whether the condensed graph has any branching (a group with more
    /// than one predecessor), which is what makes non-contiguous chip
    /// assignments potentially profitable.
    fn is_branchy(&self) -> bool {
        self.condensed.groups().iter().any(|g| g.preds.len() > 1)
    }

    /// Scores one candidate assignment: lowers every chip through the
    /// stage partitioner with per-chip strategy choice and estimates the
    /// end-to-end pipeline interval. `None` if some chip cannot fit its
    /// subgraph under any candidate strategy.
    fn score(&self, assignment: &[u32]) -> Option<(u64, Vec<ChipLowering>)> {
        let mut span =
            Tracer::ambient().map(|tracer| tracer.thread_span("score-candidate", "compiler"));
        let chips = self.cost.arch().chip_count().max(1);
        let mut lowerings = Vec::with_capacity(chips as usize);
        let mut latencies = Vec::with_capacity(chips as usize);
        for chip in 0..chips {
            let lowering = self.lower_chip(assignment, chip);
            if lowering.decision.is_none() && assignment.contains(&chip) {
                if let Some(span) = span.as_mut() {
                    span.attr("fits", false);
                }
                return None; // non-empty chip that fits no partition
            }
            latencies
                .push(lowering.decision.as_ref().map_or(0, PartitionDecision::estimated_cycles));
            lowerings.push(lowering);
        }
        let interval = estimate_interval(self.condensed, self.cost, assignment, &latencies);
        if let Some(span) = span.as_mut() {
            span.attr("fits", true).attr("interval", interval);
        }
        Some((interval, lowerings))
    }

    /// Lowers one chip's subgraph, choosing among the candidate
    /// strategies (the requested one, plus the paper's DP optimization —
    /// which the estimates never rank worse — when they differ).
    fn lower_chip(&self, assignment: &[u32], chip: u32) -> ChipLowering {
        let (subgraph, _) = self.condensed.chip_subgraph(assignment, chip);
        if subgraph.is_empty() {
            return ChipLowering { strategy: self.strategy, decision: None };
        }
        let mut candidates = vec![self.strategy];
        if self.strategy != Strategy::DpOptimized {
            candidates.push(Strategy::DpOptimized);
        }
        let mut best: Option<(u64, Strategy, PartitionDecision)> = None;
        for strategy in candidates {
            if let Ok(decision) = partition_with_strategy(&subgraph, self.cost, strategy) {
                let cycles = decision.estimated_cycles();
                if best.as_ref().is_none_or(|(b, _, _)| cycles < *b) {
                    best = Some((cycles, strategy, decision));
                }
            }
        }
        match best {
            Some((_, strategy, decision)) => ChipLowering { strategy, decision: Some(decision) },
            None => ChipLowering { strategy: self.strategy, decision: None },
        }
    }

    /// A contiguous split equalizing per-chip compute or weight load.
    fn balanced_split(&self, chips: u32, by: BalanceBy) -> Vec<u32> {
        let n = self.condensed.len();
        let load: Vec<u64> = self
            .condensed
            .groups()
            .iter()
            .map(|group| match by {
                BalanceBy::Weight => group.metrics.weight_bytes.max(1),
                BalanceBy::Compute => {
                    let cores = self.cost.min_cores(group).min(self.cost.total_cores());
                    let replicas = (self.cost.total_cores() / cores).max(1);
                    self.cost.group_cycles(group, cores, replicas).max(1)
                }
            })
            .collect();
        let total: u64 = load.iter().sum();
        let per_chip = total.div_ceil(u64::from(chips)).max(1);
        let mut assignment = vec![0u32; n];
        let mut chip = 0u32;
        let mut running = 0u64;
        for (i, l) in load.iter().enumerate() {
            if running + l > per_chip && running > 0 && chip + 1 < chips {
                chip += 1;
                running = 0;
            }
            assignment[i] = chip;
            running += l;
        }
        assignment
    }
}

#[derive(Debug, Clone, Copy)]
enum BalanceBy {
    Compute,
    Weight,
}

/// Contiguous candidates obtained by shifting each internal boundary of a
/// contiguous assignment by one group in either direction.
fn boundary_moves(assignment: &[u32], chips: u32) -> Vec<Vec<u32>> {
    let n = assignment.len();
    // Reconstruct the boundaries: boundaries[c] is the first group index
    // assigned to a chip >= c.
    let mut boundaries = vec![0usize; chips as usize + 1];
    for (c, slot) in boundaries.iter_mut().enumerate().skip(1) {
        *slot = assignment.iter().position(|&a| a >= c as u32).unwrap_or(n);
    }
    let mut moves = Vec::new();
    for k in 1..chips as usize {
        for delta in [-1i64, 1] {
            let shifted = boundaries[k] as i64 + delta;
            if shifted < boundaries[k - 1] as i64 || shifted > boundaries[k + 1] as i64 {
                continue;
            }
            let mut candidate = boundaries.clone();
            candidate[k] = shifted as usize;
            let mut moved = vec![0u32; n];
            for chip in 0..chips as usize {
                for slot in
                    moved.iter_mut().take(candidate[chip + 1].min(n)).skip(candidate[chip].min(n))
                {
                    *slot = chip as u32;
                }
            }
            moves.push(moved);
        }
    }
    moves
}

/// Groups adjacent to a cut edge of the assignment — the move candidates
/// of the non-contiguous refinement.
fn cut_endpoint_groups(condensed: &CondensedGraph, assignment: &[u32]) -> Vec<usize> {
    let mut groups: Vec<usize> = condensed
        .groups()
        .iter()
        .flat_map(|g| {
            g.preds.iter().filter_map(|d| {
                (assignment[d.group] != assignment[g.index]).then_some([d.group, g.index])
            })
        })
        .flatten()
        .collect();
    groups.sort_unstable();
    groups.dedup();
    groups
}

/// Whether the chip-level condensation of the dependency graph is
/// acyclic (a cycle between chips would deadlock the pipelined hand-off).
fn chip_dag_is_acyclic(condensed: &CondensedGraph, assignment: &[u32], chips: u32) -> bool {
    let chips = chips as usize;
    let mut edges: HashSet<(u32, u32)> = HashSet::new();
    for group in condensed.groups() {
        for dep in &group.preds {
            let (from, to) = (assignment[dep.group], assignment[group.index]);
            if from != to {
                edges.insert((from, to));
            }
        }
    }
    let mut indegree = vec![0usize; chips];
    for (_, to) in &edges {
        indegree[*to as usize] += 1;
    }
    let mut queue: VecDeque<u32> =
        (0..chips as u32).filter(|c| indegree[*c as usize] == 0).collect();
    let mut visited = 0usize;
    while let Some(chip) = queue.pop_front() {
        visited += 1;
        for (from, to) in &edges {
            if *from == chip {
                indegree[*to as usize] -= 1;
                if indegree[*to as usize] == 0 {
                    queue.push_back(*to);
                }
            }
        }
    }
    visited == chips
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_arch::ArchConfig;
    use cimflow_nn::models;

    fn condensed(model: cimflow_nn::Model) -> CondensedGraph {
        CondensedGraph::from_graph(&model.graph).unwrap()
    }

    #[test]
    fn search_mode_names_round_trip() {
        for mode in SearchMode::ALL {
            assert_eq!(SearchMode::from_name(mode.name()), Some(mode));
            let text = serde_json::to_string(&mode).unwrap();
            assert_eq!(serde_json::from_str::<SearchMode>(&text).unwrap(), mode);
        }
        assert_eq!(SearchMode::default(), SearchMode::Sequential);
        assert_eq!(SearchMode::Joint.to_string(), "joint");
        assert!(SearchMode::from_name("warp").is_none());
        assert!(serde_json::from_str::<SearchMode>("\"warp\"").is_err());
    }

    /// The sequential pipeline's estimated interval: its contiguous DP
    /// seed lowered with the one global strategy, scored by the shared
    /// estimator (the public analytical rung).
    fn sequential_estimate(graph: &CondensedGraph, cost: &CostModel, strategy: Strategy) -> u64 {
        estimate_sequential_interval(graph, cost, strategy).unwrap()
    }

    #[test]
    fn joint_search_is_never_worse_than_the_sequential_seed() {
        for chips in [2u32, 4] {
            for model in [models::resnet18(32), models::vgg19(32)] {
                let graph = condensed(model);
                let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(chips));
                let search = SystemSearch::new(&graph, &cost, Strategy::DpOptimized);
                let outcome = search.run();
                assert!(outcome.system.explored_candidates >= 1);
                assert_eq!(outcome.chips.len(), chips as usize);

                // Score the sequential pipeline's plan with the same
                // estimator: the search's choice must not be worse.
                let sequential = sequential_estimate(&graph, &cost, Strategy::DpOptimized);
                assert!(
                    outcome.system.estimated_interval_cycles <= sequential,
                    "joint {} !<= sequential {}",
                    outcome.system.estimated_interval_cycles,
                    sequential
                );
            }
        }
    }

    /// A random branchy graph: a chain of channel-segments with residual
    /// `Add` edges sprinkled inside each fixed-shape segment.
    fn branchy_graph(segments: &[(u32, u8)]) -> CondensedGraph {
        use cimflow_nn::{ActivationKind, GraphBuilder, OpKind, TensorShape};
        let mut b = GraphBuilder::new();
        let mut current = b.input("image", TensorShape::feature_map(8, 16, 16));
        for (segment, (channels, residual_mask)) in segments.iter().enumerate() {
            let conv = OpKind::Conv2d {
                out_channels: *channels,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 1,
            };
            // Entering the segment changes the channel count.
            current = b.node(&format!("s{segment}_enter"), conv, &[current]).unwrap();
            let segment_entry = current;
            for block in 0..3u8 {
                current = b.node(&format!("s{segment}_conv{block}"), conv, &[current]).unwrap();
                if residual_mask & (1 << block) != 0 {
                    // Same-shape residual: branch from the segment entry.
                    current = b
                        .node(
                            &format!("s{segment}_add{block}"),
                            OpKind::Add,
                            &[current, segment_entry],
                        )
                        .unwrap();
                }
                current = b
                    .node(
                        &format!("s{segment}_relu{block}"),
                        OpKind::Activation(ActivationKind::Relu),
                        &[current],
                    )
                    .unwrap();
            }
        }
        let graph = b.finish(&[current]).unwrap();
        CondensedGraph::from_graph(&graph).unwrap()
    }

    mod properties {
        use super::*;
        // `proptest::prelude::*` exports its own `Strategy` trait, which
        // shadows the compiler's enum.
        use crate::strategy::Strategy as CompileStrategy;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]

            /// On random branchy graphs the joint search's bottleneck
            /// (estimated pipeline interval) is never worse than the
            /// sequential DP's, and its chosen split stays executable.
            #[test]
            fn joint_bottleneck_never_exceeds_sequential_dp_on_random_branchy_graphs(
                chips in 2u32..5,
                mask_a in 0u8..8,
                mask_b in 0u8..8,
                mask_c in 0u8..8,
                widen in any::<bool>(),
            ) {
                let wide = if widen { 32 } else { 16 };
                let graph = branchy_graph(&[(16, mask_a), (wide, mask_b), (24, mask_c)]);
                prop_assert!(
                    graph.groups().iter().any(|g| g.preds.len() > 1)
                        || (mask_a | mask_b | mask_c) == 0
                );
                let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(chips));
                let outcome =
                    SystemSearch::new(&graph, &cost, CompileStrategy::DpOptimized).run();
                let sequential = sequential_estimate(&graph, &cost, CompileStrategy::DpOptimized);
                prop_assert!(
                    outcome.system.estimated_interval_cycles <= sequential,
                    "joint {} !<= sequential {} on {} groups across {} chips",
                    outcome.system.estimated_interval_cycles,
                    sequential,
                    graph.len(),
                    chips
                );
                // The chosen split is executable: chip DAG acyclic.
                prop_assert!(chip_dag_is_acyclic(&graph, &outcome.system.assignment, chips));
            }
        }
    }

    #[test]
    fn search_keeps_the_chip_dag_acyclic_and_covers_every_group() {
        let graph = condensed(models::resnet18(32));
        let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(4));
        let outcome = SystemSearch::new(&graph, &cost, Strategy::DpOptimized).run();
        assert_eq!(outcome.system.assignment.len(), graph.len());
        assert!(chip_dag_is_acyclic(&graph, &outcome.system.assignment, 4));
        // Every non-empty chip has a decision covering its groups.
        for chip in 0..4u32 {
            let members = outcome.system.chip_groups(chip);
            let lowering = &outcome.chips[chip as usize];
            match &lowering.decision {
                Some(decision) => {
                    let planned: usize =
                        decision.stages.iter().map(|(groups, _, _)| groups.len()).sum();
                    assert_eq!(planned, members.len());
                }
                None => assert!(members.is_empty()),
            }
        }
    }

    #[test]
    fn single_chip_search_degenerates_to_the_plain_partition() {
        let graph = condensed(models::mobilenet_v2(32));
        let cost = CostModel::new(&ArchConfig::paper_default());
        let outcome = SystemSearch::new(&graph, &cost, Strategy::GenericMapping).run();
        assert_eq!(outcome.system.chip_count, 1);
        assert_eq!(outcome.system.explored_candidates, 1);
        assert!(outcome.system.transfers.is_empty());
        assert!(outcome.system.estimated_interval_cycles > 0);
    }

    #[test]
    fn ambient_tracer_collects_search_and_candidate_spans() {
        let graph = condensed(models::resnet18(32));
        let cost = CostModel::new(&ArchConfig::paper_default().with_chip_count(2));
        // No ambient tracer: the search runs untraced (and must not
        // panic reading the empty thread-local).
        let untraced = SystemSearch::new(&graph, &cost, Strategy::DpOptimized).run();

        let tracer = Tracer::new(4096);
        Tracer::set_ambient(Some(tracer.clone()));
        let outcome = SystemSearch::new(&graph, &cost, Strategy::DpOptimized).run();
        Tracer::set_ambient(None);
        assert_eq!(
            outcome.system.estimated_interval_cycles, untraced.system.estimated_interval_cycles,
            "tracing must not perturb the search"
        );

        let events = tracer.events();
        let searches: Vec<_> = events.iter().filter(|e| e.name == "system-search").collect();
        assert_eq!(searches.len(), 1);
        assert!(searches[0]
            .attrs
            .iter()
            .any(|(k, v)| k == "explored"
                && matches!(v, cimflow_obs::AttrValue::U64(n) if *n == u64::from(outcome.system.explored_candidates))));
        let scored = events.iter().filter(|e| e.name == "score-candidate").count();
        assert_eq!(scored as u32, outcome.system.explored_candidates);
        // Candidate spans nest inside the search span.
        let search = searches[0];
        for event in events.iter().filter(|e| e.name == "score-candidate") {
            assert!(event.start >= search.start);
            assert!(event.start + event.duration <= search.start + search.duration);
        }
    }

    #[test]
    fn boundary_moves_stay_contiguous() {
        let assignment = vec![0, 0, 1, 1, 2, 2];
        for moved in boundary_moves(&assignment, 3) {
            assert_eq!(moved.len(), assignment.len());
            assert!(moved.windows(2).all(|w| w[0] <= w[1]), "{moved:?}");
        }
        assert!(!boundary_moves(&assignment, 3).is_empty());
    }

    #[test]
    fn acyclicity_check_accepts_forward_and_rejects_cyclic_assignments() {
        let graph = condensed(models::vgg19(32));
        let n = graph.len();
        let mut forward = vec![0u32; n];
        for slot in forward.iter_mut().skip(n / 2) {
            *slot = 1;
        }
        assert!(chip_dag_is_acyclic(&graph, &forward, 2));
        // Alternating chips on a chain: 0 -> 1 and 1 -> 0 edges.
        let alternating: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        assert!(!chip_dag_is_acyclic(&graph, &alternating, 2));
    }
}
