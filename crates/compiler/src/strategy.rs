//! The top-level compilation entry points and the three compilation
//! strategies compared in the paper's Fig. 5.

use std::fmt;

use cimflow_arch::ArchConfig;
use cimflow_nn::Model;

use crate::codegen;
use crate::cost::CostModel;
use crate::frontend::CondensedGraph;
use crate::partition::{self, PartitionDecision};
use crate::plan::{ClusterPlan, CompilationPlan, CompiledProgram, GroupPlacement, StagePlan};
use crate::search::{self, ChipLowering, SearchMode, SystemSearch};
use crate::system::{self, SystemPlan};
use crate::validate;
use crate::CompileError;

/// The compilation strategies evaluated in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Capacity-driven partitioning with an inter-layer pipeline and no
    /// operator duplication (the "generic mapping" baseline).
    GenericMapping,
    /// The CIM-MLC-style baseline: partition first, then opportunistically
    /// duplicate operators into vacant cores.
    OperatorDuplication,
    /// The paper's DP-based joint partitioning and mapping optimization
    /// (Alg. 1).
    DpOptimized,
}

impl Strategy {
    /// All strategies in the order plotted by Fig. 5.
    pub const ALL: [Strategy; 3] =
        [Strategy::GenericMapping, Strategy::OperatorDuplication, Strategy::DpOptimized];

    /// Short name used in plans and reports.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::GenericMapping => "generic",
            Strategy::OperatorDuplication => "duplication",
            Strategy::DpOptimized => "dp",
        }
    }

    /// Parses a strategy from either its short report name (`generic`,
    /// `duplication`, `dp`) or its variant name (used by sweep
    /// configuration files).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "generic" | "GenericMapping" => Some(Strategy::GenericMapping),
            "duplication" | "OperatorDuplication" => Some(Strategy::OperatorDuplication),
            "dp" | "DpOptimized" => Some(Strategy::DpOptimized),
            _ => None,
        }
    }
}

impl serde::Serialize for Strategy {
    fn serialize(&self) -> serde::Content {
        serde::Content::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for Strategy {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected strategy name string"))?;
        Strategy::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown strategy `{text}`")))
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Optional knobs of the compilation flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// The CG-level strategy.
    pub strategy: Strategy,
    /// Whether to run the post-codegen validation pass (enabled by
    /// default, matching the paper's "functional validation" stage).
    pub validate: bool,
    /// How the system-level mapping space is searched on multi-chip
    /// architectures. [`SearchMode::Sequential`] (the default) keeps the
    /// historical fixed pass order; [`SearchMode::Joint`] searches chip
    /// split, per-chip stage partition and per-chip strategy jointly.
    pub search: SearchMode,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            strategy: Strategy::DpOptimized,
            validate: true,
            search: SearchMode::Sequential,
        }
    }
}

/// Compiles a model for an architecture with the given strategy.
///
/// # Errors
///
/// Returns a [`CompileError`] if the model is structurally invalid, does
/// not fit the architecture, or the generated code fails validation.
///
/// # Example
///
/// ```
/// use cimflow_arch::ArchConfig;
/// use cimflow_compiler::{compile, Strategy};
/// use cimflow_nn::models;
///
/// # fn main() -> Result<(), cimflow_compiler::CompileError> {
/// let compiled = compile(&models::mobilenet_v2(32), &ArchConfig::paper_default(), Strategy::GenericMapping)?;
/// assert!(compiled.report.total_instructions > 0);
/// # Ok(())
/// # }
/// ```
pub fn compile(
    model: &Model,
    arch: &ArchConfig,
    strategy: Strategy,
) -> Result<CompiledProgram, CompileError> {
    compile_with_options(model, arch, CompileOptions { strategy, ..CompileOptions::default() })
}

/// Compiles a model with explicit [`CompileOptions`].
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with_options(
    model: &Model,
    arch: &ArchConfig,
    options: CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    arch.validate().map_err(|e| CompileError::ValidationFailed { reason: e.to_string() })?;
    // Operators larger than ~3/4 of one chip's CIM capacity are split into
    // output-channel slices so that every group fits some execution stage
    // of some chip.
    let capacity_limit =
        u64::from(arch.chip().core_count) * arch.core.cim_unit.weight_capacity_bytes() * 3 / 4;
    let condensed = CondensedGraph::from_graph_with_capacity(&model.graph, capacity_limit)?;
    let cost_model = CostModel::new(arch);
    if arch.chip_count() > 1 {
        return compile_multichip(condensed, &cost_model, arch, options);
    }
    let decision = chip_decision(&condensed, &cost_model, options.strategy)?;
    let plan = build_plan(&condensed, &decision, options.strategy, arch);
    let generated = codegen::generate(&condensed, &plan, arch)?;
    if options.validate {
        validate::check(&generated, &plan, &condensed, arch)?;
    }
    let mut report = CompiledProgram::build_report(&generated.per_core, &plan, &condensed);
    let mut system = SystemPlan::single_chip(condensed.len());
    system.estimated_interval_cycles = plan.estimated_cycles().max(1);
    system.chip_strategies = vec![options.strategy];
    report.search_candidates = system.explored_candidates as usize;
    Ok(CompiledProgram {
        per_core: generated.per_core,
        plan,
        condensed,
        system,
        arch: *arch,
        report,
    })
}

/// Runs the per-chip CG-level partitioning of one strategy.
fn chip_decision(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
    strategy: Strategy,
) -> Result<PartitionDecision, CompileError> {
    partition::partition_with_strategy(condensed, cost_model, strategy)
}

/// The multi-chip compilation path: choose the system-level plan — either
/// the fixed sequential pass order or the joint search — then lower every
/// chip's subgraph through the unchanged per-chip flow and merge the
/// artifacts with globally indexed cores and groups.
fn compile_multichip(
    condensed: CondensedGraph,
    cost_model: &CostModel,
    arch: &ArchConfig,
    options: CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let (system, lowerings) = match options.search {
        SearchMode::Sequential => {
            // The historical pipeline: contiguous DP split first, then one
            // global strategy per chip — kept call-for-call identical so
            // sequential plans stay bit-exact.
            let mut system = system::partition_chips(&condensed, cost_model);
            let mut lowerings = Vec::with_capacity(system.chip_count as usize);
            let mut latencies = Vec::with_capacity(system.chip_count as usize);
            for chip in 0..system.chip_count {
                let (subgraph, _) = condensed.chip_subgraph(&system.assignment, chip);
                if subgraph.is_empty() {
                    lowerings.push(ChipLowering { strategy: options.strategy, decision: None });
                    latencies.push(0);
                    continue;
                }
                let decision = chip_decision(&subgraph, cost_model, options.strategy)?;
                latencies.push(decision.estimated_cycles());
                lowerings
                    .push(ChipLowering { strategy: options.strategy, decision: Some(decision) });
            }
            system.estimated_interval_cycles =
                search::estimate_interval(&condensed, cost_model, &system.assignment, &latencies);
            system.chip_strategies = lowerings.iter().map(|l| l.strategy).collect();
            (system, lowerings)
        }
        SearchMode::Joint => {
            let outcome = SystemSearch::new(&condensed, cost_model, options.strategy).run();
            // The search only keeps candidates whose every chip fits; if
            // even the seed failed, surface the per-chip capacity error
            // the sequential path would have reported.
            for (chip, lowering) in outcome.chips.iter().enumerate() {
                if lowering.decision.is_none() && outcome.system.assignment.contains(&(chip as u32))
                {
                    let (subgraph, _) =
                        condensed.chip_subgraph(&outcome.system.assignment, chip as u32);
                    chip_decision(&subgraph, cost_model, options.strategy)?;
                }
            }
            (outcome.system, outcome.chips)
        }
    };
    lower_system(condensed, arch, options, system, lowerings)
}

/// Lowers a chosen system plan: per-chip code generation on each chip's
/// subgraph, merged into one artifact with global core and group indices.
fn lower_system(
    condensed: CondensedGraph,
    arch: &ArchConfig,
    options: CompileOptions,
    system: SystemPlan,
    lowerings: Vec<ChipLowering>,
) -> Result<CompiledProgram, CompileError> {
    let cores_per_chip = arch.chip().core_count;
    let mut per_core = Vec::with_capacity((arch.total_cores()) as usize);
    let mut stages = Vec::new();
    for chip in 0..system.chip_count {
        let (subgraph, global_ids) = condensed.chip_subgraph(&system.assignment, chip);
        let lowering = &lowerings[chip as usize];
        let Some(decision) = lowering.decision.as_ref().filter(|_| !subgraph.is_empty()) else {
            // A chip without work still needs well-formed (halting)
            // programs so the simulator's core indexing stays uniform.
            for _ in 0..cores_per_chip {
                let mut builder = cimflow_isa::ProgramBuilder::new();
                builder.push(cimflow_isa::Instruction::Halt);
                per_core.push(builder.finish()?);
            }
            continue;
        };
        let plan = build_plan(&subgraph, decision, lowering.strategy, arch);
        let generated = codegen::generate(&subgraph, &plan, arch)?;
        if options.validate {
            validate::check(&generated, &plan, &subgraph, arch)?;
        }
        per_core.extend(generated.per_core);
        // Lift the chip-local plan into the global index spaces for the
        // merged report/analysis view.
        let core_base = chip * cores_per_chip;
        for stage in plan.stages {
            let placements = stage
                .placements
                .into_iter()
                .map(|placement| GroupPlacement {
                    group: global_ids[placement.group],
                    clusters: placement
                        .clusters
                        .into_iter()
                        .map(|cluster| ClusterPlan {
                            cores: cluster.cores.iter().map(|c| c + core_base).collect(),
                            pixel_start: cluster.pixel_start,
                            pixel_end: cluster.pixel_end,
                        })
                        .collect(),
                })
                .collect();
            stages.push(StagePlan {
                index: stages.len(),
                placements,
                estimated_cycles: stage.estimated_cycles,
                estimated_energy_pj: stage.estimated_energy_pj,
            });
        }
    }
    let plan = CompilationPlan { strategy: options.strategy.name().to_owned(), stages };
    let mut report = CompiledProgram::build_report(&per_core, &plan, &condensed);
    report.search_candidates = system.explored_candidates as usize;
    Ok(CompiledProgram { per_core, plan, condensed, system, arch: *arch, report })
}

/// Turns a partition decision into a concrete plan with physical core
/// identifiers and per-replica output-pixel ranges (the paper's
/// "inter-core scheduling and IR generation" step).
fn build_plan(
    condensed: &CondensedGraph,
    decision: &PartitionDecision,
    strategy: Strategy,
    arch: &ArchConfig,
) -> CompilationPlan {
    let mut stages = Vec::with_capacity(decision.stages.len());
    for (index, (groups, mapping, cost)) in decision.stages.iter().enumerate() {
        let mut next_core = 0u32;
        let mut placements = Vec::with_capacity(groups.len());
        for (group_index, m) in groups.iter().zip(mapping) {
            let group = &condensed.groups()[*group_index];
            let pixels = group.metrics.out_pixels.max(1);
            let replicas = m.replicas.max(1);
            let chunk = pixels.div_ceil(replicas);
            let mut clusters = Vec::with_capacity(replicas as usize);
            for replica in 0..replicas {
                let cores: Vec<u32> = (0..m.cores_per_replica)
                    .map(|i| (next_core + i) % arch.chip().core_count)
                    .collect();
                next_core += m.cores_per_replica;
                let pixel_start = (replica * chunk).min(pixels);
                let pixel_end = ((replica + 1) * chunk).min(pixels);
                clusters.push(ClusterPlan { cores, pixel_start, pixel_end });
            }
            placements.push(GroupPlacement { group: *group_index, clusters });
        }
        stages.push(StagePlan {
            index,
            placements,
            estimated_cycles: cost.cycles,
            estimated_energy_pj: cost.energy_pj,
        });
    }
    CompilationPlan { strategy: strategy.name().to_owned(), stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn all_strategies_compile_the_compact_models() {
        let arch = ArchConfig::paper_default();
        for strategy in Strategy::ALL {
            for model in [models::mobilenet_v2(32), models::resnet18(32)] {
                let compiled = compile(&model, &arch, strategy).unwrap();
                assert_eq!(compiled.per_core.len(), 64);
                assert!(compiled.report.total_instructions > 0);
                assert!(compiled.report.active_cores > 0);
                assert_eq!(compiled.plan.strategy, strategy.name());
                for program in &compiled.per_core {
                    assert!(program.is_halting());
                    program.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn dp_uses_more_duplication_than_generic_on_compact_models() {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let generic = compile(&model, &arch, Strategy::GenericMapping).unwrap();
        let dp = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        assert!((generic.plan.mean_duplication() - 1.0).abs() < 1e-9);
        assert!(dp.plan.mean_duplication() > 1.0);
    }

    #[test]
    fn vgg_compiles_into_multiple_stages() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::vgg19(32), &arch, Strategy::DpOptimized).unwrap();
        assert!(compiled.plan.stages.len() > 1);
    }

    #[test]
    fn pixel_ranges_partition_the_output() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::resnet18(32), &arch, Strategy::DpOptimized).unwrap();
        for stage in &compiled.plan.stages {
            for placement in &stage.placements {
                let group = &compiled.condensed.groups()[placement.group];
                let covered: u32 = placement.clusters.iter().map(ClusterPlan::pixels).sum();
                assert_eq!(covered, group.metrics.out_pixels, "group {}", group.name);
            }
        }
    }

    #[test]
    fn single_chip_compilation_carries_the_trivial_system_plan() {
        let compiled =
            compile(&models::mobilenet_v2(32), &ArchConfig::paper_default(), Strategy::DpOptimized)
                .unwrap();
        assert_eq!(compiled.system.chip_count, 1);
        assert!(compiled.system.transfers.is_empty());
        assert_eq!(compiled.system.assignment.len(), compiled.condensed.len());
    }

    #[test]
    fn multichip_compilation_emits_programs_for_every_chip() {
        let arch = ArchConfig::paper_default().with_chip_count(2);
        for strategy in Strategy::ALL {
            let compiled = compile(&models::resnet18(32), &arch, strategy).unwrap();
            assert_eq!(compiled.per_core.len(), 128, "64 cores per chip x 2 chips");
            assert_eq!(compiled.system.chip_count, 2);
            assert!(!compiled.system.transfers.is_empty(), "the split cuts at least one edge");
            for program in &compiled.per_core {
                assert!(program.is_halting());
                program.validate().unwrap();
            }
            // The merged plan covers every condensed group exactly once,
            // in global group/core index spaces.
            let mut covered: Vec<usize> = compiled
                .plan
                .stages
                .iter()
                .flat_map(|s| s.placements.iter().map(|p| p.group))
                .collect();
            covered.sort_unstable();
            assert_eq!(covered, (0..compiled.condensed.len()).collect::<Vec<_>>());
            // Chip 1's placements reference chip 1's core range.
            let chip1_groups = compiled.system.chip_groups(1);
            let (_, placement) = compiled.plan.placement_of(chip1_groups[0]).unwrap();
            assert!(placement.cores().iter().all(|c| (64..128).contains(c)));
        }
    }

    #[test]
    fn joint_search_compiles_valid_programs_and_records_the_search() {
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let model = models::resnet18(32);
        let sequential = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let joint = compile_with_options(
            &model,
            &arch,
            CompileOptions {
                strategy: Strategy::DpOptimized,
                search: SearchMode::Joint,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(joint.per_core.len(), 128);
        for program in &joint.per_core {
            assert!(program.is_halting());
            program.validate().unwrap();
        }
        // The search explored beyond the sequential seed and recorded it.
        assert!(joint.system.explored_candidates > 1);
        assert_eq!(joint.report.search_candidates, joint.system.explored_candidates as usize);
        assert_eq!(sequential.report.search_candidates, 1);
        assert_eq!(joint.system.chip_strategies.len(), 2);
        // Scored by the shared estimator, joint is never worse.
        assert!(joint.system.estimated_interval_cycles > 0);
        assert!(
            joint.system.estimated_interval_cycles <= sequential.system.estimated_interval_cycles
        );
        // The merged plan still covers every condensed group exactly once.
        let mut covered: Vec<usize> =
            joint.plan.stages.iter().flat_map(|s| s.placements.iter().map(|p| p.group)).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..joint.condensed.len()).collect::<Vec<_>>());
    }

    #[test]
    fn joint_search_surfaces_capacity_errors_like_sequential() {
        // An architecture no split can fit: both modes must report the
        // per-chip capacity error (the joint search must not panic).
        let arch = ArchConfig::paper_default().with_core_count(1).with_chip_count(2);
        let model = models::vgg19(224);
        for search in SearchMode::ALL {
            let result = compile_with_options(
                &model,
                &arch,
                CompileOptions {
                    strategy: Strategy::DpOptimized,
                    search,
                    ..CompileOptions::default()
                },
            );
            assert!(
                matches!(result, Err(crate::CompileError::CapacityExceeded { .. })),
                "{search}: expected CapacityExceeded, got {result:?}"
            );
        }
    }

    #[test]
    fn sequential_search_is_the_default_and_reproduces_plain_compiles() {
        assert_eq!(CompileOptions::default().search, SearchMode::Sequential);
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let model = models::vgg19(32);
        let a = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let b = compile_with_options(
            &model,
            &arch,
            CompileOptions { strategy: Strategy::DpOptimized, ..CompileOptions::default() },
        )
        .unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.system, b.system);
        assert_eq!(a.per_core.len(), b.per_core.len());
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            assert_eq!(x.instructions(), y.instructions());
        }
    }

    #[test]
    fn strategy_display_names_are_stable() {
        assert_eq!(Strategy::GenericMapping.to_string(), "generic");
        assert_eq!(Strategy::OperatorDuplication.to_string(), "duplication");
        assert_eq!(Strategy::DpOptimized.to_string(), "dp");
        assert_eq!(CompileOptions::default().strategy, Strategy::DpOptimized);
    }

    #[test]
    fn strategy_serde_round_trip_accepts_both_spellings() {
        for strategy in Strategy::ALL {
            let text = serde_json::to_string(&strategy).unwrap();
            let back: Strategy = serde_json::from_str(&text).unwrap();
            assert_eq!(back, strategy);
        }
        assert_eq!(
            serde_json::from_str::<Strategy>("\"DpOptimized\"").unwrap(),
            Strategy::DpOptimized
        );
        assert!(serde_json::from_str::<Strategy>("\"warp\"").is_err());
    }
}
