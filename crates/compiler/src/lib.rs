//! # cimflow-compiler
//!
//! The CIMFlow compilation flow (paper Sec. III-C): it bridges the
//! semantic gap between high-level DNN models (`cimflow-nn`) and low-level
//! CIM instruction sequences (`cimflow-isa`) through a two-level
//! optimization strategy.
//!
//! **System-level partitioning** ([`system`], [`search`]): when the
//! architecture integrates more than one chip, the condensed graph is
//! split across chips and every later pass runs per chip; the cut
//! activations travel over the inter-chip interconnect. Under the default
//! [`SearchMode::Sequential`] the split is a fixed preprocessing step — a
//! contiguous DP balancing estimated latency and weight staging against
//! the inter-chip transfer cost. [`SearchMode::Joint`] instead runs the
//! [`SystemSearch`]: candidate splits (including non-contiguous
//! assignments for branchy graphs) are each lowered through the per-chip
//! stage partitioner with per-chip strategy choice and scored by the
//! end-to-end estimated pipeline interval. With one chip the pass is the
//! identity.
//!
//! **CG-level optimization** ([`frontend`], [`partition`], [`cost`]):
//!
//! 1. *Preprocessing* — MVM-based operators (convolutions, fully connected
//!    layers) are extracted and adjacent non-MVM operators are fused onto
//!    them, producing a condensed computation graph and a
//!    dependency-preserving linearization.
//! 2. *Model partitioning* — the condensed graph is split into execution
//!    stages that respect the SRAM capacity of the CIM arrays. The
//!    DP-based algorithm of the paper (Alg. 1) enumerates dependency
//!    closures as bitmasks and chooses the partition minimizing the
//!    estimated cost; two baselines (generic mapping and CIM-MLC-style
//!    opportunistic operator duplication) are provided for the Fig. 5
//!    comparison.
//! 3. *Core mapping* — inside every stage, operators are assigned to
//!    clusters of cores; weights may be duplicated across clusters when
//!    the cost model finds it beneficial.
//!
//! **OP-level optimization** ([`oplevel`], [`codegen`]): each placed
//! operator's loop nest is mapped onto the 2-D CIM arrays (im2col virtual
//! mapping), tiled to the macro / macro-group / local-memory capacities,
//! and lowered into per-core ISA programs with conventional optimizations
//! (constant folding of addresses, dead-code elimination, linear register
//! use) applied during emission.
//!
//! The result is a [`CompiledProgram`]: one ISA program per core plus the
//! mapping metadata the cycle-level simulator and the reports consume.
//!
//! # Example
//!
//! ```
//! use cimflow_arch::ArchConfig;
//! use cimflow_compiler::{compile, Strategy};
//! use cimflow_nn::models;
//!
//! # fn main() -> Result<(), cimflow_compiler::CompileError> {
//! let model = models::resnet18(32);
//! let arch = ArchConfig::paper_default();
//! let compiled = compile(&model, &arch, Strategy::DpOptimized)?;
//! assert_eq!(compiled.per_core.len(), 64);
//! assert!(compiled.plan.stages.len() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod codegen;
pub mod cost;
mod error;
pub mod frontend;
pub mod oplevel;
pub mod partition;
mod plan;
pub mod search;
mod strategy;
pub mod system;
pub mod validate;

pub use bitset::BitMask256;
pub use cost::STREAM_TILE_BYTES;
pub use error::CompileError;
pub use frontend::{CondensedGraph, OpGroup};
pub use plan::{
    ClusterPlan, CompilationPlan, CompileReport, CompiledProgram, GroupPlacement, StagePlan,
};
pub use search::{estimate_sequential_interval, SearchMode, SearchOutcome, SystemSearch};
pub use strategy::{compile, compile_with_options, CompileOptions, Strategy};
pub use system::{partition_chips, InterChipTransferPlan, SystemPlan};
