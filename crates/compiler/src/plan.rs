//! Compilation-plan data structures shared between the CG-level
//! optimizer, the code generator, the simulator and the reports.

use std::collections::BTreeMap;
use std::fmt;

use cimflow_arch::ArchConfig;
use cimflow_isa::{OpcodeClass, Program};

use crate::frontend::CondensedGraph;
use crate::system::SystemPlan;

/// One replica (cluster) of an operator group: the cores it occupies and
/// the output-pixel range it is responsible for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Physical core identifiers of the cluster; output channels are
    /// sliced across these cores.
    pub cores: Vec<u32>,
    /// First output pixel (row-major `oh × ow` position) handled by the
    /// cluster.
    pub pixel_start: u32,
    /// One past the last output pixel handled by the cluster.
    pub pixel_end: u32,
}

impl ClusterPlan {
    /// Number of output pixels assigned to the cluster.
    pub fn pixels(&self) -> u32 {
        self.pixel_end.saturating_sub(self.pixel_start)
    }
}

/// Placement of one condensed operator group inside a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlacement {
    /// Index of the group in the condensed graph.
    pub group: usize,
    /// The clusters executing the group; `clusters.len()` is the weight
    /// duplication factor chosen by the mapping optimization.
    pub clusters: Vec<ClusterPlan>,
}

impl GroupPlacement {
    /// The weight-duplication factor of the group.
    pub fn duplication(&self) -> usize {
        self.clusters.len()
    }

    /// All cores used by the group across clusters.
    pub fn cores(&self) -> Vec<u32> {
        let mut cores: Vec<u32> =
            self.clusters.iter().flat_map(|c| c.cores.iter().copied()).collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }
}

/// One execution stage: a set of operator groups whose weights are
/// resident in the CIM arrays simultaneously.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// Stage index in execution order.
    pub index: usize,
    /// Placements of the groups executing in this stage.
    pub placements: Vec<GroupPlacement>,
    /// Cost-model estimate of the stage latency in cycles.
    pub estimated_cycles: u64,
    /// Cost-model estimate of the stage energy in picojoules.
    pub estimated_energy_pj: f64,
}

impl StagePlan {
    /// Indices of the groups executing in this stage.
    pub fn group_indices(&self) -> Vec<usize> {
        self.placements.iter().map(|p| p.group).collect()
    }

    /// Number of distinct cores occupied by the stage.
    pub fn occupied_cores(&self) -> usize {
        let mut cores: Vec<u32> = self.placements.iter().flat_map(|p| p.cores()).collect();
        cores.sort_unstable();
        cores.dedup();
        cores.len()
    }
}

/// The CG-level compilation plan: the ordered stages with their mappings.
#[derive(Debug, Clone, PartialEq)]
pub struct CompilationPlan {
    /// Name of the compilation strategy that produced the plan.
    pub strategy: String,
    /// The execution stages in order.
    pub stages: Vec<StagePlan>,
}

impl CompilationPlan {
    /// Total cost-model estimate over all stages in cycles.
    pub fn estimated_cycles(&self) -> u64 {
        self.stages.iter().map(|s| s.estimated_cycles).sum()
    }

    /// The placement of a given group, if it appears in the plan.
    pub fn placement_of(&self, group: usize) -> Option<(&StagePlan, &GroupPlacement)> {
        self.stages
            .iter()
            .find_map(|s| s.placements.iter().find(|p| p.group == group).map(|p| (s, p)))
    }

    /// Mean weight-duplication factor across groups.
    pub fn mean_duplication(&self) -> f64 {
        let placements: Vec<&GroupPlacement> =
            self.stages.iter().flat_map(|s| &s.placements).collect();
        if placements.is_empty() {
            return 0.0;
        }
        placements.iter().map(|p| p.duplication() as f64).sum::<f64>() / placements.len() as f64
    }
}

/// Static statistics of the generated code, included in the detailed
/// report of every compilation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompileReport {
    /// Total static instructions across cores.
    pub total_instructions: usize,
    /// Static instructions per opcode class.
    pub instructions_by_class: BTreeMap<OpcodeClass, usize>,
    /// Number of execution stages.
    pub stage_count: usize,
    /// Number of condensed operator groups.
    pub group_count: usize,
    /// Number of cores with a non-empty program.
    pub active_cores: usize,
    /// System-level candidates scored before the chip split was chosen
    /// (1 on the sequential pipeline and on single-chip systems; the
    /// joint search reports its explored pool).
    pub search_candidates: usize,
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} groups in {} stages on {} active cores, {} static instructions",
            self.group_count, self.stage_count, self.active_cores, self.total_instructions
        )?;
        for (class, count) in &self.instructions_by_class {
            writeln!(f, "  {class:>14}: {count}")?;
        }
        Ok(())
    }
}

// Manual serde impls: the opcode-class histogram is keyed by
// `OpcodeClass`, which serializes through its stable lowercase name so
// cached evaluation artifacts stay human-readable JSON objects.
impl serde::Serialize for CompileReport {
    fn serialize(&self) -> serde::Content {
        let histogram = self
            .instructions_by_class
            .iter()
            .map(|(class, count)| (class.name().to_owned(), serde::Serialize::serialize(count)))
            .collect();
        serde::Content::Map(vec![
            (
                "total_instructions".to_owned(),
                serde::Serialize::serialize(&self.total_instructions),
            ),
            ("instructions_by_class".to_owned(), serde::Content::Map(histogram)),
            ("stage_count".to_owned(), serde::Serialize::serialize(&self.stage_count)),
            ("group_count".to_owned(), serde::Serialize::serialize(&self.group_count)),
            ("active_cores".to_owned(), serde::Serialize::serialize(&self.active_cores)),
            ("search_candidates".to_owned(), serde::Serialize::serialize(&self.search_candidates)),
        ])
    }
}

impl serde::Deserialize for CompileReport {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for CompileReport"))?;
        let field = |name: &str| {
            map.iter().find(|(k, _)| k == name).map(|(_, v)| v).ok_or_else(|| {
                serde::Error::new(format!("missing field `{name}` in CompileReport"))
            })
        };
        let mut instructions_by_class = BTreeMap::new();
        let histogram = field("instructions_by_class")?
            .as_map()
            .ok_or_else(|| serde::Error::new("expected map for instructions_by_class"))?;
        for (name, count) in histogram {
            let class = OpcodeClass::from_name(name)
                .ok_or_else(|| serde::Error::new(format!("unknown opcode class `{name}`")))?;
            instructions_by_class.insert(class, serde::Deserialize::deserialize(count)?);
        }
        Ok(CompileReport {
            total_instructions: serde::Deserialize::deserialize(field("total_instructions")?)?,
            instructions_by_class,
            stage_count: serde::Deserialize::deserialize(field("stage_count")?)?,
            group_count: serde::Deserialize::deserialize(field("group_count")?)?,
            active_cores: serde::Deserialize::deserialize(field("active_cores")?)?,
            // Reports persisted before the search layer lack the field;
            // they read back as the sequential pipeline's single
            // candidate.
            search_candidates: match field("search_candidates") {
                Ok(content) => serde::Deserialize::deserialize(content)?,
                Err(_) => 1,
            },
        })
    }
}

/// The complete compilation artifact consumed by the simulator.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// One ISA program per core, indexed by the **global** core id
    /// `chip * cores_per_chip + local_core` (plain core id on a
    /// single-chip system).
    pub per_core: Vec<Program>,
    /// The CG-level plan that produced the code. On multi-chip systems
    /// this is the merged view across chips: group indices refer to the
    /// global condensed graph and cluster cores are global core ids.
    pub plan: CompilationPlan,
    /// The condensed graph the plan refers to.
    pub condensed: CondensedGraph,
    /// The system-level plan: chip assignment of every group and the
    /// inter-chip transfers at cut edges (trivial on a single chip).
    pub system: SystemPlan,
    /// The architecture the program was compiled for.
    pub arch: ArchConfig,
    /// Static code statistics.
    pub report: CompileReport,
}

impl CompiledProgram {
    /// Builds the static instruction-count report for a set of per-core
    /// programs.
    pub fn build_report(
        per_core: &[Program],
        plan: &CompilationPlan,
        condensed: &CondensedGraph,
    ) -> CompileReport {
        let mut by_class: BTreeMap<OpcodeClass, usize> = BTreeMap::new();
        let mut total = 0usize;
        let mut active = 0usize;
        for program in per_core {
            if !program.is_empty() {
                active += 1;
            }
            total += program.len();
            for (class, count) in program.class_histogram() {
                *by_class.entry(class).or_insert(0) += count;
            }
        }
        CompileReport {
            total_instructions: total,
            instructions_by_class: by_class,
            stage_count: plan.stages.len(),
            group_count: condensed.len(),
            active_cores: active,
            search_candidates: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(group: usize, clusters: usize, cores_each: usize) -> GroupPlacement {
        let mut next = 0u32;
        GroupPlacement {
            group,
            clusters: (0..clusters)
                .map(|i| {
                    let cores: Vec<u32> = (0..cores_each)
                        .map(|_| {
                            next += 1;
                            next - 1
                        })
                        .collect();
                    ClusterPlan {
                        cores,
                        pixel_start: (i as u32) * 10,
                        pixel_end: (i as u32) * 10 + 10,
                    }
                })
                .collect(),
        }
    }

    #[test]
    fn cluster_and_placement_accessors() {
        let p = placement(3, 2, 4);
        assert_eq!(p.duplication(), 2);
        assert_eq!(p.cores().len(), 8);
        assert_eq!(p.clusters[0].pixels(), 10);
    }

    #[test]
    fn stage_and_plan_summaries() {
        let stage = StagePlan {
            index: 0,
            placements: vec![placement(0, 1, 2), placement(1, 3, 1)],
            estimated_cycles: 1000,
            estimated_energy_pj: 5.0,
        };
        assert_eq!(stage.group_indices(), vec![0, 1]);
        assert!(stage.occupied_cores() >= 3);
        let plan = CompilationPlan { strategy: "dp".into(), stages: vec![stage] };
        assert_eq!(plan.estimated_cycles(), 1000);
        assert!(plan.placement_of(1).is_some());
        assert!(plan.placement_of(9).is_none());
        assert!((plan.mean_duplication() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_has_zero_duplication() {
        let plan = CompilationPlan { strategy: "generic".into(), stages: vec![] };
        assert_eq!(plan.mean_duplication(), 0.0);
        assert_eq!(plan.estimated_cycles(), 0);
    }

    #[test]
    fn compile_report_serde_round_trip() {
        let mut instructions_by_class = BTreeMap::new();
        instructions_by_class.insert(OpcodeClass::Cim, 120usize);
        instructions_by_class.insert(OpcodeClass::Control, 7usize);
        let report = CompileReport {
            total_instructions: 127,
            instructions_by_class,
            stage_count: 3,
            group_count: 9,
            active_cores: 42,
            search_candidates: 7,
        };
        let text = serde_json::to_string(&report).unwrap();
        assert!(text.contains("\"cim\""), "histogram keys use class names: {text}");
        assert!(text.contains("search_candidates"));
        let back: CompileReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert!(serde_json::from_str::<CompileReport>("{\"total_instructions\": 1}").is_err());
    }
}
