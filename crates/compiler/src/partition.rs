//! CG-level model partitioning: the DP-based algorithm of the paper
//! (Alg. 1) and the two baseline strategies used in the Fig. 5 comparison.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::bitset::BitMask256;
use crate::cost::{CostModel, GroupMapping, StageCost};
use crate::frontend::{CondensedGraph, OpGroup};
use crate::CompileError;

/// Upper bound on enumerated dependency closures before falling back to
/// the prefix closures of the linearization.
const CLOSURE_CAP: usize = 1024;

/// One planned stage: its group indices, the chosen mapping and the
/// estimated cost (the element type of [`PartitionDecision::stages`]).
pub type PlannedStage = (Vec<usize>, Vec<GroupMapping>, StageCost);

/// A partitioning decision: the stages in execution order, each with its
/// group mapping and estimated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionDecision {
    /// Groups of each stage (indices into the condensed graph) together
    /// with the chosen mapping and the stage cost estimate.
    pub stages: Vec<PlannedStage>,
}

impl PartitionDecision {
    /// Total estimated cycles across stages.
    pub fn estimated_cycles(&self) -> u64 {
        self.stages.iter().map(|(_, _, c)| c.cycles).sum()
    }
}

/// Runs the CG-level partitioner of one strategy — the per-chip stage
/// partition both the sequential pipeline and the joint system search
/// lower candidate chip subgraphs through.
///
/// # Errors
///
/// Returns [`CompileError::CapacityExceeded`] when the (sub)graph cannot
/// fit the chip under any partition.
pub fn partition_with_strategy(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
    strategy: crate::Strategy,
) -> Result<PartitionDecision, CompileError> {
    match strategy {
        crate::Strategy::GenericMapping => generic_partition(condensed, cost_model),
        crate::Strategy::OperatorDuplication => duplication_partition(condensed, cost_model),
        crate::Strategy::DpOptimized => dp_partition(condensed, cost_model),
    }
}

/// Enumerates the dependency closures (down-sets) of the condensed graph
/// as bitmasks.
///
/// "Each dependency closure represents a self-contained set of operators
/// whose dependencies are fully enclosed within the set, serving as basic
/// building blocks for candidate partitions." The enumeration is breadth
/// first over the closure lattice and capped at `CLOSURE_CAP` entries;
/// when the cap is hit the function falls back to the prefix closures of
/// the dependency-preserving linearization, which are always valid.
pub fn dependency_closures(condensed: &CondensedGraph) -> Vec<BitMask256> {
    let n = condensed.len();
    let mut seen: BTreeSet<BitMask256> = BTreeSet::new();
    let mut queue: VecDeque<BitMask256> = VecDeque::new();
    let empty = BitMask256::empty();
    seen.insert(empty);
    queue.push_back(empty);
    while let Some(current) = queue.pop_front() {
        if seen.len() > CLOSURE_CAP {
            break;
        }
        for i in 0..n {
            if current.contains(i) {
                continue;
            }
            let ready = condensed.pred_indices(i).iter().all(|p| current.contains(*p));
            if !ready {
                continue;
            }
            let mut next = current;
            next.insert(i);
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    if seen.len() > CLOSURE_CAP {
        // Fallback: prefixes of the linearization (always dependency closed).
        let mut closures: Vec<BitMask256> = Vec::with_capacity(n + 1);
        let mut mask = BitMask256::empty();
        closures.push(mask);
        for i in 0..n {
            mask.insert(i);
            closures.push(mask);
        }
        return closures;
    }
    let mut closures: Vec<BitMask256> = seen.into_iter().collect();
    closures.sort_by_key(|c| (c.len(), *c));
    closures
}

fn groups_of<'a>(condensed: &'a CondensedGraph, mask: &BitMask256) -> Vec<&'a OpGroup> {
    mask.iter().map(|i| &condensed.groups()[i]).collect()
}

/// The DP-based partitioning and mapping of Alg. 1.
///
/// `dp[i]` is the best total cost of executing the dependency closure
/// `D[i]`; transitions consider every closure `D[j] ⊆ D[i]` and treat the
/// set difference as a candidate stage mapped with
/// [`CostModel::optimal_mapping`].
///
/// # Errors
///
/// Returns [`CompileError::CapacityExceeded`] if some operator group can
/// never fit the chip, making every partition infeasible.
pub fn dp_partition(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
) -> Result<PartitionDecision, CompileError> {
    check_individual_capacity(condensed, cost_model)?;
    let closures = dependency_closures(condensed);
    let full = BitMask256::full(condensed.len());
    let mut dp: Vec<f64> = vec![f64::INFINITY; closures.len()];
    let mut prev: Vec<Option<usize>> = vec![None; closures.len()];
    let mut stage_of: Vec<Option<PlannedStage>> = vec![None; closures.len()];
    let mut mapping_cache: HashMap<BitMask256, Option<(StageCost, Vec<GroupMapping>)>> =
        HashMap::new();

    for (i, closure) in closures.iter().enumerate() {
        if closure.is_empty() {
            dp[i] = 0.0;
            continue;
        }
        for (j, candidate) in closures.iter().enumerate().take(i) {
            if dp[j].is_infinite() || !candidate.is_subset_of(closure) {
                continue;
            }
            let stage_mask = closure.difference(candidate);
            if stage_mask.is_empty() {
                continue;
            }
            let entry = mapping_cache.entry(stage_mask).or_insert_with(|| {
                let stage_groups = groups_of(condensed, &stage_mask);
                cost_model.optimal_mapping(&stage_groups)
            });
            let Some((cost, mapping)) = entry.clone() else { continue };
            let total = dp[j] + cost.cycles as f64;
            if total < dp[i] {
                dp[i] = total;
                prev[i] = Some(j);
                stage_of[i] = Some((stage_mask.iter().collect(), mapping, cost));
            }
        }
    }

    let full_index = closures.iter().position(|c| *c == full).unwrap_or(closures.len() - 1);
    if dp[full_index].is_infinite() {
        return Err(capacity_error(condensed, cost_model));
    }
    // Reconstruct the stage sequence.
    let mut stages = Vec::new();
    let mut cursor = full_index;
    while let Some(j) = prev[cursor] {
        if let Some(stage) = stage_of[cursor].clone() {
            stages.push(stage);
        }
        cursor = j;
    }
    stages.reverse();
    Ok(PartitionDecision { stages })
}

/// The generic-mapping baseline: greedy capacity-driven partitioning with
/// an inter-layer pipeline inside every stage and **no** operator
/// duplication.
pub fn generic_partition(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
) -> Result<PartitionDecision, CompileError> {
    greedy_partition(condensed, cost_model, false)
}

/// The CIM-MLC-style baseline: the same greedy capacity-driven
/// partitioning, followed by opportunistic duplication of operators into
/// the cores left vacant inside each stage.
pub fn duplication_partition(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
) -> Result<PartitionDecision, CompileError> {
    greedy_partition(condensed, cost_model, true)
}

fn greedy_partition(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
    duplicate: bool,
) -> Result<PartitionDecision, CompileError> {
    check_individual_capacity(condensed, cost_model)?;
    let total_cores = cost_model.total_cores();
    let mut stages: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut current_cores = 0u32;
    for group in condensed.groups() {
        let need = cost_model.min_cores(group);
        if current_cores + need > total_cores && !current.is_empty() {
            stages.push(std::mem::take(&mut current));
            current_cores = 0;
        }
        current.push(group.index);
        current_cores += need;
    }
    if !current.is_empty() {
        stages.push(current);
    }
    let mut decided = Vec::with_capacity(stages.len());
    for stage in stages {
        let stage_groups: Vec<&OpGroup> = stage.iter().map(|i| &condensed.groups()[*i]).collect();
        let (cost, mapping) = cost_model
            .mapping_with_duplication(&stage_groups, duplicate)
            .ok_or_else(|| capacity_error(condensed, cost_model))?;
        decided.push((stage, mapping, cost));
    }
    Ok(PartitionDecision { stages: decided })
}

fn check_individual_capacity(
    condensed: &CondensedGraph,
    cost_model: &CostModel,
) -> Result<(), CompileError> {
    for group in condensed.groups() {
        if cost_model.min_cores(group) > cost_model.total_cores() {
            return Err(CompileError::CapacityExceeded {
                group: group.name.clone(),
                required_bytes: group.metrics.weight_bytes,
                available_bytes: u64::from(cost_model.total_cores())
                    * cost_model.core_capacity_bytes(),
            });
        }
    }
    Ok(())
}

fn capacity_error(condensed: &CondensedGraph, cost_model: &CostModel) -> CompileError {
    let largest = condensed
        .groups()
        .iter()
        .max_by_key(|g| g.metrics.weight_bytes)
        .expect("condensed graph is never empty here");
    CompileError::CapacityExceeded {
        group: largest.name.clone(),
        required_bytes: largest.metrics.weight_bytes,
        available_bytes: u64::from(cost_model.total_cores()) * cost_model.core_capacity_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_arch::ArchConfig;
    use cimflow_nn::models;

    fn condensed(model: cimflow_nn::Model) -> CondensedGraph {
        CondensedGraph::from_graph(&model.graph).unwrap()
    }

    #[test]
    fn closures_of_a_chain_are_its_prefixes() {
        let vgg = condensed(models::vgg19(32));
        let closures = dependency_closures(&vgg);
        assert_eq!(closures.len(), vgg.len() + 1, "a chain has exactly n+1 down-sets");
        for (i, c) in closures.iter().enumerate() {
            assert_eq!(c.len(), i);
        }
    }

    #[test]
    fn closures_are_dependency_closed() {
        let resnet = condensed(models::resnet18(64));
        let closures = dependency_closures(&resnet);
        assert!(closures.len() > resnet.len());
        for closure in &closures {
            for member in closure.iter() {
                for pred in resnet.pred_indices(member) {
                    assert!(
                        closure.contains(pred),
                        "closure {closure} misses pred {pred} of {member}"
                    );
                }
            }
        }
    }

    #[test]
    fn every_partition_covers_every_group_exactly_once() {
        let arch = ArchConfig::paper_default();
        let cost = CostModel::new(&arch);
        for model in [models::resnet18(64), models::mobilenet_v2(64), models::vgg19(64)] {
            let graph = condensed(model);
            for decision in [
                generic_partition(&graph, &cost).unwrap(),
                duplication_partition(&graph, &cost).unwrap(),
                dp_partition(&graph, &cost).unwrap(),
            ] {
                let mut covered: Vec<usize> =
                    decision.stages.iter().flat_map(|(g, _, _)| g.clone()).collect();
                covered.sort_unstable();
                let expected: Vec<usize> = (0..graph.len()).collect();
                assert_eq!(covered, expected);
                // Stage order must respect dependencies.
                let mut seen = std::collections::BTreeSet::new();
                for (stage_groups, mapping, cost) in &decision.stages {
                    for g in stage_groups {
                        for pred in graph.pred_indices(*g) {
                            assert!(seen.contains(&pred) || stage_groups.contains(&pred));
                        }
                    }
                    assert_eq!(mapping.len(), stage_groups.len());
                    assert!(cost.cycles > 0);
                    seen.extend(stage_groups.iter().copied());
                }
            }
        }
    }

    #[test]
    fn vgg19_requires_multiple_stages() {
        let arch = ArchConfig::paper_default();
        let cost = CostModel::new(&arch);
        let limit = u64::from(arch.chip().core_count) * cost.core_capacity_bytes() * 3 / 4;
        let vgg =
            CondensedGraph::from_graph_with_capacity(&models::vgg19(224).graph, limit).unwrap();
        let generic = generic_partition(&vgg, &cost).unwrap();
        assert!(generic.stages.len() > 1, "143 MB of VGG19 weights cannot fit 32 MB of CIM");
        let dp = dp_partition(&vgg, &cost).unwrap();
        assert!(dp.stages.len() > 1);
    }

    #[test]
    fn compact_models_duplicate_and_need_no_more_stages_than_generic() {
        let arch = ArchConfig::paper_default();
        let cost = CostModel::new(&arch);
        let mobilenet = condensed(models::mobilenet_v2(64));
        let dp = dp_partition(&mobilenet, &cost).unwrap();
        let generic = generic_partition(&mobilenet, &cost).unwrap();
        assert!(dp.stages.len() <= generic.stages.len().max(4));
        let duplicated: u32 =
            dp.stages.iter().flat_map(|(_, m, _)| m.iter().map(|g| g.replicas)).max().unwrap();
        assert!(duplicated > 1, "vacant cores must be used for duplication");
    }

    #[test]
    fn dp_is_never_worse_than_the_baselines() {
        let arch = ArchConfig::paper_default();
        let cost = CostModel::new(&arch);
        for model in [models::resnet18(64), models::mobilenet_v2(64), models::efficientnet_b0(64)] {
            let graph = condensed(model);
            let dp = dp_partition(&graph, &cost).unwrap().estimated_cycles();
            let generic = generic_partition(&graph, &cost).unwrap().estimated_cycles();
            let dup = duplication_partition(&graph, &cost).unwrap().estimated_cycles();
            assert!(dp <= generic, "dp {dp} vs generic {generic}");
            assert!(dp <= dup, "dp {dp} vs duplication {dup}");
        }
    }

    #[test]
    fn impossible_workloads_report_capacity_errors() {
        let arch = ArchConfig::paper_default().with_core_count(1);
        let cost = CostModel::new(&arch);
        let vgg = condensed(models::vgg19(224));
        assert!(matches!(dp_partition(&vgg, &cost), Err(CompileError::CapacityExceeded { .. })));
        assert!(matches!(
            generic_partition(&vgg, &cost),
            Err(CompileError::CapacityExceeded { .. })
        ));
    }
}
