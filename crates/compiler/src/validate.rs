//! Post-codegen validation: the compiler-side counterpart of the paper's
//! "Functional Validation / Exec. Result Check" box (Fig. 2).
//!
//! Three families of checks are performed on every compilation (unless
//! explicitly disabled through [`crate::CompileOptions`]):
//!
//! 1. **Program well-formedness** — every per-core program resolves its
//!    branches inside the program body and terminates with `halt`.
//! 2. **Coverage** — inside every stage, each operator group's output
//!    pixels are covered exactly once by its clusters and its output
//!    channels are covered by the per-core channel slices; no stage
//!    over-subscribes the physical cores.
//! 3. **Communication consistency** — every `(source, destination)`
//!    channel has exactly as many receives as sends, so the simulator's
//!    FIFO matching can never dead-lock.

use cimflow_arch::ArchConfig;

use crate::codegen::GeneratedCode;
use crate::frontend::CondensedGraph;
use crate::oplevel::OpTiling;
use crate::plan::CompilationPlan;
use crate::CompileError;

/// Runs all validation checks.
///
/// # Errors
///
/// Returns [`CompileError::ValidationFailed`] describing the first failed
/// check.
pub fn check(
    generated: &GeneratedCode,
    plan: &CompilationPlan,
    condensed: &CondensedGraph,
    arch: &ArchConfig,
) -> Result<(), CompileError> {
    check_programs(generated, arch)?;
    check_coverage(plan, condensed, arch)?;
    check_transfers(generated)?;
    Ok(())
}

fn fail(reason: impl Into<String>) -> CompileError {
    CompileError::ValidationFailed { reason: reason.into() }
}

fn check_programs(generated: &GeneratedCode, arch: &ArchConfig) -> Result<(), CompileError> {
    if generated.per_core.len() != arch.chip().core_count as usize {
        return Err(fail(format!(
            "expected {} per-core programs, found {}",
            arch.chip().core_count,
            generated.per_core.len()
        )));
    }
    for (core, program) in generated.per_core.iter().enumerate() {
        program
            .validate()
            .map_err(|e| fail(format!("program of core {core} is ill-formed: {e}")))?;
        if !program.is_halting() {
            return Err(fail(format!("program of core {core} does not end with halt")));
        }
        if program.len() > arch.core.instruction_memory_entries as usize {
            return Err(fail(format!(
                "program of core {core} has {} instructions but the instruction memory holds {}",
                program.len(),
                arch.core.instruction_memory_entries
            )));
        }
    }
    Ok(())
}

fn check_coverage(
    plan: &CompilationPlan,
    condensed: &CondensedGraph,
    arch: &ArchConfig,
) -> Result<(), CompileError> {
    let mut seen_groups = vec![false; condensed.len()];
    for stage in &plan.stages {
        let mut used_cores: Vec<u32> = Vec::new();
        for placement in &stage.placements {
            let group = &condensed.groups()[placement.group];
            if seen_groups[placement.group] {
                return Err(fail(format!(
                    "group `{}` is placed in more than one stage",
                    group.name
                )));
            }
            seen_groups[placement.group] = true;
            if placement.clusters.is_empty() {
                return Err(fail(format!("group `{}` has no cluster", group.name)));
            }
            // Pixel coverage: clusters partition the output pixels.
            let mut cursor = 0u32;
            for cluster in &placement.clusters {
                if cluster.pixel_start != cursor {
                    return Err(fail(format!(
                        "group `{}` leaves a pixel gap at {cursor}",
                        group.name
                    )));
                }
                cursor = cluster.pixel_end;
                if cluster.cores.is_empty() {
                    return Err(fail(format!("group `{}` has an empty cluster", group.name)));
                }
                // Channel/weight capacity per core.
                let tiling =
                    OpTiling::plan(group, arch, cluster.cores.len() as u32, cluster.pixels());
                if tiling.weight_bytes_per_core() > arch.core.cim_unit.weight_capacity_bytes() {
                    return Err(fail(format!(
                        "group `{}` needs {} weight bytes per core, capacity is {}",
                        group.name,
                        tiling.weight_bytes_per_core(),
                        arch.core.cim_unit.weight_capacity_bytes()
                    )));
                }
                used_cores.extend(cluster.cores.iter().copied());
            }
            if cursor != group.metrics.out_pixels {
                return Err(fail(format!(
                    "group `{}` covers {cursor} of {} output pixels",
                    group.name, group.metrics.out_pixels
                )));
            }
        }
        used_cores.sort_unstable();
        let before = used_cores.len();
        used_cores.dedup();
        if before != used_cores.len() {
            return Err(fail(format!("stage {} assigns a core to two groups", stage.index)));
        }
        if used_cores.len() > arch.chip().core_count as usize {
            return Err(fail(format!("stage {} uses more cores than the chip has", stage.index)));
        }
    }
    for (index, seen) in seen_groups.iter().enumerate() {
        if !seen {
            return Err(fail(format!(
                "group `{}` is not placed in any stage",
                condensed.groups()[index].name
            )));
        }
    }
    Ok(())
}

fn check_transfers(generated: &GeneratedCode) -> Result<(), CompileError> {
    let manifest = &generated.manifest;
    for (channel, sends) in &manifest.sends {
        let recvs = manifest.recvs.get(channel).copied().unwrap_or(0);
        if recvs != *sends {
            return Err(fail(format!(
                "channel {}->{} has {sends} sends but {recvs} receives",
                channel.0, channel.1
            )));
        }
    }
    for (channel, recvs) in &manifest.recvs {
        if !manifest.sends.contains_key(channel) {
            return Err(fail(format!(
                "channel {}->{} has {recvs} receives but no send",
                channel.0, channel.1
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::TransferManifest;
    use crate::{compile_with_options, CompileOptions, Strategy};
    use cimflow_isa::Program;
    use cimflow_nn::models;

    #[test]
    fn compiled_benchmarks_pass_all_checks() {
        let arch = ArchConfig::paper_default();
        for strategy in [Strategy::GenericMapping, Strategy::DpOptimized] {
            let compiled = compile_with_options(
                &models::resnet18(32),
                &arch,
                CompileOptions { strategy, ..CompileOptions::default() },
            )
            .unwrap();
            assert!(compiled.report.total_instructions > 0);
        }
    }

    #[test]
    fn mismatched_transfer_manifest_is_rejected() {
        let mut manifest = TransferManifest::default();
        manifest.sends.insert((0, 1), 3);
        manifest.recvs.insert((0, 1), 2);
        let generated = GeneratedCode { per_core: vec![], manifest };
        assert!(matches!(check_transfers(&generated), Err(CompileError::ValidationFailed { .. })));

        let mut manifest = TransferManifest::default();
        manifest.recvs.insert((2, 3), 1);
        let generated = GeneratedCode { per_core: vec![], manifest };
        assert!(check_transfers(&generated).is_err());
    }

    #[test]
    fn missing_halt_or_wrong_core_count_is_rejected() {
        let arch = ArchConfig::paper_default();
        let generated = GeneratedCode {
            per_core: vec![Program::new(); 3],
            manifest: TransferManifest::default(),
        };
        assert!(check_programs(&generated, &arch).is_err());

        let generated = GeneratedCode {
            per_core: vec![Program::new(); arch.chip().core_count as usize],
            manifest: TransferManifest::default(),
        };
        assert!(check_programs(&generated, &arch).is_err(), "empty programs never halt");
    }
}
