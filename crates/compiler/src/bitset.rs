//! Fixed-width bitmask used to encode dependency closures (Alg. 1 of the
//! paper applies "a state compression optimization that encodes all the
//! dependency closures in the DAG as bitmasks").

use std::fmt;

/// A 256-bit set over condensed-graph operator indices.
///
/// 256 bits comfortably cover the largest benchmark (EfficientNetB0
/// condenses to fewer than 100 MVM groups) while keeping subset tests a
/// handful of word operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BitMask256 {
    words: [u64; 4],
}

impl BitMask256 {
    /// Number of representable elements.
    pub const CAPACITY: usize = 256;

    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The set containing `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`Self::CAPACITY`].
    pub fn full(len: usize) -> Self {
        assert!(len <= Self::CAPACITY, "bitmask capacity exceeded");
        let mut mask = Self::empty();
        for i in 0..len {
            mask.insert(i);
        }
        mask
    }

    /// Inserts an element.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below [`Self::CAPACITY`].
    pub fn insert(&mut self, index: usize) {
        assert!(index < Self::CAPACITY, "bitmask capacity exceeded");
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Removes an element.
    pub fn remove(&mut self, index: usize) {
        if index < Self::CAPACITY {
            self.words[index / 64] &= !(1u64 << (index % 64));
        }
    }

    /// Whether the element is present.
    pub fn contains(&self, index: usize) -> bool {
        index < Self::CAPACITY && self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `self` is a subset of `other` (the Alg. 1 transition test
    /// `D[i] & D[j] == D[j]`).
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == *a)
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        out
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// Set difference (`self \ other`) — the paper's "extract the set
    /// difference of dependencies as a partition" step.
    pub fn difference(&self, other: &Self) -> Self {
        let mut out = *self;
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        out
    }

    /// Iterates over the contained indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..Self::CAPACITY).filter(move |i| self.contains(*i))
    }
}

impl fmt::Display for BitMask256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitMask256 {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut mask = Self::empty();
        for i in iter {
            mask.insert(i);
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut m = BitMask256::empty();
        assert!(m.is_empty());
        m.insert(0);
        m.insert(63);
        m.insert(64);
        m.insert(255);
        assert_eq!(m.len(), 4);
        assert!(m.contains(63) && m.contains(64) && m.contains(255));
        assert!(!m.contains(100));
        m.remove(64);
        assert!(!m.contains(64));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn subset_union_difference() {
        let a: BitMask256 = [1, 2, 3].into_iter().collect();
        let b: BitMask256 = [1, 2, 3, 70, 80].into_iter().collect();
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(b.difference(&a), [70, 80].into_iter().collect());
        assert_eq!(a.union(&b), b);
        assert_eq!(a.intersection(&b), a);
        assert!(BitMask256::empty().is_subset_of(&a));
    }

    #[test]
    fn full_and_iter_are_consistent() {
        let m = BitMask256::full(100);
        assert_eq!(m.len(), 100);
        let collected: Vec<usize> = m.iter().collect();
        assert_eq!(collected.len(), 100);
        assert_eq!(collected[0], 0);
        assert_eq!(collected[99], 99);
    }

    #[test]
    fn display_lists_members() {
        let m: BitMask256 = [3, 65].into_iter().collect();
        assert_eq!(m.to_string(), "{3,65}");
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn oversized_insert_panics() {
        let mut m = BitMask256::empty();
        m.insert(256);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn union_difference_partition(xs in prop::collection::btree_set(0usize..256, 0..60),
                                          ys in prop::collection::btree_set(0usize..256, 0..60)) {
                let a: BitMask256 = xs.iter().copied().collect();
                let b: BitMask256 = ys.iter().copied().collect();
                let diff = a.difference(&b);
                let inter = a.intersection(&b);
                // difference and intersection partition a.
                prop_assert_eq!(diff.union(&inter), a);
                prop_assert!(diff.intersection(&b).is_empty());
                prop_assert_eq!(a.len(), diff.len() + inter.len());
                // subset relation agrees with set semantics.
                prop_assert_eq!(a.is_subset_of(&b), xs.is_subset(&ys));
            }
        }
    }
}
