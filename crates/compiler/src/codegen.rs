//! Code generation: lowering the CG-level plan and the OP-level tilings
//! into per-core ISA programs.
//!
//! The generated code follows the structure of Fig. 4's "Generated Code"
//! panel: per execution stage every core first stages its weight tiles
//! from global memory and programs them into its macro groups, then runs a
//! pixel loop per operator tile whose body gathers the im2col window,
//! issues the `cim_mvm` operations, drains and requantizes the
//! accumulators and applies the fused vector operators, and finally ships
//! the produced tile to its consumers over the NoC (or to global memory at
//! stage boundaries).
//!
//! Conventional optimizations are applied during emission: address
//! constants are folded into the shortest `sc_li`/`sc_lui` sequences,
//! loop-invariant register setup is hoisted out of the pixel loop, unary
//! vector operators drop their unused operand, and no dead stores are
//! emitted for groups without fused element-wise work.

use std::collections::BTreeMap;

use cimflow_arch::{ArchConfig, SegmentKind};
use cimflow_isa::{
    GReg, Instruction, PoolKind, Program, ProgramBuilder, ScalarAluOp, VectorOpKind,
};

use crate::frontend::{CondensedGraph, OpGroup};
use crate::oplevel::OpTiling;
use crate::plan::{ClusterPlan, CompilationPlan};
use crate::CompileError;

/// Static manifest of the inter-core transfers emitted by code
/// generation, used by the validator to prove that every receive has a
/// matching send on the same `(source, destination)` channel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferManifest {
    /// Send count per `(source core, destination core)` channel.
    pub sends: BTreeMap<(u32, u32), u64>,
    /// Receive count per `(source core, destination core)` channel.
    pub recvs: BTreeMap<(u32, u32), u64>,
}

/// The output of code generation.
#[derive(Debug)]
pub struct GeneratedCode {
    /// One program per core, indexed by core identifier.
    pub per_core: Vec<Program>,
    /// The inter-core transfer manifest.
    pub manifest: TransferManifest,
}

// Fixed register conventions used by the generated code.
fn r(i: u8) -> GReg {
    GReg::new(i).expect("register convention stays below the register-file size")
}
const GLOBAL_SRC: u8 = 1; // global / remote source address
const OUT_PTR: u8 = 2; // output write pointer
const ROWS: u8 = 3; // activated rows per MVM (also gather byte count)
const LEN: u8 = 4; // generic transfer length
const GATHER: u8 = 5; // im2col gather buffer address
const SHIFT: u8 = 6; // requantization shift
const PIX: u8 = 7; // pixel counter
const PIX_LIMIT: u8 = 8; // pixels in the current tile
const ACC: u8 = 9; // accumulator tile address
const PEER: u8 = 10; // peer core id for send/recv
const CH_LEN: u8 = 11; // output channels per core
const OUT_STRIDE: u8 = 12; // output pointer stride per pixel
const IN_STRIDE: u8 = 13; // input pointer stride per pixel
const IN_PTR: u8 = 14; // input read pointer
const VLEN: u8 = 15; // fused vector work length per tile

/// Lowers a compilation plan into per-core programs.
///
/// # Errors
///
/// Returns a [`CompileError::Codegen`] if an emitted program fails label
/// resolution or structural validation.
pub fn generate(
    condensed: &CondensedGraph,
    plan: &CompilationPlan,
    arch: &ArchConfig,
) -> Result<GeneratedCode, CompileError> {
    let core_count = arch.chip().core_count as usize;
    let mut builders: Vec<ProgramBuilder> =
        (0..core_count).map(|_| ProgramBuilder::new()).collect();
    let mut manifest = TransferManifest::default();
    let layout = GlobalLayout::new(condensed, arch);
    let map = arch.address_map();

    for stage in &plan.stages {
        // ---- Weight staging and macro-group programming -----------------
        for placement in &stage.placements {
            let group = &condensed.groups()[placement.group];
            for cluster in &placement.clusters {
                let tiling =
                    OpTiling::plan(group, arch, cluster.cores.len() as u32, cluster.pixels());
                for core in &cluster.cores {
                    let b = &mut builders[*core as usize];
                    emit_weight_load(b, group, &tiling, arch, &layout)?;
                }
            }
        }
        // Synchronize: weights of the stage are resident before execution.
        for b in builders.iter_mut() {
            b.push(Instruction::Barrier { id: (stage.index * 2) as u16 });
        }

        // ---- Execution: groups in dependency order ----------------------
        for placement in &stage.placements {
            let group = &condensed.groups()[placement.group];
            let stage_groups = stage.group_indices();
            for cluster in &placement.clusters {
                let tiling =
                    OpTiling::plan(group, arch, cluster.cores.len() as u32, cluster.pixels());
                for (slice_index, core) in cluster.cores.iter().enumerate() {
                    emit_group_inputs(
                        &mut builders,
                        &mut manifest,
                        condensed,
                        plan,
                        arch,
                        &layout,
                        group,
                        cluster,
                        *core,
                        &stage_groups,
                    )?;
                    emit_group_body(
                        &mut builders[*core as usize],
                        &mut manifest,
                        condensed,
                        plan,
                        arch,
                        &layout,
                        group,
                        cluster,
                        &tiling,
                        *core,
                        slice_index,
                        &stage_groups,
                    )?;
                }
            }
        }
        // Stage-end barrier: the arrays may be reprogrammed afterwards.
        for b in builders.iter_mut() {
            b.push(Instruction::Barrier { id: (stage.index * 2 + 1) as u16 });
        }
    }

    let mut per_core = Vec::with_capacity(core_count);
    for mut b in builders {
        b.push(Instruction::Halt);
        per_core.push(b.finish()?);
    }
    let _ = map;
    Ok(GeneratedCode { per_core, manifest })
}

/// Global-memory layout: every group gets a region for its spilled output
/// and a region its weights are streamed from.
struct GlobalLayout {
    global_base: u64,
    global_size: u64,
    output_offset: Vec<u64>,
    weight_offset: Vec<u64>,
    #[allow(dead_code)]
    graph_input_bytes: u64,
}

impl GlobalLayout {
    fn new(condensed: &CondensedGraph, arch: &ArchConfig) -> Self {
        let map = arch.address_map();
        let graph_input_bytes = condensed
            .groups()
            .iter()
            .filter(|g| g.reads_graph_input)
            .map(|g| g.metrics.input_bytes)
            .max()
            .unwrap_or(0);
        let mut cursor = graph_input_bytes;
        let mut output_offset = Vec::with_capacity(condensed.len());
        for group in condensed.groups() {
            output_offset.push(cursor);
            cursor += group.metrics.output_bytes;
        }
        let mut weight_offset = Vec::with_capacity(condensed.len());
        for group in condensed.groups() {
            weight_offset.push(cursor);
            cursor += group.metrics.weight_bytes;
        }
        GlobalLayout {
            global_base: map.global_base,
            global_size: map.global_size.max(1),
            output_offset,
            weight_offset,
            graph_input_bytes,
        }
    }

    /// Address of a group's spilled output in the unified address space.
    fn output_addr(&self, group: usize) -> u32 {
        self.wrap(self.output_offset[group])
    }

    /// Address of a group's weight image in the unified address space.
    fn weight_addr(&self, group: usize) -> u32 {
        self.wrap(self.weight_offset[group])
    }

    /// Address of the graph input image.
    fn input_addr(&self) -> u32 {
        self.wrap(0)
    }

    fn wrap(&self, offset: u64) -> u32 {
        (self.global_base + offset % self.global_size) as u32
    }
}

fn segment_addr(arch: &ArchConfig, kind: SegmentKind) -> u32 {
    arch.address_map().segment_base(kind) as u32
}

fn tile_pixels(tiling: &OpTiling, tile: u32) -> u32 {
    let start = tile * tiling.pixel_tile;
    tiling.cluster_pixels.saturating_sub(start).min(tiling.pixel_tile).max(1)
}

/// The producer-tile index range `[t0, t1)` of `producer_cluster` that a
/// consumer responsible for output pixels `[cons_start, cons_end)` (out of
/// `cons_total`) needs. Both the producer- and the consumer-side emission
/// call this same function, which keeps the send/receive counts equal.
fn needed_tile_range(
    producer_tiling: &OpTiling,
    producer_cluster: &ClusterPlan,
    producer_total: u32,
    cons_range: (u32, u32),
    cons_total: u32,
) -> (u32, u32) {
    let cons_total = cons_total.max(1) as u64;
    let producer_total = u64::from(producer_total.max(1));
    // Scale the consumer's pixel range into producer pixel space and add a
    // halo margin for overlapping receptive fields.
    let halo = (producer_total / 8).max(1);
    let a = u64::from(cons_range.0) * producer_total / cons_total;
    let b = (u64::from(cons_range.1) * producer_total).div_ceil(cons_total) + halo;
    let a = a.saturating_sub(halo);
    let (ps, pe) = (u64::from(producer_cluster.pixel_start), u64::from(producer_cluster.pixel_end));
    let lo = a.max(ps);
    let hi = b.min(pe);
    if lo >= hi {
        return (0, 0);
    }
    let t = u64::from(producer_tiling.pixel_tile.max(1));
    let t0 = (lo - ps) / t;
    let t1 = (hi - ps).div_ceil(t);
    (t0 as u32, (t1 as u32).min(producer_tiling.pixel_tiles))
}

fn emit_weight_load(
    b: &mut ProgramBuilder,
    group: &OpGroup,
    tiling: &OpTiling,
    arch: &ArchConfig,
    layout: &GlobalLayout,
) -> Result<(), CompileError> {
    let weight_bytes = tiling.weight_bytes_per_core().min(u64::from(u32::MAX)) as u32;
    b.load_immediate(r(GLOBAL_SRC), layout.weight_addr(group.index))?;
    b.load_immediate(r(OUT_PTR), segment_addr(arch, SegmentKind::Weight))?;
    b.load_immediate(r(LEN), weight_bytes.max(1))?;
    b.push(Instruction::MemCpy { src: r(GLOBAL_SRC), dst: r(OUT_PTR), len: r(LEN), offset: 0 });
    let rows = tiling.k_rows.min(arch.core.cim_unit.rows_per_operation());
    b.load_immediate(r(ROWS), rows.max(1))?;
    // Program every macro group, including the duplicated copies that let
    // vacant MGs serve interleaved output pixels.
    let copies = tiling.intra_core_duplication(arch.core.cim_unit.macro_groups);
    for copy in 0..copies {
        for mg in 0..tiling.macro_groups_used {
            let index = (copy * tiling.macro_groups_used + mg) % 64;
            b.push(Instruction::CimLoad { weights: r(OUT_PTR), rows: r(ROWS), mg: index as u8 });
        }
    }
    Ok(())
}

/// Emits the input acquisition of one group on one consumer core:
/// receives from same-stage producer cores, or global-memory copies for
/// graph inputs and earlier-stage producers.
#[allow(clippy::too_many_arguments)]
fn emit_group_inputs(
    builders: &mut [ProgramBuilder],
    manifest: &mut TransferManifest,
    condensed: &CondensedGraph,
    plan: &CompilationPlan,
    arch: &ArchConfig,
    layout: &GlobalLayout,
    group: &OpGroup,
    cluster: &ClusterPlan,
    core: u32,
    stage_groups: &[usize],
) -> Result<(), CompileError> {
    let my_range = (cluster.pixel_start, cluster.pixel_end);
    let in_seg = segment_addr(arch, SegmentKind::Input);

    if group.reads_graph_input {
        let share = share_of(group.metrics.input_bytes, cluster.pixels(), group.metrics.out_pixels);
        let b = &mut builders[core as usize];
        b.load_immediate(r(GLOBAL_SRC), layout.input_addr())?;
        b.load_immediate(r(OUT_PTR), in_seg)?;
        b.load_immediate(r(LEN), share)?;
        b.push(Instruction::MemCpy { src: r(GLOBAL_SRC), dst: r(OUT_PTR), len: r(LEN), offset: 0 });
    }

    for dep in &group.preds {
        let producer = &condensed.groups()[dep.group];
        let same_stage = stage_groups.contains(&dep.group);
        if !same_stage {
            // The producer ran in an earlier stage and spilled to global
            // memory; fetch this cluster's share.
            let share = share_of(dep.bytes, cluster.pixels(), group.metrics.out_pixels);
            let b = &mut builders[core as usize];
            b.load_immediate(r(GLOBAL_SRC), layout.output_addr(dep.group))?;
            b.load_immediate(r(OUT_PTR), in_seg)?;
            b.load_immediate(r(LEN), share)?;
            b.push(Instruction::MemCpy {
                src: r(GLOBAL_SRC),
                dst: r(OUT_PTR),
                len: r(LEN),
                offset: 0,
            });
            continue;
        }
        // Same stage: receive the needed tiles from every producer core.
        let (_, producer_placement) =
            plan.placement_of(dep.group).expect("same-stage producer must be placed");
        for producer_cluster in &producer_placement.clusters {
            let producer_tiling = OpTiling::plan(
                producer,
                arch,
                producer_cluster.cores.len() as u32,
                producer_cluster.pixels(),
            );
            let (t0, t1) = needed_tile_range(
                &producer_tiling,
                producer_cluster,
                producer.metrics.out_pixels,
                my_range,
                group.metrics.out_pixels,
            );
            for producer_core in &producer_cluster.cores {
                if *producer_core == core {
                    continue;
                }
                for t in t0..t1 {
                    let bytes = u64::from(tile_pixels(&producer_tiling, t))
                        * u64::from(producer_tiling.output_bytes_per_pixel_per_core);
                    let b = &mut builders[core as usize];
                    b.load_immediate(r(OUT_PTR), in_seg)?;
                    b.load_immediate(r(LEN), bytes.min(u64::from(u32::MAX)) as u32)?;
                    b.load_immediate(r(PEER), *producer_core)?;
                    b.push(Instruction::Recv {
                        addr: r(OUT_PTR),
                        len: r(LEN),
                        src_core: r(PEER),
                        tag: (dep.group % 2048) as u16,
                    });
                    *manifest.recvs.entry((*producer_core, core)).or_insert(0) += 1;
                }
            }
        }
    }
    Ok(())
}

/// Emits the pixel-tile loops of one group on one core, including the
/// producer-side sends / global-memory spills after every tile.
#[allow(clippy::too_many_arguments)]
fn emit_group_body(
    b: &mut ProgramBuilder,
    manifest: &mut TransferManifest,
    condensed: &CondensedGraph,
    plan: &CompilationPlan,
    arch: &ArchConfig,
    layout: &GlobalLayout,
    group: &OpGroup,
    cluster: &ClusterPlan,
    tiling: &OpTiling,
    core: u32,
    _slice_index: usize,
    stage_groups: &[usize],
) -> Result<(), CompileError> {
    let in_seg = segment_addr(arch, SegmentKind::Input);
    let out_seg = segment_addr(arch, SegmentKind::Output);
    let scratch = segment_addr(arch, SegmentKind::Scratch);
    let rows = tiling.k_rows.min(arch.core.cim_unit.rows_per_operation()).max(1);

    // Same-stage consumers of this group, in dependency order.
    let consumers: Vec<&OpGroup> = condensed
        .groups()
        .iter()
        .filter(|g| {
            stage_groups.contains(&g.index) && g.preds.iter().any(|d| d.group == group.index)
        })
        .collect();
    let spills_to_global = group.writes_graph_output
        || condensed.groups().iter().any(|g| {
            !stage_groups.contains(&g.index) && g.preds.iter().any(|d| d.group == group.index)
        });

    // Loop-invariant register setup (hoisted out of the tile loops).
    b.load_immediate(r(ROWS), rows)?;
    b.load_immediate(r(SHIFT), 8)?;
    b.load_immediate(r(CH_LEN), tiling.out_channels_per_core.max(1))?;
    b.load_immediate(r(IN_STRIDE), tiling.input_bytes_per_pixel.max(1))?;
    b.load_immediate(r(OUT_STRIDE), tiling.output_bytes_per_pixel_per_core.max(1))?;
    b.load_immediate(r(GATHER), scratch)?;
    b.load_immediate(r(ACC), scratch + 4096)?;
    let fused_per_tile = (group.metrics.vector_elems
        / u64::from(tiling.pixel_tiles.max(1))
        / u64::from(cluster.cores.len().max(1) as u32))
    .min(u64::from(u32::MAX)) as u32;

    // Vacant macro groups carry duplicated weight copies, so `copies`
    // output pixels are processed per loop iteration, one per copy.
    let copies = tiling.intra_core_duplication(arch.core.cim_unit.macro_groups);
    for tile in 0..tiling.pixel_tiles {
        let pixels = tile_pixels(tiling, tile);
        b.load_immediate(r(IN_PTR), in_seg)?;
        b.load_immediate(r(OUT_PTR), out_seg)?;
        b.load_immediate(r(PIX), 0)?;
        b.load_immediate(r(PIX_LIMIT), pixels.div_ceil(copies).max(1))?;
        let top = b.bind_label("pixel_loop");
        for copy in 0..copies {
            // im2col gather of the current window into the scratch buffer.
            b.push(Instruction::MemCpy { src: r(IN_PTR), dst: r(GATHER), len: r(ROWS), offset: 0 });
            for rt in 0..tiling.row_tiles {
                for ct in 0..tiling.channel_tiles_per_core {
                    let slot =
                        copy * tiling.macro_groups_used + rt * tiling.channel_tiles_per_core + ct;
                    b.push(Instruction::CimMvm {
                        input: r(GATHER),
                        rows: r(ROWS),
                        output: r(ACC),
                        mg: (slot % 64) as u8,
                    });
                }
            }
            for ct in 0..tiling.channel_tiles_per_core {
                let slot = copy * tiling.macro_groups_used + ct;
                b.push(Instruction::CimStoreAcc {
                    output: r(ACC),
                    len: r(CH_LEN),
                    mg: (slot % 64) as u8,
                });
            }
            b.push(Instruction::VecQuant {
                src: r(ACC),
                dst: r(OUT_PTR),
                shift: r(SHIFT),
                len: r(CH_LEN),
            });
            if group.metrics.vector_elems > 0 {
                b.push(Instruction::VecOp {
                    kind: VectorOpKind::Relu,
                    a: r(OUT_PTR),
                    b: GReg::ZERO,
                    dst: r(OUT_PTR),
                    len: r(CH_LEN),
                });
            }
            b.push(Instruction::ScAlu {
                op: ScalarAluOp::Add,
                dst: r(IN_PTR),
                a: r(IN_PTR),
                b: r(IN_STRIDE),
            });
            b.push(Instruction::ScAlu {
                op: ScalarAluOp::Add,
                dst: r(OUT_PTR),
                a: r(OUT_PTR),
                b: r(OUT_STRIDE),
            });
        }
        b.push(Instruction::ScAlui { op: ScalarAluOp::Add, dst: r(PIX), src: r(PIX), imm: 1 });
        b.branch_if_not_equal(r(PIX), r(PIX_LIMIT), top);

        // Remaining fused element-wise work (pooling, residual adds,
        // squeeze-and-excitation gating) once per tile.
        if fused_per_tile > 0 {
            b.load_immediate(r(VLEN), fused_per_tile)?;
            b.push(Instruction::VecPool {
                kind: PoolKind::Average,
                src: r(OUT_PTR),
                dst: r(OUT_PTR),
                window: r(SHIFT),
                len: r(VLEN),
            });
        }

        // Ship the finished tile to its consumers.
        let my_bytes = u64::from(pixels) * u64::from(tiling.output_bytes_per_pixel_per_core);
        for consumer in &consumers {
            let (_, consumer_placement) =
                plan.placement_of(consumer.index).expect("same-stage consumer must be placed");
            for consumer_cluster in &consumer_placement.clusters {
                let (t0, t1) = needed_tile_range(
                    tiling,
                    cluster,
                    group.metrics.out_pixels,
                    (consumer_cluster.pixel_start, consumer_cluster.pixel_end),
                    consumer.metrics.out_pixels,
                );
                if tile < t0 || tile >= t1 {
                    continue;
                }
                for consumer_core in &consumer_cluster.cores {
                    if *consumer_core == core {
                        continue;
                    }
                    b.load_immediate(r(GLOBAL_SRC), out_seg)?;
                    b.load_immediate(r(LEN), my_bytes.min(u64::from(u32::MAX)) as u32)?;
                    b.load_immediate(r(PEER), *consumer_core)?;
                    b.push(Instruction::Send {
                        addr: r(GLOBAL_SRC),
                        len: r(LEN),
                        dst_core: r(PEER),
                        tag: (group.index % 2048) as u16,
                    });
                    *manifest.sends.entry((core, *consumer_core)).or_insert(0) += 1;
                }
            }
        }
        if spills_to_global {
            b.load_immediate(r(GLOBAL_SRC), out_seg)?;
            b.load_immediate(r(OUT_PTR), layout.output_addr(group.index))?;
            b.load_immediate(r(LEN), my_bytes.min(u64::from(u32::MAX)) as u32)?;
            b.push(Instruction::MemCpy {
                src: r(GLOBAL_SRC),
                dst: r(OUT_PTR),
                len: r(LEN),
                offset: 0,
            });
        }
    }
    Ok(())
}

fn share_of(total_bytes: u64, cluster_pixels: u32, total_pixels: u32) -> u32 {
    let share = total_bytes * u64::from(cluster_pixels.max(1)) / u64::from(total_pixels.max(1));
    share.clamp(1, u64::from(u32::MAX)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_pixels_covers_the_cluster_exactly() {
        let tiling = OpTiling {
            k_rows: 64,
            row_tiles: 1,
            out_channels_per_core: 16,
            channel_tiles_per_core: 1,
            macro_groups_used: 1,
            pixel_tile: 10,
            pixel_tiles: 3,
            cluster_pixels: 25,
            input_bytes_per_pixel: 64,
            output_bytes_per_pixel_per_core: 16,
        };
        let total: u32 = (0..tiling.pixel_tiles).map(|t| tile_pixels(&tiling, t)).sum();
        assert_eq!(total, 25);
        assert_eq!(tile_pixels(&tiling, 2), 5);
    }

    #[test]
    fn needed_tile_range_is_within_bounds_and_monotone() {
        let tiling = OpTiling {
            k_rows: 64,
            row_tiles: 1,
            out_channels_per_core: 16,
            channel_tiles_per_core: 1,
            macro_groups_used: 1,
            pixel_tile: 16,
            pixel_tiles: 4,
            cluster_pixels: 64,
            input_bytes_per_pixel: 64,
            output_bytes_per_pixel_per_core: 16,
        };
        let cluster = ClusterPlan { cores: vec![0], pixel_start: 0, pixel_end: 64 };
        let full = needed_tile_range(&tiling, &cluster, 64, (0, 128), 128);
        assert_eq!(full, (0, 4));
        let first_half = needed_tile_range(&tiling, &cluster, 64, (0, 64), 128);
        let second_half = needed_tile_range(&tiling, &cluster, 64, (64, 128), 128);
        assert!(first_half.1 <= 4 && second_half.1 <= 4);
        assert!(first_half.0 <= second_half.0);
        // Disjoint producer cluster yields an empty range.
        let far = ClusterPlan { cores: vec![1], pixel_start: 1000, pixel_end: 1064 };
        assert_eq!(needed_tile_range(&tiling, &far, 2000, (0, 4), 128), (0, 0));
    }

    #[test]
    fn share_of_is_proportional_and_never_zero() {
        assert_eq!(share_of(1000, 50, 100), 500);
        assert_eq!(share_of(1000, 0, 100), 10);
        assert!(share_of(7, 1, 1000) >= 1);
    }
}
