//! The metrics side of the crate: counters, gauges, log-bucketed
//! histograms, and the registry that names them.
//!
//! # Cost model
//!
//! Instruments are handed out as shallow clones of `Arc`'d atomics, so a
//! hot loop resolves its instrument once and then records lock-free:
//! a counter increment is one `fetch_add`, a histogram record is a bin
//! `fetch_add` plus four scalar atomics on a per-thread shard. The
//! registry's mutex is touched only on instrument lookup/creation and
//! on [`MetricsRegistry::snapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Counter / gauge
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (registry instruments come from
    /// [`MetricsRegistry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, busy workers).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh, unregistered gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Values below this are binned exactly (one bin per integer).
const LINEAR_BINS: usize = 128;
/// Sub-bucket resolution above the linear region: 2 bits = 4 sub-buckets
/// per power of two, bounding the relative quantile error at ~12.5%.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// First octave of the logarithmic region (`2^7 == LINEAR_BINS`).
const FIRST_OCTAVE: u32 = 7;

/// Total bins of a histogram: an exact linear region for small values
/// plus 4 log sub-buckets per octave up to `u64::MAX`.
pub const HISTOGRAM_BINS: usize = LINEAR_BINS + (64 - FIRST_OCTAVE as usize) * SUBS;

/// Number of independently updated shards; recording threads spread
/// across them so concurrent records do not contend on one cache line.
const SHARDS: usize = 4;

fn bin_of(value: u64) -> usize {
    if value < LINEAR_BINS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros();
    let sub = ((value >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    LINEAR_BINS + (octave - FIRST_OCTAVE) as usize * SUBS + sub
}

fn lower_bound(bin: usize) -> u64 {
    if bin < LINEAR_BINS {
        return bin as u64;
    }
    let rel = bin - LINEAR_BINS;
    let octave = FIRST_OCTAVE + (rel / SUBS) as u32;
    let sub = (rel % SUBS) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// The per-thread shard index: assigned round-robin on first use, so a
/// worker pool's threads land on distinct shards.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|cell| {
        let mut shard = cell.get();
        if shard == usize::MAX {
            shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(shard);
        }
        shard
    })
}

#[derive(Debug)]
struct HistogramShard {
    bins: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramShard {
    fn new() -> Self {
        HistogramShard {
            bins: (0..HISTOGRAM_BINS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram: exact bins for values below 128, four
/// sub-buckets per power of two above, sharded across threads.
///
/// Quantiles are answered from the merged bins as the lower bound of the
/// bucket holding the requested rank — exact in the linear region, at
/// most one sub-bucket (≤ 12.5%) low in the logarithmic region.
#[derive(Debug, Clone)]
pub struct Histogram {
    shards: Arc<Vec<HistogramShard>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { shards: Arc::new((0..SHARDS).map(|_| HistogramShard::new()).collect()) }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.bins[bin_of(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Merges every shard into one immutable summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snapshot = HistogramSnapshot::default();
        let mut bins = vec![0u64; HISTOGRAM_BINS];
        for shard in self.shards.iter() {
            snapshot.count += shard.count.load(Ordering::Relaxed);
            snapshot.sum += shard.sum.load(Ordering::Relaxed);
            snapshot.min = snapshot.min.min(shard.min.load(Ordering::Relaxed));
            snapshot.max = snapshot.max.max(shard.max.load(Ordering::Relaxed));
            for (bin, counter) in bins.iter_mut().zip(&shard.bins) {
                *bin += counter.load(Ordering::Relaxed);
            }
        }
        if snapshot.count == 0 {
            snapshot.min = 0;
        }
        snapshot.buckets = bins
            .iter()
            .enumerate()
            .filter(|(_, count)| **count > 0)
            .map(|(bin, count)| (lower_bound(bin), *count))
            .collect();
        snapshot
    }
}

/// An immutable merged view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: Vec::new() }
    }
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket holding rank `ceil(q * count)`. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bound, count) in &self.buckets {
            cumulative += count;
            if cumulative >= rank {
                return (*bound).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// The median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        let mut merged: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for (bound, count) in &other.buckets {
            *merged.entry(*bound).or_insert(0) += count;
        }
        self.buckets = merged.into_iter().collect();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

type MetricId = (String, Vec<(String, String)>);

/// A registry of named instruments, optionally labeled.
///
/// Clones are shallow: every clone shares the same instruments, which is
/// what lets a service, its workers and the CLI all record into one
/// registry. Instrument lookup takes a mutex — resolve instruments once
/// outside hot loops and record through the returned handle.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<MetricId, Instrument>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        create: impl FnOnce() -> Instrument,
        kind: &'static str,
    ) -> Instrument {
        let id: MetricId = (
            name.to_owned(),
            labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
        );
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let instrument = map.entry(id).or_insert_with(create);
        assert_eq!(
            instrument.kind(),
            kind,
            "metric `{name}` is already registered as a {}",
            instrument.kind()
        );
        instrument.clone()
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter named `name` with `labels` (created on first use).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, labels, || Instrument::Counter(Counter::new()), "counter") {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge named `name` with `labels` (created on first use).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, labels, || Instrument::Gauge(Gauge::new()), "gauge") {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// The histogram named `name` with `labels` (created on first use).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.instrument(name, labels, || Instrument::Histogram(Histogram::new()), "histogram")
        {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// A point-in-time view of every registered instrument, sorted by
    /// name then labels.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|((name, labels), instrument)| MetricEntry {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match instrument {
                        Instrument::Counter(c) => MetricValue::Counter(c.get()),
                        Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }

    /// Renders the current state as Prometheus text exposition.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// One instrument in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// The registered name (dotted schema, e.g. `service.queue_wait_us`).
    pub name: String,
    /// The label set, sorted as registered.
    pub labels: Vec<(String, String)>,
    /// The instrument's value at snapshot time.
    pub value: MetricValue,
}

/// The value of one snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's merged summary.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The entries, sorted by name then labels.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Looks one instrument up by exact name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| {
                e.name == name
                    && e.labels.len() == labels.len()
                    && e.labels.iter().zip(labels).all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .map(|e| &e.value)
    }

    /// Renders the snapshot as Prometheus text exposition: counters and
    /// gauges as single samples, histograms as summaries with
    /// `quantile="0.5|0.9|0.99"` samples plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for entry in &self.entries {
            let name = sanitize_name(&entry.name);
            if last_name != Some(entry.name.as_str()) {
                let kind = match entry.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_name = Some(entry.name.as_str());
            }
            match &entry.value {
                MetricValue::Counter(value) => {
                    out.push_str(&format!("{name}{} {value}\n", label_set(&entry.labels, None)));
                }
                MetricValue::Gauge(value) => {
                    out.push_str(&format!("{name}{} {value}\n", label_set(&entry.labels, None)));
                }
                MetricValue::Histogram(h) => {
                    for (quantile, value) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())]
                    {
                        out.push_str(&format!(
                            "{name}{} {value}\n",
                            label_set(&entry.labels, Some(quantile))
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        label_set(&entry.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        label_set(&entry.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; the dotted schema maps
/// onto it by replacing everything else with `_`.
fn sanitize_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' }).collect()
}

fn label_set(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!("{}=\"{}\"", sanitize_name(k), v.replace('\\', "\\\\").replace('"', "\\\""))
        })
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test.count");
        counter.inc();
        registry.counter("test.count").add(4);
        assert_eq!(counter.get(), 5);

        let gauge = registry.gauge("test.depth");
        gauge.set(3);
        gauge.add(2);
        gauge.sub(1);
        assert_eq!(registry.gauge("test.depth").get(), 4);
    }

    #[test]
    fn labeled_instruments_are_distinct() {
        let registry = MetricsRegistry::new();
        registry.counter_with("req", &[("tenant", "a")]).inc();
        registry.counter_with("req", &[("tenant", "b")]).add(2);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.get("req", &[("tenant", "a")]), Some(&MetricValue::Counter(1)));
        assert_eq!(snapshot.get("req", &[("tenant", "b")]), Some(&MetricValue::Counter(2)));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn linear_region_bins_exactly() {
        for value in 0..LINEAR_BINS as u64 {
            let bin = bin_of(value);
            assert_eq!(lower_bound(bin), value);
        }
    }

    #[test]
    fn bucket_boundaries_are_monotone_and_tight() {
        // Every value maps into a bin whose lower bound does not exceed
        // it, and the next bin's lower bound does.
        for value in [
            0,
            1,
            127,
            128,
            129,
            159,
            160,
            255,
            256,
            1023,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let bin = bin_of(value);
            assert!(lower_bound(bin) <= value, "lower bound of {value}'s bin exceeds it");
            if bin + 1 < HISTOGRAM_BINS {
                assert!(lower_bound(bin + 1) > value, "{value} fits the next bin too");
            }
            assert!(bin < HISTOGRAM_BINS);
        }
        for bin in 1..HISTOGRAM_BINS {
            assert!(lower_bound(bin) > lower_bound(bin - 1), "bounds are strictly increasing");
        }
    }

    #[test]
    fn exact_percentiles_on_a_known_distribution() {
        // 1..=100 recorded once each lies entirely in the exact linear
        // region, so the quantiles are exact.
        let histogram = Histogram::new();
        for value in 1..=100 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        assert_eq!(snapshot.min, 1);
        assert_eq!(snapshot.max, 100);
        assert_eq!(snapshot.p50(), 50);
        assert_eq!(snapshot.p90(), 90);
        assert_eq!(snapshot.p99(), 99);
        assert_eq!(snapshot.quantile(1.0), 100);
        assert_eq!(snapshot.quantile(0.0), 1);
    }

    #[test]
    fn log_region_quantiles_stay_within_one_sub_bucket() {
        let histogram = Histogram::new();
        for _ in 0..100 {
            histogram.record(1000);
        }
        let p50 = histogram.snapshot().p50();
        // 1000 lands in the bucket [960, 1024); the reported quantile is
        // the bucket's lower bound, at most 12.5% low.
        assert!(p50 <= 1000 && p50 as f64 >= 1000.0 * 0.875, "p50 {p50}");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snapshot = Histogram::new().snapshot();
        assert_eq!(snapshot.count, 0);
        assert_eq!(snapshot.min, 0);
        assert_eq!(snapshot.p50(), 0);
        assert_eq!(snapshot.mean(), 0.0);
        assert!(snapshot.buckets.is_empty());
    }

    #[test]
    fn sharded_bins_merge_across_threads() {
        let histogram = Histogram::new();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let histogram = histogram.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        histogram.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 8000);
        assert_eq!(snapshot.min, 0);
        assert_eq!(snapshot.max, 7999);
        assert_eq!(snapshot.sum, (0..8000u64).sum::<u64>());
        assert_eq!(snapshot.buckets.iter().map(|(_, c)| c).sum::<u64>(), 8000);
    }

    #[test]
    fn snapshot_merge_matches_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for value in [1u64, 5, 5, 200, 4096, 70000] {
            a.record(value);
            all.record(value);
        }
        for value in [2u64, 5, 300, 4096] {
            b.record(value);
            all.record(value);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("service.evals_completed").add(7);
        registry.gauge("service.queue_depth").set(-2);
        let histogram = registry.histogram_with("service.queue_wait_us", &[("tenant", "a")]);
        for value in 1..=100 {
            histogram.record(value);
        }
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE service_evals_completed counter"));
        assert!(text.contains("service_evals_completed 7"));
        assert!(text.contains("# TYPE service_queue_depth gauge"));
        assert!(text.contains("service_queue_depth -2"));
        assert!(text.contains("# TYPE service_queue_wait_us summary"));
        assert!(text.contains("service_queue_wait_us{tenant=\"a\",quantile=\"0.5\"} 50"));
        assert!(text.contains("service_queue_wait_us{tenant=\"a\",quantile=\"0.99\"} 99"));
        assert!(text.contains("service_queue_wait_us_count{tenant=\"a\"} 100"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable sample `{line}`");
        }
    }
}
