//! # cimflow-obs
//!
//! Dependency-free observability primitives for the CIMFlow workspace:
//!
//! * a [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s (p50/p90/p99 summaries), cheap enough
//!   for hot paths — instruments are plain atomics, histogram bins are
//!   sharded per thread, and recording never takes the registry lock;
//! * a span-based [`Tracer`] that records `{name, start, duration,
//!   attrs}` events into a bounded ring buffer and exports Chrome
//!   `trace_event` JSON, loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//!
//! The crate is intentionally free of dependencies (including the
//! workspace's vendored serde): the exposition formats it emits —
//! Prometheus text and Chrome trace JSON — are built directly, so the
//! simulator, compiler and service layers can all afford to link it.
//!
//! # Example
//!
//! ```
//! use cimflow_obs::{MetricsRegistry, Tracer};
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("service.evals_completed").inc();
//! registry.histogram_with("service.queue_wait_us", &[("tenant", "docs")]).record(120);
//! let exposition = registry.render_prometheus();
//! assert!(exposition.contains("service_evals_completed 1"));
//!
//! let tracer = Tracer::new(1024);
//! {
//!     let mut span = tracer.span("eval", "service", 1);
//!     span.attr("label", "resnet18@32");
//! } // recorded on drop
//! assert!(tracer.to_chrome_json().contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BINS,
};
pub use trace::{
    new_track, thread_track, AttrValue, Span, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY,
};
