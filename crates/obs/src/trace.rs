//! The tracing side of the crate: a bounded ring buffer of completed
//! spans with Chrome `trace_event` JSON export.
//!
//! Spans come in two time bases. Wall-clock spans ([`Tracer::span`])
//! stamp microseconds since the tracer's creation and are what service,
//! executor and CLI code use. Explicit-timestamp events
//! ([`Tracer::complete`]) let the simulator record cycle-accurate
//! timelines where "time" is simulated cycles, not wall time — the two
//! should go into separate trace files to keep a file's time base
//! uniform.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring-buffer capacity when callers do not pick one.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One attribute value on a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// An unsigned integer attribute.
    U64(u64),
    /// A signed integer attribute.
    I64(i64),
    /// A float attribute (non-finite values export as 0).
    F64(f64),
    /// A boolean attribute.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One completed span in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (e.g. `eval`, `sim.chip_busy`).
    pub name: String,
    /// Category, exported as the Chrome `cat` field (e.g. `service`,
    /// `sim`).
    pub category: String,
    /// Track the event renders on — a thread id for wall-clock spans, a
    /// chip/core/port id for simulator timelines.
    pub track: u64,
    /// Start timestamp: microseconds since the tracer epoch for
    /// wall-clock spans, cycles for simulator events.
    pub start: u64,
    /// Duration in the same unit as `start`.
    pub duration: u64,
    /// Attributes, exported as the Chrome `args` object.
    pub attrs: Vec<(String, AttrValue)>,
}

#[derive(Debug, Default)]
struct TraceState {
    events: VecDeque<TraceEvent>,
    dropped: u64,
    tracks: BTreeMap<u64, String>,
}

#[derive(Debug)]
struct TracerInner {
    state: Mutex<TraceState>,
    capacity: usize,
    epoch: Instant,
}

/// A bounded recorder of completed spans.
///
/// Clones are shallow; all clones share the ring buffer. When the
/// buffer is full the oldest events are evicted and counted in
/// [`Tracer::dropped`] — a trace is a window onto the run's tail, not
/// an unbounded log.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                state: Mutex::new(TraceState::default()),
                capacity: capacity.max(1),
                epoch: Instant::now(),
            }),
        }
    }

    /// Microseconds elapsed since this tracer was created — the time
    /// base of wall-clock spans.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Opens a wall-clock span on `track`; the span records itself into
    /// the buffer when dropped.
    pub fn span(&self, name: &str, category: &str, track: u64) -> Span {
        Span {
            tracer: self.clone(),
            name: name.to_owned(),
            category: category.to_owned(),
            track,
            start: self.now_us(),
            attrs: Vec::new(),
        }
    }

    /// Opens a wall-clock span on this thread's [`thread_track`].
    pub fn thread_span(&self, name: &str, category: &str) -> Span {
        self.span(name, category, thread_track())
    }

    /// Records an already-measured event with explicit timestamps (the
    /// simulator's cycle-domain path).
    pub fn complete(
        &self,
        name: &str,
        category: &str,
        track: u64,
        start: u64,
        duration: u64,
        attrs: Vec<(String, AttrValue)>,
    ) {
        self.push(TraceEvent {
            name: name.to_owned(),
            category: category.to_owned(),
            track,
            start,
            duration,
            attrs,
        });
    }

    fn push(&self, event: TraceEvent) {
        let mut state = self.inner.state.lock().expect("tracer poisoned");
        if state.events.len() >= self.inner.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(event);
    }

    /// Names a track in the exported trace (Chrome `thread_name`
    /// metadata), e.g. `chip0` or `worker-2`.
    pub fn set_track_name(&self, track: u64, name: &str) {
        let mut state = self.inner.state.lock().expect("tracer poisoned");
        state.tracks.insert(track, name.to_owned());
    }

    /// Events evicted so far because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().expect("tracer poisoned").dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("tracer poisoned").events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.state.lock().expect("tracer poisoned").events.iter().cloned().collect()
    }

    /// Exports the buffer as Chrome `trace_event` JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in
    /// `chrome://tracing` or Perfetto. Spans become `"ph":"X"` complete
    /// events; named tracks add `"ph":"M"` `thread_name` metadata.
    pub fn to_chrome_json(&self) -> String {
        let state = self.inner.state.lock().expect("tracer poisoned");
        let mut out = String::with_capacity(64 + state.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (track, name) in &state.tracks {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{track},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                json_string(name)
            ));
        }
        for event in &state.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\"cat\":{},\"ts\":{},\"dur\":{}",
                event.track,
                json_string(&event.name),
                json_string(&event.category),
                event.start,
                event.duration
            ));
            if !event.attrs.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in event.attrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(key));
                    out.push(':');
                    out.push_str(&json_value(value));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"droppedEvents\":{}}}",
            state.dropped
        ));
        out
    }
}

static NEXT_TRACK: AtomicU64 = AtomicU64::new(0);

/// A stable, small per-thread track id (0, 1, 2, … in first-use order),
/// used as the Chrome `tid` so each OS thread gets its own row.
pub fn thread_track() -> u64 {
    thread_local! {
        static TRACK: std::cell::Cell<u64> = const { std::cell::Cell::new(u64::MAX) };
    }
    TRACK.with(|cell| {
        let mut track = cell.get();
        if track == u64::MAX {
            track = NEXT_TRACK.fetch_add(1, Ordering::Relaxed);
            cell.set(track);
        }
        track
    })
}

/// Allocates a fresh track id from the same sequence as
/// [`thread_track`], for timelines that are not OS threads (per-chip
/// simulator timelines, the inter-chip fabric). The id never collides
/// with any thread's track; name it with
/// [`Tracer::set_track_name`].
pub fn new_track() -> u64 {
    NEXT_TRACK.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static AMBIENT: std::cell::RefCell<Option<Tracer>> = const { std::cell::RefCell::new(None) };
}

impl Tracer {
    /// Installs `tracer` as this thread's ambient tracer (or clears it
    /// with `None`). Layers that cannot thread a tracer through their
    /// options — the compiler's search, called from service worker
    /// threads — pick it up via [`Tracer::ambient`].
    pub fn set_ambient(tracer: Option<Tracer>) {
        AMBIENT.with(|cell| *cell.borrow_mut() = tracer);
    }

    /// This thread's ambient tracer, if one is installed.
    pub fn ambient() -> Option<Tracer> {
        AMBIENT.with(|cell| cell.borrow().clone())
    }
}

/// An open wall-clock span; records itself into the tracer on drop.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    name: String,
    category: String,
    track: u64,
    start: u64,
    attrs: Vec<(String, AttrValue)>,
}

impl Span {
    /// Attaches an attribute to the span.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) -> &mut Self {
        self.attrs.push((key.to_owned(), value.into()));
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = self.tracer.now_us();
        self.tracer.push(TraceEvent {
            name: std::mem::take(&mut self.name),
            category: std::mem::take(&mut self.category),
            track: self.track,
            start: self.start,
            duration: end.saturating_sub(self.start),
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(value: &AttrValue) -> String {
    match value {
        AttrValue::Str(s) => json_string(s),
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) if v.is_finite() => v.to_string(),
        AttrValue::F64(_) => "0".to_owned(),
        AttrValue::Bool(v) => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_in_order() {
        let tracer = Tracer::new(16);
        {
            let mut outer = tracer.span("outer", "test", 1);
            outer.attr("n", 3u64);
            let _inner = tracer.span("inner", "test", 1);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        // Inner drops first, so it lands first in the buffer.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].attrs, vec![("n".to_owned(), AttrValue::U64(3))]);
        // Nesting: outer starts no later and ends no earlier than inner.
        assert!(events[1].start <= events[0].start);
        assert!(events[1].start + events[1].duration >= events[0].start + events[0].duration);
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts_drops() {
        let tracer = Tracer::new(4);
        for i in 0..10u64 {
            tracer.complete("e", "test", 0, i, 1, Vec::new());
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        assert_eq!(tracer.events()[0].start, 6);
    }

    #[test]
    fn chrome_json_has_events_and_metadata() {
        let tracer = Tracer::new(16);
        tracer.set_track_name(0, "chip0");
        tracer.complete(
            "sim.chip_busy",
            "sim",
            0,
            100,
            250,
            vec![("chip".to_owned(), AttrValue::U64(0))],
        );
        let json = tracer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"chip0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"args\":{\"chip\":0}"));
    }

    #[test]
    fn json_escaping_handles_specials_and_nonfinite() {
        let tracer = Tracer::new(4);
        tracer.complete(
            "quote\"back\\slash\nline",
            "test",
            0,
            0,
            1,
            vec![("bad".to_owned(), AttrValue::F64(f64::NAN))],
        );
        let json = tracer.to_chrome_json();
        assert!(json.contains("quote\\\"back\\\\slash\\nline"));
        assert!(json.contains("\"bad\":0"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn ambient_tracer_is_per_thread() {
        let tracer = Tracer::new(4);
        Tracer::set_ambient(Some(tracer.clone()));
        assert!(Tracer::ambient().is_some());
        std::thread::spawn(|| assert!(Tracer::ambient().is_none())).join().unwrap();
        Tracer::set_ambient(None);
        assert!(Tracer::ambient().is_none());
    }

    #[test]
    fn thread_tracks_are_stable_and_distinct() {
        let a = thread_track();
        assert_eq!(a, thread_track());
        let b = std::thread::spawn(thread_track).join().unwrap();
        assert_ne!(a, b);
    }
}
