//! Instruction-description template for ISA extensibility.
//!
//! The paper emphasizes that the instruction set is "designed for
//! extensibility through incorporating a customized instruction description
//! template, which enables seamless integration of new operations into the
//! framework when provided with their associated performance parameters."
//!
//! This module implements that template: an [`InstructionDescriptor`]
//! bundles a mnemonic, the execution unit it occupies, its latency /
//! initiation interval and its energy cost, and an [`IsaExtension`]
//! registry collects descriptors so that both the compiler (for cost
//! estimation) and the simulator (for timing and energy accounting) can
//! consume them without code changes.

use std::collections::BTreeMap;
use std::fmt;

use crate::format::InstructionFormat;
use crate::IsaError;

/// The execution unit a (custom) instruction occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecutionUnit {
    /// The in-memory CIM compute unit (macro groups).
    Cim,
    /// The element-wise vector unit.
    Vector,
    /// The scalar ALU.
    Scalar,
    /// The memory / NoC transfer unit.
    Transfer,
}

impl fmt::Display for ExecutionUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecutionUnit::Cim => "cim",
            ExecutionUnit::Vector => "vector",
            ExecutionUnit::Scalar => "scalar",
            ExecutionUnit::Transfer => "transfer",
        };
        f.write_str(s)
    }
}

/// Performance description of one (custom) operation.
///
/// # Example
///
/// ```
/// use cimflow_isa::{ExecutionUnit, InstructionDescriptor, InstructionFormat};
///
/// let softmax = InstructionDescriptor::new("vec_softmax", ExecutionUnit::Vector, InstructionFormat::Vector)
///     .with_latency(24)
///     .with_initiation_interval(8)
///     .with_energy_pj(14.5);
/// assert_eq!(softmax.latency_cycles(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstructionDescriptor {
    mnemonic: String,
    unit: ExecutionUnit,
    format: InstructionFormat,
    latency_cycles: u32,
    initiation_interval: u32,
    energy_pj: f64,
    throughput_elems_per_cycle: u32,
}

impl InstructionDescriptor {
    /// Creates a descriptor with default single-cycle timing and zero energy.
    pub fn new(
        mnemonic: impl Into<String>,
        unit: ExecutionUnit,
        format: InstructionFormat,
    ) -> Self {
        InstructionDescriptor {
            mnemonic: mnemonic.into(),
            unit,
            format,
            latency_cycles: 1,
            initiation_interval: 1,
            energy_pj: 0.0,
            throughput_elems_per_cycle: 1,
        }
    }

    /// Sets the end-to-end latency in cycles.
    pub fn with_latency(mut self, cycles: u32) -> Self {
        self.latency_cycles = cycles.max(1);
        self
    }

    /// Sets the pipelined initiation interval in cycles.
    pub fn with_initiation_interval(mut self, cycles: u32) -> Self {
        self.initiation_interval = cycles.max(1);
        self
    }

    /// Sets the per-invocation energy in picojoules.
    pub fn with_energy_pj(mut self, energy_pj: f64) -> Self {
        self.energy_pj = energy_pj.max(0.0);
        self
    }

    /// Sets the number of elements processed per cycle (vector-style ops).
    pub fn with_throughput(mut self, elems_per_cycle: u32) -> Self {
        self.throughput_elems_per_cycle = elems_per_cycle.max(1);
        self
    }

    /// The assembler mnemonic of the operation.
    pub fn mnemonic(&self) -> &str {
        &self.mnemonic
    }

    /// The execution unit occupied by the operation.
    pub fn unit(&self) -> ExecutionUnit {
        self.unit
    }

    /// The encoding format family used by the operation.
    pub fn format(&self) -> InstructionFormat {
        self.format
    }

    /// End-to-end latency in cycles.
    pub fn latency_cycles(&self) -> u32 {
        self.latency_cycles
    }

    /// Pipelined initiation interval in cycles.
    pub fn initiation_interval(&self) -> u32 {
        self.initiation_interval
    }

    /// Per-invocation energy in picojoules.
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Elements processed per cycle.
    pub fn throughput_elems_per_cycle(&self) -> u32 {
        self.throughput_elems_per_cycle
    }

    /// Number of cycles needed to process `elems` elements, including the
    /// pipeline fill latency.
    pub fn cycles_for(&self, elems: u64) -> u64 {
        if elems == 0 {
            return 0;
        }
        let issue = elems.div_ceil(u64::from(self.throughput_elems_per_cycle));
        issue
            .saturating_mul(u64::from(self.initiation_interval))
            .saturating_add(u64::from(self.latency_cycles.saturating_sub(1)))
    }
}

/// A registry of custom instruction descriptors.
///
/// Both the compiler and the simulator accept an `IsaExtension` so that new
/// operations participate in cost estimation and timing/energy accounting
/// without modifications to either component.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IsaExtension {
    descriptors: BTreeMap<String, InstructionDescriptor>,
}

impl IsaExtension {
    /// Creates an empty extension registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::DuplicateExtension`] if the mnemonic is already
    /// registered.
    pub fn register(&mut self, descriptor: InstructionDescriptor) -> Result<(), IsaError> {
        let key = descriptor.mnemonic().to_owned();
        if self.descriptors.contains_key(&key) {
            return Err(IsaError::DuplicateExtension { mnemonic: key });
        }
        self.descriptors.insert(key, descriptor);
        Ok(())
    }

    /// Looks a descriptor up by mnemonic.
    pub fn get(&self, mnemonic: &str) -> Option<&InstructionDescriptor> {
        self.descriptors.get(mnemonic)
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.descriptors.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Iterates over descriptors in mnemonic order.
    pub fn iter(&self) -> impl Iterator<Item = &InstructionDescriptor> {
        self.descriptors.values()
    }
}

impl Extend<InstructionDescriptor> for IsaExtension {
    fn extend<T: IntoIterator<Item = InstructionDescriptor>>(&mut self, iter: T) {
        for d in iter {
            let _ = self.register(d);
        }
    }
}

impl FromIterator<InstructionDescriptor> for IsaExtension {
    fn from_iter<T: IntoIterator<Item = InstructionDescriptor>>(iter: T) -> Self {
        let mut ext = IsaExtension::new();
        ext.extend(iter);
        ext
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn softmax() -> InstructionDescriptor {
        InstructionDescriptor::new("vec_softmax", ExecutionUnit::Vector, InstructionFormat::Vector)
            .with_latency(24)
            .with_initiation_interval(2)
            .with_energy_pj(14.5)
            .with_throughput(16)
    }

    #[test]
    fn descriptor_accessors() {
        let d = softmax();
        assert_eq!(d.mnemonic(), "vec_softmax");
        assert_eq!(d.unit(), ExecutionUnit::Vector);
        assert_eq!(d.format(), InstructionFormat::Vector);
        assert_eq!(d.latency_cycles(), 24);
        assert_eq!(d.initiation_interval(), 2);
        assert!((d.energy_pj() - 14.5).abs() < 1e-9);
    }

    #[test]
    fn cycles_for_accounts_for_pipeline_fill() {
        let d = softmax();
        assert_eq!(d.cycles_for(0), 0);
        // 16 elems per cycle, II=2: 32 elems -> 2 issues -> 4 cycles + 23 fill.
        assert_eq!(d.cycles_for(32), 27);
        // One element still pays the full latency.
        assert_eq!(d.cycles_for(1), 25);
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let d =
            InstructionDescriptor::new("x", ExecutionUnit::Scalar, InstructionFormat::ScalarReg)
                .with_latency(0)
                .with_initiation_interval(0)
                .with_throughput(0)
                .with_energy_pj(-3.0);
        assert_eq!(d.latency_cycles(), 1);
        assert_eq!(d.initiation_interval(), 1);
        assert_eq!(d.throughput_elems_per_cycle(), 1);
        assert_eq!(d.energy_pj(), 0.0);
    }

    #[test]
    fn registry_rejects_duplicates() {
        let mut ext = IsaExtension::new();
        ext.register(softmax()).unwrap();
        assert_eq!(
            ext.register(softmax()),
            Err(IsaError::DuplicateExtension { mnemonic: "vec_softmax".into() })
        );
        assert_eq!(ext.len(), 1);
        assert!(ext.get("vec_softmax").is_some());
        assert!(ext.get("vec_gelu").is_none());
    }

    #[test]
    fn registry_collects_from_iterator() {
        let gelu = InstructionDescriptor::new(
            "vec_gelu",
            ExecutionUnit::Vector,
            InstructionFormat::Vector,
        );
        let ext: IsaExtension = vec![softmax(), gelu].into_iter().collect();
        assert_eq!(ext.len(), 2);
        assert_eq!(ext.iter().count(), 2);
        assert!(!ext.is_empty());
    }
}
