use std::fmt;

use crate::format::InstructionFormat;
use crate::IsaError;

/// The five operation classes of the CIMFlow ISA.
///
/// Instructions are categorized into compute, communication and control
/// flow; compute instructions are further specialized for the CIM, vector
/// and scalar compute units (paper Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpcodeClass {
    /// In-memory compute on the CIM macro groups.
    Cim,
    /// Element-wise compute on the vector unit.
    Vector,
    /// Scalar arithmetic and logic for address/loop computation.
    Scalar,
    /// Memory movement and inter-core communication.
    Communication,
    /// Control flow: jumps, branches, barriers, halt.
    Control,
}

impl fmt::Display for OpcodeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl OpcodeClass {
    /// All operation classes in report order.
    pub const ALL: [OpcodeClass; 5] = [
        OpcodeClass::Cim,
        OpcodeClass::Vector,
        OpcodeClass::Scalar,
        OpcodeClass::Communication,
        OpcodeClass::Control,
    ];

    /// The stable lowercase name used in reports and serialized artifacts.
    pub fn name(self) -> &'static str {
        match self {
            OpcodeClass::Cim => "cim",
            OpcodeClass::Vector => "vector",
            OpcodeClass::Scalar => "scalar",
            OpcodeClass::Communication => "communication",
            OpcodeClass::Control => "control",
        }
    }

    /// Parses a class back from its [`Self::name`] (used when
    /// deserializing cached compilation reports).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|class| class.name() == name)
    }
}

/// The 6-bit primary operation specifier of every CIMFlow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Opcode {
    // --- CIM compute -----------------------------------------------------
    /// In-situ matrix-vector multiplication on a macro group.
    CimMvm,
    /// Load a weight tile from local memory into a macro group.
    CimLoad,
    /// Read back the accumulator of a macro group into local memory.
    CimStoreAcc,
    // --- Vector compute ---------------------------------------------------
    /// Element-wise binary/unary vector operation (funct selects the kind).
    VecOp,
    /// Pooling over a window (funct selects max/average).
    VecPool,
    /// Requantize an INT32 accumulator vector back to INT8.
    VecQuant,
    /// Multiply-accumulate a vector into an accumulator buffer.
    VecMac,
    // --- Scalar compute ---------------------------------------------------
    /// Register-register scalar ALU operation (funct selects the kind).
    ScAlu,
    /// Register-immediate scalar ALU operation (funct selects the kind).
    ScAlui,
    /// Load a 16-bit immediate into a general register (clears upper bits).
    ScLi,
    /// Load a 16-bit immediate into the upper half of a general register.
    ScLui,
    /// Read a special register into a general register.
    ScRdSpecial,
    /// Write a general register into a special register.
    ScWrSpecial,
    // --- Communication ----------------------------------------------------
    /// Copy a block within the unified (local + global) address space.
    MemCpy,
    /// Send a block from local memory to another core over the NoC.
    Send,
    /// Receive a block from another core into local memory.
    Recv,
    // --- Control ----------------------------------------------------------
    /// Unconditional relative jump.
    Jmp,
    /// Branch if the two registers are equal.
    Beq,
    /// Branch if the two registers differ.
    Bne,
    /// Chip-wide synchronization barrier.
    Barrier,
    /// Stop execution of the issuing core.
    Halt,
    /// No operation.
    Nop,
    /// A custom instruction registered through the extension template.
    Custom,
}

impl Opcode {
    /// All architectural opcodes in encoding order.
    pub const ALL: [Opcode; 22] = [
        Opcode::CimMvm,
        Opcode::CimLoad,
        Opcode::CimStoreAcc,
        Opcode::VecOp,
        Opcode::VecPool,
        Opcode::VecQuant,
        Opcode::VecMac,
        Opcode::ScAlu,
        Opcode::ScAlui,
        Opcode::ScLi,
        Opcode::ScLui,
        Opcode::ScRdSpecial,
        Opcode::ScWrSpecial,
        Opcode::MemCpy,
        Opcode::Send,
        Opcode::Recv,
        Opcode::Jmp,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Barrier,
        Opcode::Halt,
        Opcode::Nop,
    ];

    /// Returns the 6-bit binary encoding of the opcode.
    pub fn code(self) -> u8 {
        match self {
            Opcode::CimMvm => 0x01,
            Opcode::CimLoad => 0x02,
            Opcode::CimStoreAcc => 0x03,
            Opcode::VecOp => 0x08,
            Opcode::VecPool => 0x09,
            Opcode::VecQuant => 0x0A,
            Opcode::VecMac => 0x0B,
            Opcode::ScAlu => 0x10,
            Opcode::ScAlui => 0x11,
            Opcode::ScLi => 0x12,
            Opcode::ScLui => 0x15,
            Opcode::ScRdSpecial => 0x13,
            Opcode::ScWrSpecial => 0x14,
            Opcode::MemCpy => 0x18,
            Opcode::Send => 0x19,
            Opcode::Recv => 0x1A,
            Opcode::Jmp => 0x20,
            Opcode::Beq => 0x21,
            Opcode::Bne => 0x22,
            Opcode::Barrier => 0x23,
            Opcode::Halt => 0x24,
            Opcode::Nop => 0x00,
            Opcode::Custom => 0x3F,
        }
    }

    /// Decodes the 6-bit opcode field back into an [`Opcode`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownOpcode`] if the value does not correspond
    /// to an architectural or custom opcode.
    pub fn from_code(code: u8) -> Result<Self, IsaError> {
        for op in Self::ALL {
            if op.code() == code {
                return Ok(op);
            }
        }
        if code == Opcode::Custom.code() {
            return Ok(Opcode::Custom);
        }
        Err(IsaError::UnknownOpcode { opcode: code })
    }

    /// Returns the operation class executed by this opcode.
    pub fn class(self) -> OpcodeClass {
        match self {
            Opcode::CimMvm | Opcode::CimLoad | Opcode::CimStoreAcc => OpcodeClass::Cim,
            Opcode::VecOp | Opcode::VecPool | Opcode::VecQuant | Opcode::VecMac => {
                OpcodeClass::Vector
            }
            Opcode::ScAlu
            | Opcode::ScAlui
            | Opcode::ScLi
            | Opcode::ScLui
            | Opcode::ScRdSpecial
            | Opcode::ScWrSpecial => OpcodeClass::Scalar,
            Opcode::MemCpy | Opcode::Send | Opcode::Recv => OpcodeClass::Communication,
            Opcode::Jmp
            | Opcode::Beq
            | Opcode::Bne
            | Opcode::Barrier
            | Opcode::Halt
            | Opcode::Nop => OpcodeClass::Control,
            Opcode::Custom => OpcodeClass::Vector,
        }
    }

    /// Returns the instruction format used to encode this opcode.
    pub fn format(self) -> InstructionFormat {
        match self {
            Opcode::CimMvm | Opcode::CimLoad | Opcode::CimStoreAcc => InstructionFormat::Cim,
            Opcode::VecOp | Opcode::VecPool | Opcode::VecQuant | Opcode::VecMac => {
                InstructionFormat::Vector
            }
            Opcode::ScAlu => InstructionFormat::ScalarReg,
            Opcode::ScAlui => InstructionFormat::ScalarImm,
            Opcode::ScLi | Opcode::ScLui => InstructionFormat::Control,
            Opcode::ScRdSpecial | Opcode::ScWrSpecial => InstructionFormat::ScalarImm,
            Opcode::MemCpy | Opcode::Send | Opcode::Recv => InstructionFormat::Communication,
            Opcode::Jmp
            | Opcode::Beq
            | Opcode::Bne
            | Opcode::Barrier
            | Opcode::Halt
            | Opcode::Nop => InstructionFormat::Control,
            Opcode::Custom => InstructionFormat::Vector,
        }
    }

    /// Returns the canonical assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::CimMvm => "cim_mvm",
            Opcode::CimLoad => "cim_load",
            Opcode::CimStoreAcc => "cim_store",
            Opcode::VecOp => "vec_op",
            Opcode::VecPool => "vec_pool",
            Opcode::VecQuant => "vec_quant",
            Opcode::VecMac => "vec_mac",
            Opcode::ScAlu => "sc_alu",
            Opcode::ScAlui => "sc_alui",
            Opcode::ScLi => "sc_li",
            Opcode::ScLui => "sc_lui",
            Opcode::ScRdSpecial => "sc_rds",
            Opcode::ScWrSpecial => "sc_wrs",
            Opcode::MemCpy => "mem_cpy",
            Opcode::Send => "send",
            Opcode::Recv => "recv",
            Opcode::Jmp => "jmp",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Barrier => "barrier",
            Opcode::Halt => "halt",
            Opcode::Nop => "nop",
            Opcode::Custom => "custom",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn class_names_round_trip() {
        for class in OpcodeClass::ALL {
            assert_eq!(OpcodeClass::from_name(class.name()), Some(class));
            assert_eq!(class.to_string(), class.name());
        }
        assert_eq!(OpcodeClass::from_name("warp-drive"), None);
    }

    #[test]
    fn opcode_codes_are_unique_and_fit_six_bits() {
        let mut seen = HashSet::new();
        for op in Opcode::ALL {
            assert!(op.code() < 64, "{op} does not fit 6 bits");
            assert!(seen.insert(op.code()), "duplicate code for {op}");
        }
    }

    #[test]
    fn opcode_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()).unwrap(), op);
        }
        assert_eq!(Opcode::from_code(0x3F).unwrap(), Opcode::Custom);
        assert!(Opcode::from_code(0x3E).is_err());
    }

    #[test]
    fn every_class_is_populated() {
        let classes: HashSet<_> = Opcode::ALL.iter().map(|o| o.class()).collect();
        assert_eq!(classes.len(), 5);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
    }

    #[test]
    fn cim_opcodes_use_cim_format() {
        assert_eq!(Opcode::CimMvm.format(), InstructionFormat::Cim);
        assert_eq!(Opcode::ScLi.format(), InstructionFormat::Control);
        assert_eq!(Opcode::ScAlui.format(), InstructionFormat::ScalarImm);
        assert_eq!(Opcode::Jmp.format(), InstructionFormat::Control);
    }
}
