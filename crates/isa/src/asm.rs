//! Textual assembler and disassembler for CIMFlow programs.
//!
//! The textual syntax is exactly the [`std::fmt::Display`] form of
//! [`Instruction`], one instruction per line, with optional `name:` label
//! lines and `#` / `//` comments. [`assemble`] and [`disassemble`] are
//! inverse operations, which the property tests verify for every
//! instruction variant.

use crate::inst::{Instruction, PoolKind, ScalarAluOp, VectorOpKind};
use crate::program::Program;
use crate::register::{GReg, SReg};
use crate::IsaError;

/// Renders a program into assembly text.
///
/// # Example
///
/// ```
/// use cimflow_isa::{asm, Instruction, Program};
/// let program = Program::from_instructions(vec![Instruction::Nop, Instruction::Halt]);
/// let text = asm::disassemble(&program);
/// assert!(text.contains("nop"));
/// ```
pub fn disassemble(program: &Program) -> String {
    program.to_string()
}

/// Parses assembly text produced by [`disassemble`] (or written by hand)
/// back into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::ParseInstruction`] with the offending line number if
/// a mnemonic or operand cannot be understood.
pub fn assemble(text: &str) -> Result<Program, IsaError> {
    let mut instructions = Vec::new();
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim();
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        let inst = parse_line(line, line_no + 1)?;
        instructions.push(inst);
    }
    Ok(Program::from_instructions(instructions))
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').or_else(|| line.find("//")).unwrap_or(line.len());
    &line[..cut]
}

struct LineParser<'a> {
    line: usize,
    operands: Vec<&'a str>,
    cursor: usize,
}

impl<'a> LineParser<'a> {
    fn new(line: usize, rest: &'a str) -> Self {
        let operands = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        LineParser { line, operands, cursor: 0 }
    }

    fn error(&self, reason: impl Into<String>) -> IsaError {
        IsaError::ParseInstruction { line: self.line, reason: reason.into() }
    }

    fn next(&mut self) -> Result<&'a str, IsaError> {
        let tok =
            self.operands.get(self.cursor).copied().ok_or_else(|| self.error("missing operand"))?;
        self.cursor += 1;
        Ok(tok)
    }

    fn greg(&mut self) -> Result<GReg, IsaError> {
        let tok = self.next()?;
        let index = tok
            .strip_prefix('g')
            .and_then(|s| s.parse::<u8>().ok())
            .ok_or_else(|| self.error(format!("expected general register, found `{tok}`")))?;
        GReg::new(index).map_err(|_| self.error(format!("register `{tok}` out of range")))
    }

    fn sreg(&mut self) -> Result<SReg, IsaError> {
        let tok = self.next()?;
        SReg::ALL
            .into_iter()
            .find(|s| s.to_string() == tok)
            .ok_or_else(|| self.error(format!("expected special register, found `{tok}`")))
    }

    fn int<T: TryFrom<i64>>(&mut self) -> Result<T, IsaError> {
        let tok = self.next()?;
        let value: i64 =
            tok.parse().map_err(|_| self.error(format!("expected integer, found `{tok}`")))?;
        T::try_from(value).map_err(|_| self.error(format!("integer `{tok}` out of range")))
    }

    fn keyed_int<T: TryFrom<i64>>(&mut self, key: &str) -> Result<T, IsaError> {
        let tok = self.next()?;
        let value = tok
            .strip_prefix(key)
            .and_then(|s| s.strip_prefix('='))
            .ok_or_else(|| self.error(format!("expected `{key}=<int>`, found `{tok}`")))?;
        let value: i64 = value
            .parse()
            .map_err(|_| self.error(format!("expected integer after `{key}=`, found `{tok}`")))?;
        T::try_from(value).map_err(|_| self.error(format!("value in `{tok}` out of range")))
    }

    fn done(&self) -> Result<(), IsaError> {
        if self.cursor == self.operands.len() {
            Ok(())
        } else {
            Err(self.error("trailing operands"))
        }
    }
}

fn parse_line(line: &str, line_no: usize) -> Result<Instruction, IsaError> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(pos) => (&line[..pos], &line[pos..]),
        None => (line, ""),
    };
    let mut p = LineParser::new(line_no, rest);
    let inst = match mnemonic {
        "cim_mvm" => Instruction::CimMvm {
            input: p.greg()?,
            rows: p.greg()?,
            output: p.greg()?,
            mg: p.keyed_int("mg")?,
        },
        "cim_load" => {
            Instruction::CimLoad { weights: p.greg()?, rows: p.greg()?, mg: p.keyed_int("mg")? }
        }
        "cim_store" => {
            Instruction::CimStoreAcc { output: p.greg()?, len: p.greg()?, mg: p.keyed_int("mg")? }
        }
        "vec_quant" => Instruction::VecQuant {
            src: p.greg()?,
            dst: p.greg()?,
            shift: p.greg()?,
            len: p.greg()?,
        },
        "vec_mac" => {
            Instruction::VecMac { src: p.greg()?, acc: p.greg()?, scale: p.greg()?, len: p.greg()? }
        }
        "vec_pool_max" | "vec_pool_avg" => Instruction::VecPool {
            kind: if mnemonic.ends_with("max") { PoolKind::Max } else { PoolKind::Average },
            src: p.greg()?,
            dst: p.greg()?,
            window: p.greg()?,
            len: p.greg()?,
        },
        "sc_li" => Instruction::ScLi { dst: p.greg()?, imm: p.int()? },
        "sc_lui" => Instruction::ScLui { dst: p.greg()?, imm: p.int()? },
        "sc_rds" => Instruction::ScRdSpecial { dst: p.greg()?, sreg: p.sreg()? },
        "sc_wrs" => Instruction::ScWrSpecial { sreg: p.sreg()?, src: p.greg()? },
        "mem_cpy" => {
            Instruction::MemCpy { src: p.greg()?, dst: p.greg()?, len: p.greg()?, offset: p.int()? }
        }
        "send" => Instruction::Send {
            addr: p.greg()?,
            len: p.greg()?,
            dst_core: p.greg()?,
            tag: p.keyed_int("tag")?,
        },
        "recv" => Instruction::Recv {
            addr: p.greg()?,
            len: p.greg()?,
            src_core: p.greg()?,
            tag: p.keyed_int("tag")?,
        },
        "jmp" => Instruction::Jmp { offset: p.int()? },
        "beq" => Instruction::Beq { a: p.greg()?, b: p.greg()?, offset: p.int()? },
        "bne" => Instruction::Bne { a: p.greg()?, b: p.greg()?, offset: p.int()? },
        "barrier" => Instruction::Barrier { id: p.int()? },
        "halt" => Instruction::Halt,
        "nop" => Instruction::Nop,
        other => {
            if let Some(kind_name) = other.strip_prefix("vec_") {
                let kind = VectorOpKind::ALL
                    .into_iter()
                    .find(|k| k.name() == kind_name)
                    .ok_or_else(|| p.error(format!("unknown vector operation `{other}`")))?;
                Instruction::VecOp {
                    kind,
                    a: p.greg()?,
                    b: p.greg()?,
                    dst: p.greg()?,
                    len: p.greg()?,
                }
            } else if let Some(alu_name) = other.strip_prefix("sc_") {
                if let Some(base) = alu_name.strip_suffix('i') {
                    let op = ScalarAluOp::ALL
                        .into_iter()
                        .find(|o| o.name() == base)
                        .ok_or_else(|| p.error(format!("unknown scalar operation `{other}`")))?;
                    Instruction::ScAlui { op, dst: p.greg()?, src: p.greg()?, imm: p.int()? }
                } else {
                    let op = ScalarAluOp::ALL
                        .into_iter()
                        .find(|o| o.name() == alu_name)
                        .ok_or_else(|| p.error(format!("unknown scalar operation `{other}`")))?;
                    Instruction::ScAlu { op, dst: p.greg()?, a: p.greg()?, b: p.greg()? }
                }
            } else {
                return Err(p.error(format!("unknown mnemonic `{other}`")));
            }
        }
    };
    p.done()?;
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> GReg {
        GReg::new(i).unwrap()
    }

    #[test]
    fn assemble_disassemble_round_trip() {
        let program = Program::from_instructions(vec![
            Instruction::ScLi { dst: g(7), imm: 1024 },
            Instruction::ScLui { dst: g(7), imm: 6 },
            Instruction::CimLoad { weights: g(7), rows: g(10), mg: 2 },
            Instruction::CimMvm { input: g(7), rows: g(10), output: g(9), mg: 2 },
            Instruction::CimStoreAcc { output: g(9), len: g(10), mg: 2 },
            Instruction::VecOp {
                kind: VectorOpKind::Relu,
                a: g(9),
                b: g(0),
                dst: g(9),
                len: g(10),
            },
            Instruction::VecPool {
                kind: PoolKind::Max,
                src: g(9),
                dst: g(8),
                window: g(3),
                len: g(10),
            },
            Instruction::VecQuant { src: g(9), dst: g(8), shift: g(4), len: g(10) },
            Instruction::VecMac { src: g(9), acc: g(8), scale: g(4), len: g(10) },
            Instruction::ScAlu { op: ScalarAluOp::Add, dst: g(1), a: g(2), b: g(3) },
            Instruction::ScAlui { op: ScalarAluOp::Mul, dst: g(1), src: g(2), imm: -5 },
            Instruction::ScRdSpecial { dst: g(1), sreg: SReg::CoreId },
            Instruction::ScWrSpecial { sreg: SReg::MacroGroupSelect, src: g(1) },
            Instruction::MemCpy { src: g(1), dst: g(2), len: g(3), offset: 64 },
            Instruction::Send { addr: g(1), len: g(2), dst_core: g(3), tag: 9 },
            Instruction::Recv { addr: g(1), len: g(2), src_core: g(3), tag: 9 },
            Instruction::Jmp { offset: -26 },
            Instruction::Beq { a: g(1), b: g(2), offset: 3 },
            Instruction::Bne { a: g(1), b: g(2), offset: -3 },
            Instruction::Barrier { id: 1 },
            Instruction::Halt,
            Instruction::Nop,
        ]);
        let text = disassemble(&program);
        let parsed = assemble(&text).unwrap();
        assert_eq!(parsed.instructions(), program.instructions());
    }

    #[test]
    fn comments_blank_lines_and_labels_are_ignored() {
        let text = "\n# header comment\nentry:\n  nop // trailing\n  halt\n";
        let p = assemble(text).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reports_line_number() {
        let err = assemble("nop\nfrobnicate g1, g2\n").unwrap_err();
        match err {
            IsaError::ParseInstruction { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn malformed_register_is_rejected() {
        assert!(assemble("sc_add g1, g99, g2").is_err());
        assert!(assemble("sc_add g1, x2, g2").is_err());
    }

    #[test]
    fn missing_operand_is_rejected() {
        assert!(assemble("cim_mvm g1, g2").is_err());
        assert!(assemble("sc_li g1").is_err());
    }

    #[test]
    fn trailing_operand_is_rejected() {
        assert!(assemble("nop g1").is_err());
        assert!(assemble("halt 3").is_err());
    }
}
