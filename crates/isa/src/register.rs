use std::fmt;

use crate::IsaError;

/// Number of architectural general-purpose registers per core.
pub const GENERAL_REGISTER_COUNT: u8 = 32;

/// A general-purpose register (`G_Reg` in the paper's register file).
///
/// General registers are used for instruction-level access: addresses,
/// loop counters, lengths and immediate staging. The 5-bit operand fields
/// of the instruction formats index this register file.
///
/// # Example
///
/// ```
/// use cimflow_isa::GReg;
/// let r = GReg::new(7)?;
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "g7");
/// # Ok::<(), cimflow_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GReg(u8);

impl GReg {
    /// The zero register: always reads as zero, writes are ignored.
    pub const ZERO: GReg = GReg(0);

    /// Creates a general register from its index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidRegister`] if `index` is not smaller than
    /// [`GENERAL_REGISTER_COUNT`].
    pub fn new(index: u8) -> Result<Self, IsaError> {
        if index < GENERAL_REGISTER_COUNT {
            Ok(GReg(index))
        } else {
            Err(IsaError::InvalidRegister { index, limit: GENERAL_REGISTER_COUNT })
        }
    }

    /// Returns the architectural index of the register.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for GReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl TryFrom<u8> for GReg {
    type Error = IsaError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        GReg::new(value)
    }
}

impl From<GReg> for u8 {
    fn from(value: GReg) -> Self {
        value.index()
    }
}

/// Special-purpose registers (`S_Reg` in the paper's register file).
///
/// Special registers carry operation-specific state that is not addressed
/// through the 5-bit operand fields: the identity of the core, the current
/// execution stage, the active macro-group selection, and the local-memory
/// segment base registers used to address layer inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum SReg {
    /// The physical identifier of the executing core (read-only).
    CoreId,
    /// The execution-stage counter maintained by barrier instructions.
    StageId,
    /// The currently selected macro group for CIM weight loads.
    MacroGroupSelect,
    /// Base address of the local-memory segment holding layer inputs.
    InputSegmentBase,
    /// Base address of the local-memory segment holding layer outputs.
    OutputSegmentBase,
    /// Base address of the local-memory segment staging weights.
    WeightSegmentBase,
}

impl SReg {
    /// All special registers, in encoding order.
    pub const ALL: [SReg; 6] = [
        SReg::CoreId,
        SReg::StageId,
        SReg::MacroGroupSelect,
        SReg::InputSegmentBase,
        SReg::OutputSegmentBase,
        SReg::WeightSegmentBase,
    ];

    /// Returns the encoding index of the special register.
    pub fn index(self) -> u8 {
        match self {
            SReg::CoreId => 0,
            SReg::StageId => 1,
            SReg::MacroGroupSelect => 2,
            SReg::InputSegmentBase => 3,
            SReg::OutputSegmentBase => 4,
            SReg::WeightSegmentBase => 5,
        }
    }

    /// Looks a special register up by its encoding index.
    pub fn from_index(index: u8) -> Option<Self> {
        Self::ALL.get(usize::from(index)).copied()
    }
}

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SReg::CoreId => "s_core",
            SReg::StageId => "s_stage",
            SReg::MacroGroupSelect => "s_mg",
            SReg::InputSegmentBase => "s_in",
            SReg::OutputSegmentBase => "s_out",
            SReg::WeightSegmentBase => "s_wgt",
        };
        f.write_str(name)
    }
}

/// Either register class, used by tooling that inspects operands uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Register {
    /// A general-purpose register.
    General(GReg),
    /// A special-purpose register.
    Special(SReg),
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Register::General(r) => r.fmt(f),
            Register::Special(r) => r.fmt(f),
        }
    }
}

impl From<GReg> for Register {
    fn from(value: GReg) -> Self {
        Register::General(value)
    }
}

impl From<SReg> for Register {
    fn from(value: SReg) -> Self {
        Register::Special(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_register_bounds() {
        assert!(GReg::new(0).is_ok());
        assert!(GReg::new(GENERAL_REGISTER_COUNT - 1).is_ok());
        assert_eq!(
            GReg::new(GENERAL_REGISTER_COUNT),
            Err(IsaError::InvalidRegister {
                index: GENERAL_REGISTER_COUNT,
                limit: GENERAL_REGISTER_COUNT
            })
        );
    }

    #[test]
    fn general_register_display_and_conversions() {
        let r = GReg::new(13).unwrap();
        assert_eq!(r.to_string(), "g13");
        assert_eq!(u8::from(r), 13);
        assert_eq!(GReg::try_from(13u8).unwrap(), r);
        assert!(GReg::try_from(200u8).is_err());
    }

    #[test]
    fn zero_register_is_index_zero() {
        assert_eq!(GReg::ZERO.index(), 0);
    }

    #[test]
    fn special_register_round_trip() {
        for (i, sreg) in SReg::ALL.iter().enumerate() {
            assert_eq!(sreg.index() as usize, i);
            assert_eq!(SReg::from_index(sreg.index()), Some(*sreg));
        }
        assert_eq!(SReg::from_index(100), None);
    }

    #[test]
    fn register_display_covers_both_classes() {
        assert_eq!(Register::from(GReg::ZERO).to_string(), "g0");
        assert_eq!(Register::from(SReg::StageId).to_string(), "s_stage");
    }
}
