//! Property-based tests over the ISA: encoding and assembly round-trips.

use proptest::prelude::*;

use crate::asm;
use crate::inst::{Instruction, PoolKind, ScalarAluOp, VectorOpKind};
use crate::program::Program;
use crate::register::{GReg, SReg, GENERAL_REGISTER_COUNT};
use crate::{decode, encode};

fn arb_greg() -> impl Strategy<Value = GReg> {
    (0..GENERAL_REGISTER_COUNT).prop_map(|i| GReg::new(i).expect("index below limit"))
}

fn arb_sreg() -> impl Strategy<Value = SReg> {
    (0..SReg::ALL.len()).prop_map(|i| SReg::ALL[i])
}

fn arb_vector_kind() -> impl Strategy<Value = VectorOpKind> {
    (0..VectorOpKind::ALL.len()).prop_map(|i| VectorOpKind::ALL[i])
}

fn arb_scalar_op() -> impl Strategy<Value = ScalarAluOp> {
    (0..ScalarAluOp::ALL.len()).prop_map(|i| ScalarAluOp::ALL[i])
}

prop_compose! {
    fn arb_pool_kind()(is_max in any::<bool>()) -> PoolKind {
        if is_max { PoolKind::Max } else { PoolKind::Average }
    }
}

/// Generates any encodable instruction with field values inside their
/// architectural ranges.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (arb_greg(), arb_greg(), arb_greg(), 0u8..64)
            .prop_map(|(input, rows, output, mg)| Instruction::CimMvm { input, rows, output, mg }),
        (arb_greg(), arb_greg(), 0u8..64).prop_map(|(weights, rows, mg)| Instruction::CimLoad {
            weights,
            rows,
            mg
        }),
        (arb_greg(), arb_greg(), 0u8..64).prop_map(|(output, len, mg)| Instruction::CimStoreAcc {
            output,
            len,
            mg
        }),
        (arb_vector_kind(), arb_greg(), arb_greg(), arb_greg(), arb_greg())
            .prop_map(|(kind, a, b, dst, len)| Instruction::VecOp { kind, a, b, dst, len }),
        (arb_pool_kind(), arb_greg(), arb_greg(), arb_greg(), arb_greg()).prop_map(
            |(kind, src, dst, window, len)| Instruction::VecPool { kind, src, dst, window, len }
        ),
        (arb_greg(), arb_greg(), arb_greg(), arb_greg())
            .prop_map(|(src, dst, shift, len)| Instruction::VecQuant { src, dst, shift, len }),
        (arb_greg(), arb_greg(), arb_greg(), arb_greg())
            .prop_map(|(src, acc, scale, len)| Instruction::VecMac { src, acc, scale, len }),
        (arb_scalar_op(), arb_greg(), arb_greg(), arb_greg())
            .prop_map(|(op, dst, a, b)| Instruction::ScAlu { op, dst, a, b }),
        (arb_scalar_op(), arb_greg(), arb_greg(), -512i16..512)
            .prop_map(|(op, dst, src, imm)| Instruction::ScAlui { op, dst, src, imm }),
        (arb_greg(), any::<u16>()).prop_map(|(dst, imm)| Instruction::ScLi { dst, imm }),
        (arb_greg(), any::<u16>()).prop_map(|(dst, imm)| Instruction::ScLui { dst, imm }),
        (arb_greg(), arb_sreg()).prop_map(|(dst, sreg)| Instruction::ScRdSpecial { dst, sreg }),
        (arb_greg(), arb_sreg()).prop_map(|(src, sreg)| Instruction::ScWrSpecial { sreg, src }),
        (arb_greg(), arb_greg(), arb_greg(), -1024i16..1024)
            .prop_map(|(src, dst, len, offset)| Instruction::MemCpy { src, dst, len, offset }),
        (arb_greg(), arb_greg(), arb_greg(), 0u16..2048)
            .prop_map(|(addr, len, dst_core, tag)| Instruction::Send { addr, len, dst_core, tag }),
        (arb_greg(), arb_greg(), arb_greg(), 0u16..2048)
            .prop_map(|(addr, len, src_core, tag)| Instruction::Recv { addr, len, src_core, tag }),
        (-32768i32..32768).prop_map(|offset| Instruction::Jmp { offset }),
        (arb_greg(), arb_greg(), -32768i32..32768).prop_map(|(a, b, offset)| Instruction::Beq {
            a,
            b,
            offset
        }),
        (arb_greg(), arb_greg(), -32768i32..32768).prop_map(|(a, b, offset)| Instruction::Bne {
            a,
            b,
            offset
        }),
        any::<u16>().prop_map(|id| Instruction::Barrier { id }),
        Just(Instruction::Halt),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Binary encoding is lossless for every encodable instruction.
    #[test]
    fn encode_decode_round_trip(inst in arb_instruction()) {
        let word = encode(&inst).expect("arbitrary instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, inst);
    }

    /// The opcode field always occupies the top six bits.
    #[test]
    fn opcode_field_position(inst in arb_instruction()) {
        let word = encode(&inst).expect("arbitrary instruction must encode");
        prop_assert_eq!((word >> 26) as u8, inst.opcode().code());
    }

    /// Textual assembly is lossless for arbitrary programs.
    #[test]
    fn assembly_round_trip(instructions in prop::collection::vec(arb_instruction(), 0..40)) {
        let program = Program::from_instructions(instructions);
        let text = asm::disassemble(&program);
        let parsed = asm::assemble(&text).expect("disassembled text must re-assemble");
        prop_assert_eq!(parsed.instructions(), program.instructions());
    }

    /// `defs` and `uses` only ever report architectural registers.
    #[test]
    fn defs_uses_are_architectural(inst in arb_instruction()) {
        for r in inst.defs().into_iter().chain(inst.uses()) {
            prop_assert!(r.index() < GENERAL_REGISTER_COUNT);
        }
    }

    /// Scalar ALU evaluation never panics on any operand pair.
    #[test]
    fn scalar_eval_total(op in arb_scalar_op(), a in any::<i32>(), b in any::<i32>()) {
        let _ = op.eval(a, b);
    }
}
