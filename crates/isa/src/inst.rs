use std::fmt;

use crate::opcode::{Opcode, OpcodeClass};
use crate::register::{GReg, SReg};

/// Element-wise operations executed by the vector compute unit.
///
/// The kind is carried in the 6-bit `funct` field of the vector format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum VectorOpKind {
    /// `dst[i] = a[i] + b[i]` (saturating INT32 accumulate).
    Add,
    /// `dst[i] = a[i] - b[i]`.
    Sub,
    /// `dst[i] = a[i] * b[i]`.
    Mul,
    /// `dst[i] = max(a[i], b[i])`.
    Max,
    /// `dst[i] = min(a[i], b[i])`.
    Min,
    /// Rectified linear unit: `dst[i] = max(a[i], 0)`.
    Relu,
    /// ReLU clipped at 6 (used by MobileNet-family models).
    Relu6,
    /// Hard-swish activation (EfficientNet / MobileNetV3 family).
    HardSwish,
    /// Logistic sigmoid approximation (squeeze-and-excitation gates).
    Sigmoid,
    /// Plain copy from source to destination.
    Copy,
    /// Multiply by a per-tensor scalar held in the `b` register.
    Scale,
}

impl VectorOpKind {
    /// All vector operation kinds in funct-encoding order.
    pub const ALL: [VectorOpKind; 11] = [
        VectorOpKind::Add,
        VectorOpKind::Sub,
        VectorOpKind::Mul,
        VectorOpKind::Max,
        VectorOpKind::Min,
        VectorOpKind::Relu,
        VectorOpKind::Relu6,
        VectorOpKind::HardSwish,
        VectorOpKind::Sigmoid,
        VectorOpKind::Copy,
        VectorOpKind::Scale,
    ];

    /// Returns the funct-field encoding of the kind.
    pub fn funct(self) -> u8 {
        self as u8
    }

    /// Decodes a funct value back into the kind.
    pub fn from_funct(funct: u8) -> Option<Self> {
        Self::ALL.get(usize::from(funct)).copied()
    }

    /// Whether the operation reads a second source operand.
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            VectorOpKind::Add
                | VectorOpKind::Sub
                | VectorOpKind::Mul
                | VectorOpKind::Max
                | VectorOpKind::Min
                | VectorOpKind::Scale
        )
    }

    /// Canonical lowercase mnemonic suffix.
    pub fn name(self) -> &'static str {
        match self {
            VectorOpKind::Add => "add",
            VectorOpKind::Sub => "sub",
            VectorOpKind::Mul => "mul",
            VectorOpKind::Max => "max",
            VectorOpKind::Min => "min",
            VectorOpKind::Relu => "relu",
            VectorOpKind::Relu6 => "relu6",
            VectorOpKind::HardSwish => "hswish",
            VectorOpKind::Sigmoid => "sigmoid",
            VectorOpKind::Copy => "copy",
            VectorOpKind::Scale => "scale",
        }
    }
}

impl fmt::Display for VectorOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Window-pooling variants executed by the vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Average,
}

impl PoolKind {
    /// Returns the funct encoding of the pooling kind.
    pub fn funct(self) -> u8 {
        match self {
            PoolKind::Max => 0,
            PoolKind::Average => 1,
        }
    }

    /// Decodes a funct value back into the pooling kind.
    pub fn from_funct(funct: u8) -> Option<Self> {
        match funct {
            0 => Some(PoolKind::Max),
            1 => Some(PoolKind::Average),
            _ => None,
        }
    }
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKind::Max => f.write_str("max"),
            PoolKind::Average => f.write_str("avg"),
        }
    }
}

/// Operations of the scalar arithmetic/logic unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ScalarAluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Multiplication (low 32 bits).
    Mul,
    /// Signed division (rounds towards zero, divide-by-zero yields zero).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Set to one if less-than (signed), else zero.
    Slt,
}

impl ScalarAluOp {
    /// All scalar ALU operations in funct-encoding order.
    pub const ALL: [ScalarAluOp; 11] = [
        ScalarAluOp::Add,
        ScalarAluOp::Sub,
        ScalarAluOp::Mul,
        ScalarAluOp::Div,
        ScalarAluOp::Rem,
        ScalarAluOp::And,
        ScalarAluOp::Or,
        ScalarAluOp::Xor,
        ScalarAluOp::Sll,
        ScalarAluOp::Srl,
        ScalarAluOp::Slt,
    ];

    /// Returns the funct encoding of the operation.
    pub fn funct(self) -> u8 {
        self as u8
    }

    /// Decodes a funct value back into the operation.
    pub fn from_funct(funct: u8) -> Option<Self> {
        Self::ALL.get(usize::from(funct)).copied()
    }

    /// Evaluates the operation on two 32-bit signed operands.
    ///
    /// Division and remainder by zero return zero, matching the simulator's
    /// hardware model (no traps).
    pub fn eval(self, a: i32, b: i32) -> i32 {
        match self {
            ScalarAluOp::Add => a.wrapping_add(b),
            ScalarAluOp::Sub => a.wrapping_sub(b),
            ScalarAluOp::Mul => a.wrapping_mul(b),
            ScalarAluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            ScalarAluOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            ScalarAluOp::And => a & b,
            ScalarAluOp::Or => a | b,
            ScalarAluOp::Xor => a ^ b,
            ScalarAluOp::Sll => ((a as u32) << (b as u32 & 31)) as i32,
            ScalarAluOp::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
            ScalarAluOp::Slt => i32::from(a < b),
        }
    }

    /// Canonical lowercase mnemonic suffix.
    pub fn name(self) -> &'static str {
        match self {
            ScalarAluOp::Add => "add",
            ScalarAluOp::Sub => "sub",
            ScalarAluOp::Mul => "mul",
            ScalarAluOp::Div => "div",
            ScalarAluOp::Rem => "rem",
            ScalarAluOp::And => "and",
            ScalarAluOp::Or => "or",
            ScalarAluOp::Xor => "xor",
            ScalarAluOp::Sll => "sll",
            ScalarAluOp::Srl => "srl",
            ScalarAluOp::Slt => "slt",
        }
    }
}

impl fmt::Display for ScalarAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed CIMFlow instruction.
///
/// This is the representation shared by the compiler's code generator, the
/// assembler and the simulator. Every variant corresponds to exactly one
/// 32-bit encoding produced by [`crate::encode`] and recovered by
/// [`crate::decode`].
///
/// Address operands are registers holding byte addresses in the unified
/// address space (local memory at low addresses, global memory above the
/// global base); length operands are registers holding element counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Instruction {
    /// In-situ matrix-vector multiplication on macro group `mg`.
    ///
    /// Reads `rows` input elements starting at the local address in
    /// `input`, multiplies them by the weight tile resident in the macro
    /// group, and accumulates into the INT32 accumulator buffer addressed
    /// by `output`.
    CimMvm {
        /// Register holding the local byte address of the input vector.
        input: GReg,
        /// Register holding the number of activated rows.
        rows: GReg,
        /// Register holding the local byte address of the accumulator tile.
        output: GReg,
        /// Macro-group index within the core's CIM compute unit (0..63).
        mg: u8,
    },
    /// Load a weight tile from local memory into macro group `mg`.
    CimLoad {
        /// Register holding the local byte address of the packed weight tile.
        weights: GReg,
        /// Register holding the number of weight rows to program.
        rows: GReg,
        /// Destination macro-group index (0..63).
        mg: u8,
    },
    /// Drain the INT32 accumulator of macro group `mg` to local memory.
    CimStoreAcc {
        /// Register holding the destination local byte address.
        output: GReg,
        /// Register holding the number of accumulator lanes to store.
        len: GReg,
        /// Source macro-group index (0..63).
        mg: u8,
    },
    /// Element-wise vector operation.
    VecOp {
        /// Operation kind (funct field).
        kind: VectorOpKind,
        /// Register addressing the first source vector.
        a: GReg,
        /// Register addressing the second source vector (ignored by unary kinds).
        b: GReg,
        /// Register addressing the destination vector.
        dst: GReg,
        /// Register holding the element count.
        len: GReg,
    },
    /// Window pooling.
    VecPool {
        /// Pooling kind (funct field).
        kind: PoolKind,
        /// Register addressing the source window.
        src: GReg,
        /// Register addressing the destination vector.
        dst: GReg,
        /// Register holding the pooling window size (elements per output).
        window: GReg,
        /// Register holding the number of output elements.
        len: GReg,
    },
    /// Requantize an INT32 accumulator vector to INT8.
    VecQuant {
        /// Register addressing the INT32 source vector.
        src: GReg,
        /// Register addressing the INT8 destination vector.
        dst: GReg,
        /// Register holding the fixed-point requantization shift.
        shift: GReg,
        /// Register holding the element count.
        len: GReg,
    },
    /// Multiply-accumulate a vector into an accumulator buffer.
    VecMac {
        /// Register addressing the source vector.
        src: GReg,
        /// Register addressing the accumulator buffer (read-modify-write).
        acc: GReg,
        /// Register holding the per-tensor multiplier.
        scale: GReg,
        /// Register holding the element count.
        len: GReg,
    },
    /// Register-register scalar ALU operation: `dst = a <op> b`.
    ScAlu {
        /// Operation kind (funct field).
        op: ScalarAluOp,
        /// Destination register.
        dst: GReg,
        /// First source register.
        a: GReg,
        /// Second source register.
        b: GReg,
    },
    /// Register-immediate scalar ALU operation: `dst = src <op> imm`.
    ScAlui {
        /// Operation kind (funct field).
        op: ScalarAluOp,
        /// Destination register.
        dst: GReg,
        /// Source register.
        src: GReg,
        /// Sign-extended 10-bit immediate.
        imm: i16,
    },
    /// Load a zero-extended 16-bit immediate: `dst = imm`.
    ScLi {
        /// Destination register.
        dst: GReg,
        /// 16-bit immediate value.
        imm: u16,
    },
    /// Load the upper 16 bits: `dst = (imm << 16) | (dst & 0xFFFF)`.
    ScLui {
        /// Destination register.
        dst: GReg,
        /// 16-bit immediate placed in the upper half.
        imm: u16,
    },
    /// Read special register `sreg` into `dst`.
    ScRdSpecial {
        /// Destination general register.
        dst: GReg,
        /// Source special register.
        sreg: SReg,
    },
    /// Write general register `src` into special register `sreg`.
    ScWrSpecial {
        /// Destination special register.
        sreg: SReg,
        /// Source general register.
        src: GReg,
    },
    /// Copy `len` bytes from `src + offset` to `dst` in the unified address
    /// space; crossing the global-memory base triggers NoC traffic.
    MemCpy {
        /// Register holding the source byte address.
        src: GReg,
        /// Register holding the destination byte address.
        dst: GReg,
        /// Register holding the transfer size in bytes.
        len: GReg,
        /// Signed byte offset added to the source address (11-bit field).
        offset: i16,
    },
    /// Send `len` bytes at local address `addr` to core `dst_core`.
    Send {
        /// Register holding the local source byte address.
        addr: GReg,
        /// Register holding the transfer size in bytes.
        len: GReg,
        /// Register holding the destination core identifier.
        dst_core: GReg,
        /// Match tag pairing this send with the remote receive (11-bit field).
        tag: u16,
    },
    /// Receive `len` bytes from core `src_core` into local address `addr`.
    Recv {
        /// Register holding the local destination byte address.
        addr: GReg,
        /// Register holding the transfer size in bytes.
        len: GReg,
        /// Register holding the source core identifier.
        src_core: GReg,
        /// Match tag pairing this receive with the remote send (11-bit field).
        tag: u16,
    },
    /// Unconditional relative jump by `offset` instructions.
    Jmp {
        /// Signed instruction offset relative to the next instruction.
        offset: i32,
    },
    /// Branch by `offset` instructions if `a == b`.
    Beq {
        /// First comparison register.
        a: GReg,
        /// Second comparison register.
        b: GReg,
        /// Signed instruction offset relative to the next instruction.
        offset: i32,
    },
    /// Branch by `offset` instructions if `a != b`.
    Bne {
        /// First comparison register.
        a: GReg,
        /// Second comparison register.
        b: GReg,
        /// Signed instruction offset relative to the next instruction.
        offset: i32,
    },
    /// Chip-wide synchronization barrier with identifier `id`.
    Barrier {
        /// Barrier identifier; all cores must reach the same identifier.
        id: u16,
    },
    /// Stop the issuing core.
    Halt,
    /// No operation.
    Nop,
}

impl Instruction {
    /// Returns the opcode of the instruction.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::CimMvm { .. } => Opcode::CimMvm,
            Instruction::CimLoad { .. } => Opcode::CimLoad,
            Instruction::CimStoreAcc { .. } => Opcode::CimStoreAcc,
            Instruction::VecOp { .. } => Opcode::VecOp,
            Instruction::VecPool { .. } => Opcode::VecPool,
            Instruction::VecQuant { .. } => Opcode::VecQuant,
            Instruction::VecMac { .. } => Opcode::VecMac,
            Instruction::ScAlu { .. } => Opcode::ScAlu,
            Instruction::ScAlui { .. } => Opcode::ScAlui,
            Instruction::ScLi { .. } => Opcode::ScLi,
            Instruction::ScLui { .. } => Opcode::ScLui,
            Instruction::ScRdSpecial { .. } => Opcode::ScRdSpecial,
            Instruction::ScWrSpecial { .. } => Opcode::ScWrSpecial,
            Instruction::MemCpy { .. } => Opcode::MemCpy,
            Instruction::Send { .. } => Opcode::Send,
            Instruction::Recv { .. } => Opcode::Recv,
            Instruction::Jmp { .. } => Opcode::Jmp,
            Instruction::Beq { .. } => Opcode::Beq,
            Instruction::Bne { .. } => Opcode::Bne,
            Instruction::Barrier { .. } => Opcode::Barrier,
            Instruction::Halt => Opcode::Halt,
            Instruction::Nop => Opcode::Nop,
        }
    }

    /// Returns the operation class (execution unit family) of the instruction.
    pub fn class(&self) -> OpcodeClass {
        self.opcode().class()
    }

    /// Returns the general registers read by this instruction.
    pub fn uses(&self) -> Vec<GReg> {
        match *self {
            Instruction::CimMvm { input, rows, output, .. } => vec![input, rows, output],
            Instruction::CimLoad { weights, rows, .. } => vec![weights, rows],
            Instruction::CimStoreAcc { output, len, .. } => vec![output, len],
            Instruction::VecOp { kind, a, b, dst, len } => {
                if kind.is_binary() {
                    vec![a, b, dst, len]
                } else {
                    vec![a, dst, len]
                }
            }
            Instruction::VecPool { src, dst, window, len, .. } => vec![src, dst, window, len],
            Instruction::VecQuant { src, dst, shift, len } => vec![src, dst, shift, len],
            Instruction::VecMac { src, acc, scale, len } => vec![src, acc, scale, len],
            Instruction::ScAlu { a, b, .. } => vec![a, b],
            Instruction::ScAlui { src, .. } => vec![src],
            Instruction::ScLi { .. } => vec![],
            Instruction::ScLui { dst, .. } => vec![dst],
            Instruction::ScRdSpecial { .. } => vec![],
            Instruction::ScWrSpecial { src, .. } => vec![src],
            Instruction::MemCpy { src, dst, len, .. } => vec![src, dst, len],
            Instruction::Send { addr, len, dst_core, .. } => vec![addr, len, dst_core],
            Instruction::Recv { addr, len, src_core, .. } => vec![addr, len, src_core],
            Instruction::Jmp { .. } => vec![],
            Instruction::Beq { a, b, .. } | Instruction::Bne { a, b, .. } => vec![a, b],
            Instruction::Barrier { .. } | Instruction::Halt | Instruction::Nop => vec![],
        }
    }

    /// Returns the general registers written by this instruction.
    pub fn defs(&self) -> Vec<GReg> {
        match *self {
            Instruction::ScAlu { dst, .. }
            | Instruction::ScAlui { dst, .. }
            | Instruction::ScLi { dst, .. }
            | Instruction::ScLui { dst, .. }
            | Instruction::ScRdSpecial { dst, .. } => vec![dst],
            _ => vec![],
        }
    }

    /// Whether the instruction can change the program counter.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instruction::Jmp { .. }
                | Instruction::Beq { .. }
                | Instruction::Bne { .. }
                | Instruction::Halt
        )
    }

    /// Whether the instruction has externally visible effects beyond
    /// register writes (memory, NoC, CIM state, synchronization).
    pub fn has_side_effects(&self) -> bool {
        !matches!(self.class(), OpcodeClass::Scalar)
            || matches!(self, Instruction::ScWrSpecial { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::CimMvm { input, rows, output, mg } => {
                write!(f, "cim_mvm {input}, {rows}, {output}, mg={mg}")
            }
            Instruction::CimLoad { weights, rows, mg } => {
                write!(f, "cim_load {weights}, {rows}, mg={mg}")
            }
            Instruction::CimStoreAcc { output, len, mg } => {
                write!(f, "cim_store {output}, {len}, mg={mg}")
            }
            Instruction::VecOp { kind, a, b, dst, len } => {
                write!(f, "vec_{kind} {a}, {b}, {dst}, {len}")
            }
            Instruction::VecPool { kind, src, dst, window, len } => {
                write!(f, "vec_pool_{kind} {src}, {dst}, {window}, {len}")
            }
            Instruction::VecQuant { src, dst, shift, len } => {
                write!(f, "vec_quant {src}, {dst}, {shift}, {len}")
            }
            Instruction::VecMac { src, acc, scale, len } => {
                write!(f, "vec_mac {src}, {acc}, {scale}, {len}")
            }
            Instruction::ScAlu { op, dst, a, b } => write!(f, "sc_{op} {dst}, {a}, {b}"),
            Instruction::ScAlui { op, dst, src, imm } => {
                write!(f, "sc_{op}i {dst}, {src}, {imm}")
            }
            Instruction::ScLi { dst, imm } => write!(f, "sc_li {dst}, {imm}"),
            Instruction::ScLui { dst, imm } => write!(f, "sc_lui {dst}, {imm}"),
            Instruction::ScRdSpecial { dst, sreg } => write!(f, "sc_rds {dst}, {sreg}"),
            Instruction::ScWrSpecial { sreg, src } => write!(f, "sc_wrs {sreg}, {src}"),
            Instruction::MemCpy { src, dst, len, offset } => {
                write!(f, "mem_cpy {src}, {dst}, {len}, {offset}")
            }
            Instruction::Send { addr, len, dst_core, tag } => {
                write!(f, "send {addr}, {len}, {dst_core}, tag={tag}")
            }
            Instruction::Recv { addr, len, src_core, tag } => {
                write!(f, "recv {addr}, {len}, {src_core}, tag={tag}")
            }
            Instruction::Jmp { offset } => write!(f, "jmp {offset}"),
            Instruction::Beq { a, b, offset } => write!(f, "beq {a}, {b}, {offset}"),
            Instruction::Bne { a, b, offset } => write!(f, "bne {a}, {b}, {offset}"),
            Instruction::Barrier { id } => write!(f, "barrier {id}"),
            Instruction::Halt => f.write_str("halt"),
            Instruction::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> GReg {
        GReg::new(i).unwrap()
    }

    #[test]
    fn vector_op_kind_funct_round_trip() {
        for kind in VectorOpKind::ALL {
            assert_eq!(VectorOpKind::from_funct(kind.funct()), Some(kind));
        }
        assert_eq!(VectorOpKind::from_funct(60), None);
    }

    #[test]
    fn scalar_alu_funct_round_trip() {
        for op in ScalarAluOp::ALL {
            assert_eq!(ScalarAluOp::from_funct(op.funct()), Some(op));
        }
        assert_eq!(ScalarAluOp::from_funct(63), None);
    }

    #[test]
    fn scalar_alu_eval_basics() {
        assert_eq!(ScalarAluOp::Add.eval(3, 4), 7);
        assert_eq!(ScalarAluOp::Sub.eval(3, 4), -1);
        assert_eq!(ScalarAluOp::Mul.eval(-3, 4), -12);
        assert_eq!(ScalarAluOp::Div.eval(9, 2), 4);
        assert_eq!(ScalarAluOp::Div.eval(9, 0), 0);
        assert_eq!(ScalarAluOp::Rem.eval(9, 0), 0);
        assert_eq!(ScalarAluOp::Rem.eval(9, 4), 1);
        assert_eq!(ScalarAluOp::Slt.eval(1, 2), 1);
        assert_eq!(ScalarAluOp::Slt.eval(2, 1), 0);
        assert_eq!(ScalarAluOp::Sll.eval(1, 4), 16);
        assert_eq!(ScalarAluOp::Srl.eval(16, 4), 1);
        assert_eq!(ScalarAluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(ScalarAluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(ScalarAluOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn pool_kind_round_trip() {
        assert_eq!(PoolKind::from_funct(PoolKind::Max.funct()), Some(PoolKind::Max));
        assert_eq!(PoolKind::from_funct(PoolKind::Average.funct()), Some(PoolKind::Average));
        assert_eq!(PoolKind::from_funct(9), None);
    }

    #[test]
    fn defs_and_uses_reflect_dataflow() {
        let mvm = Instruction::CimMvm { input: g(1), rows: g(2), output: g(3), mg: 0 };
        assert!(mvm.defs().is_empty());
        assert_eq!(mvm.uses(), vec![g(1), g(2), g(3)]);

        let alu = Instruction::ScAlu { op: ScalarAluOp::Add, dst: g(5), a: g(1), b: g(2) };
        assert_eq!(alu.defs(), vec![g(5)]);
        assert_eq!(alu.uses(), vec![g(1), g(2)]);

        let unary =
            Instruction::VecOp { kind: VectorOpKind::Relu, a: g(1), b: g(9), dst: g(2), len: g(3) };
        assert!(!unary.uses().contains(&g(9)), "unary vector op must not depend on b");
    }

    #[test]
    fn lui_reads_its_own_destination() {
        let lui = Instruction::ScLui { dst: g(4), imm: 10 };
        assert_eq!(lui.uses(), vec![g(4)]);
        assert_eq!(lui.defs(), vec![g(4)]);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instruction::Jmp { offset: -3 }.is_control_flow());
        assert!(Instruction::Halt.is_control_flow());
        assert!(!Instruction::Nop.is_control_flow());
        assert!(!Instruction::Barrier { id: 1 }.is_control_flow());
    }

    #[test]
    fn side_effect_classification() {
        assert!(
            Instruction::CimMvm { input: g(1), rows: g(2), output: g(3), mg: 0 }.has_side_effects()
        );
        assert!(!Instruction::ScLi { dst: g(1), imm: 5 }.has_side_effects());
        assert!(
            Instruction::ScWrSpecial { sreg: SReg::MacroGroupSelect, src: g(1) }.has_side_effects()
        );
        assert!(Instruction::Barrier { id: 0 }.has_side_effects());
    }

    #[test]
    fn display_is_stable() {
        let i = Instruction::CimMvm { input: g(7), rows: g(10), output: g(9), mg: 3 };
        assert_eq!(i.to_string(), "cim_mvm g7, g10, g9, mg=3");
        assert_eq!(Instruction::Nop.to_string(), "nop");
        assert_eq!(
            Instruction::ScAlui { op: ScalarAluOp::Add, dst: g(2), src: g(2), imm: 1 }.to_string(),
            "sc_addi g2, g2, 1"
        );
    }
}
