//! Binary encoding and decoding of the unified 32-bit instruction word.

use crate::inst::{Instruction, PoolKind, ScalarAluOp, VectorOpKind};
use crate::opcode::Opcode;
use crate::register::{GReg, SReg};
use crate::IsaError;

/// Maximum macro-group index encodable in the CIM flag field.
const MG_LIMIT: u8 = 64;

fn reg_field(reg: GReg, lsb: u8) -> u32 {
    u32::from(reg.index()) << lsb
}

fn decode_reg(word: u32, lsb: u8) -> Result<GReg, IsaError> {
    GReg::new(((word >> lsb) & 0x1F) as u8)
}

fn check_mg(mg: u8) -> Result<u32, IsaError> {
    if mg < MG_LIMIT {
        Ok(u32::from(mg))
    } else {
        Err(IsaError::InvalidMacroGroup { index: mg })
    }
}

fn check_signed(value: i32, bits: u8) -> Result<u32, IsaError> {
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(IsaError::ImmediateOutOfRange { value, bits });
    }
    Ok((value as u32) & ((1u32 << bits) - 1))
}

fn check_unsigned(value: u32, bits: u8) -> Result<u32, IsaError> {
    if bits < 32 && value >= (1u32 << bits) {
        return Err(IsaError::ImmediateOutOfRange { value: value as i32, bits });
    }
    Ok(value)
}

fn sign_extend(value: u32, bits: u8) -> i32 {
    let shift = 32 - u32::from(bits);
    ((value << shift) as i32) >> shift
}

/// Encodes a single instruction into its 32-bit binary word.
///
/// # Errors
///
/// Returns an error if an immediate, offset, tag or macro-group index does
/// not fit into its encoding field.
///
/// # Example
///
/// ```
/// use cimflow_isa::{encode, Instruction};
/// let word = encode(&Instruction::Nop)?;
/// assert_eq!(word >> 26, 0);
/// # Ok::<(), cimflow_isa::IsaError>(())
/// ```
pub fn encode(inst: &Instruction) -> Result<u32, IsaError> {
    let op = u32::from(inst.opcode().code()) << 26;
    let word = match *inst {
        Instruction::CimMvm { input, rows, output, mg } => {
            op | reg_field(input, 21) | reg_field(rows, 16) | reg_field(output, 11) | check_mg(mg)?
        }
        Instruction::CimLoad { weights, rows, mg } => {
            op | reg_field(weights, 21) | reg_field(rows, 16) | check_mg(mg)?
        }
        Instruction::CimStoreAcc { output, len, mg } => {
            op | reg_field(output, 21) | reg_field(len, 16) | check_mg(mg)?
        }
        Instruction::VecOp { kind, a, b, dst, len } => {
            op | reg_field(a, 21)
                | reg_field(b, 16)
                | reg_field(dst, 11)
                | reg_field(len, 6)
                | u32::from(kind.funct())
        }
        Instruction::VecPool { kind, src, dst, window, len } => {
            op | reg_field(src, 21)
                | reg_field(window, 16)
                | reg_field(dst, 11)
                | reg_field(len, 6)
                | u32::from(kind.funct())
        }
        Instruction::VecQuant { src, dst, shift, len } => {
            op | reg_field(src, 21) | reg_field(shift, 16) | reg_field(dst, 11) | reg_field(len, 6)
        }
        Instruction::VecMac { src, acc, scale, len } => {
            op | reg_field(src, 21) | reg_field(scale, 16) | reg_field(acc, 11) | reg_field(len, 6)
        }
        Instruction::ScAlu { op: alu, dst, a, b } => {
            op | reg_field(a, 21) | reg_field(b, 16) | reg_field(dst, 11) | u32::from(alu.funct())
        }
        Instruction::ScAlui { op: alu, dst, src, imm } => {
            op | reg_field(src, 21)
                | reg_field(dst, 16)
                | (u32::from(alu.funct()) << 10)
                | check_signed(i32::from(imm), 10)?
        }
        Instruction::ScLi { dst, imm } => op | reg_field(dst, 21) | u32::from(imm),
        Instruction::ScLui { dst, imm } => op | reg_field(dst, 21) | u32::from(imm),
        Instruction::ScRdSpecial { dst, sreg } => op | reg_field(dst, 16) | u32::from(sreg.index()),
        Instruction::ScWrSpecial { sreg, src } => op | reg_field(src, 21) | u32::from(sreg.index()),
        Instruction::MemCpy { src, dst, len, offset } => {
            op | reg_field(src, 21)
                | reg_field(dst, 16)
                | reg_field(len, 11)
                | check_signed(i32::from(offset), 11)?
        }
        Instruction::Send { addr, len, dst_core, tag } => {
            op | reg_field(addr, 21)
                | reg_field(len, 16)
                | reg_field(dst_core, 11)
                | check_unsigned(u32::from(tag), 11)?
        }
        Instruction::Recv { addr, len, src_core, tag } => {
            op | reg_field(addr, 21)
                | reg_field(len, 16)
                | reg_field(src_core, 11)
                | check_unsigned(u32::from(tag), 11)?
        }
        Instruction::Jmp { offset } => op | check_signed(offset, 16)?,
        Instruction::Beq { a, b, offset } | Instruction::Bne { a, b, offset } => {
            op | reg_field(a, 21) | reg_field(b, 16) | check_signed(offset, 16)?
        }
        Instruction::Barrier { id } => op | u32::from(id),
        Instruction::Halt | Instruction::Nop => op,
    };
    Ok(word)
}

/// Decodes a 32-bit binary word back into a typed [`Instruction`].
///
/// # Errors
///
/// Returns an error when the opcode or a funct field does not correspond to
/// an architectural instruction.
pub fn decode(word: u32) -> Result<Instruction, IsaError> {
    let code = (word >> 26) as u8;
    let opcode = Opcode::from_code(code)?;
    let funct6 = (word & 0x3F) as u8;
    let imm11 = word & 0x7FF;
    let imm16 = word & 0xFFFF;
    let inst = match opcode {
        Opcode::CimMvm => Instruction::CimMvm {
            input: decode_reg(word, 21)?,
            rows: decode_reg(word, 16)?,
            output: decode_reg(word, 11)?,
            mg: (imm11 & 0x3F) as u8,
        },
        Opcode::CimLoad => Instruction::CimLoad {
            weights: decode_reg(word, 21)?,
            rows: decode_reg(word, 16)?,
            mg: (imm11 & 0x3F) as u8,
        },
        Opcode::CimStoreAcc => Instruction::CimStoreAcc {
            output: decode_reg(word, 21)?,
            len: decode_reg(word, 16)?,
            mg: (imm11 & 0x3F) as u8,
        },
        Opcode::VecOp => Instruction::VecOp {
            kind: VectorOpKind::from_funct(funct6)
                .ok_or(IsaError::UnknownFunct { opcode: code, funct: funct6 })?,
            a: decode_reg(word, 21)?,
            b: decode_reg(word, 16)?,
            dst: decode_reg(word, 11)?,
            len: decode_reg(word, 6)?,
        },
        Opcode::VecPool => Instruction::VecPool {
            kind: PoolKind::from_funct(funct6)
                .ok_or(IsaError::UnknownFunct { opcode: code, funct: funct6 })?,
            src: decode_reg(word, 21)?,
            window: decode_reg(word, 16)?,
            dst: decode_reg(word, 11)?,
            len: decode_reg(word, 6)?,
        },
        Opcode::VecQuant => Instruction::VecQuant {
            src: decode_reg(word, 21)?,
            shift: decode_reg(word, 16)?,
            dst: decode_reg(word, 11)?,
            len: decode_reg(word, 6)?,
        },
        Opcode::VecMac => Instruction::VecMac {
            src: decode_reg(word, 21)?,
            scale: decode_reg(word, 16)?,
            acc: decode_reg(word, 11)?,
            len: decode_reg(word, 6)?,
        },
        Opcode::ScAlu => Instruction::ScAlu {
            op: ScalarAluOp::from_funct(funct6)
                .ok_or(IsaError::UnknownFunct { opcode: code, funct: funct6 })?,
            a: decode_reg(word, 21)?,
            b: decode_reg(word, 16)?,
            dst: decode_reg(word, 11)?,
        },
        Opcode::ScAlui => {
            let funct = ((word >> 10) & 0x3F) as u8;
            Instruction::ScAlui {
                op: ScalarAluOp::from_funct(funct)
                    .ok_or(IsaError::UnknownFunct { opcode: code, funct })?,
                src: decode_reg(word, 21)?,
                dst: decode_reg(word, 16)?,
                imm: sign_extend(word & 0x3FF, 10) as i16,
            }
        }
        Opcode::ScLi => Instruction::ScLi { dst: decode_reg(word, 21)?, imm: imm16 as u16 },
        Opcode::ScLui => Instruction::ScLui { dst: decode_reg(word, 21)?, imm: imm16 as u16 },
        Opcode::ScRdSpecial => Instruction::ScRdSpecial {
            dst: decode_reg(word, 16)?,
            sreg: SReg::from_index(funct6)
                .ok_or(IsaError::UnknownFunct { opcode: code, funct: funct6 })?,
        },
        Opcode::ScWrSpecial => Instruction::ScWrSpecial {
            src: decode_reg(word, 21)?,
            sreg: SReg::from_index(funct6)
                .ok_or(IsaError::UnknownFunct { opcode: code, funct: funct6 })?,
        },
        Opcode::MemCpy => Instruction::MemCpy {
            src: decode_reg(word, 21)?,
            dst: decode_reg(word, 16)?,
            len: decode_reg(word, 11)?,
            offset: sign_extend(imm11, 11) as i16,
        },
        Opcode::Send => Instruction::Send {
            addr: decode_reg(word, 21)?,
            len: decode_reg(word, 16)?,
            dst_core: decode_reg(word, 11)?,
            tag: imm11 as u16,
        },
        Opcode::Recv => Instruction::Recv {
            addr: decode_reg(word, 21)?,
            len: decode_reg(word, 16)?,
            src_core: decode_reg(word, 11)?,
            tag: imm11 as u16,
        },
        Opcode::Jmp => Instruction::Jmp { offset: sign_extend(imm16, 16) },
        Opcode::Beq => Instruction::Beq {
            a: decode_reg(word, 21)?,
            b: decode_reg(word, 16)?,
            offset: sign_extend(imm16, 16),
        },
        Opcode::Bne => Instruction::Bne {
            a: decode_reg(word, 21)?,
            b: decode_reg(word, 16)?,
            offset: sign_extend(imm16, 16),
        },
        Opcode::Barrier => Instruction::Barrier { id: imm16 as u16 },
        Opcode::Halt => Instruction::Halt,
        Opcode::Nop => Instruction::Nop,
        Opcode::Custom => {
            return Err(IsaError::UnknownOpcode { opcode: code });
        }
    };
    Ok(inst)
}

/// Encodes a full instruction sequence into binary words.
///
/// # Errors
///
/// Fails on the first instruction that cannot be encoded; the error
/// identifies the offending field.
pub fn encode_program(instructions: &[Instruction]) -> Result<Vec<u32>, IsaError> {
    instructions.iter().map(encode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u8) -> GReg {
        GReg::new(i).unwrap()
    }

    fn representative_instructions() -> Vec<Instruction> {
        vec![
            Instruction::CimMvm { input: g(7), rows: g(10), output: g(9), mg: 5 },
            Instruction::CimLoad { weights: g(1), rows: g(2), mg: 63 },
            Instruction::CimStoreAcc { output: g(3), len: g(4), mg: 0 },
            Instruction::VecOp { kind: VectorOpKind::Relu, a: g(1), b: g(0), dst: g(2), len: g(3) },
            Instruction::VecOp { kind: VectorOpKind::Add, a: g(1), b: g(5), dst: g(2), len: g(3) },
            Instruction::VecPool {
                kind: PoolKind::Average,
                src: g(1),
                dst: g(2),
                window: g(4),
                len: g(3),
            },
            Instruction::VecQuant { src: g(1), dst: g(2), shift: g(6), len: g(3) },
            Instruction::VecMac { src: g(1), acc: g(2), scale: g(7), len: g(3) },
            Instruction::ScAlu { op: ScalarAluOp::Mul, dst: g(4), a: g(5), b: g(6) },
            Instruction::ScAlui { op: ScalarAluOp::Add, dst: g(2), src: g(2), imm: -7 },
            Instruction::ScLi { dst: g(9), imm: 65535 },
            Instruction::ScLui { dst: g(9), imm: 1024 },
            Instruction::ScRdSpecial { dst: g(8), sreg: SReg::CoreId },
            Instruction::ScWrSpecial { sreg: SReg::MacroGroupSelect, src: g(8) },
            Instruction::MemCpy { src: g(1), dst: g(2), len: g(3), offset: -1024 },
            Instruction::Send { addr: g(1), len: g(2), dst_core: g(3), tag: 2047 },
            Instruction::Recv { addr: g(1), len: g(2), src_core: g(3), tag: 0 },
            Instruction::Jmp { offset: -26 },
            Instruction::Beq { a: g(1), b: g(2), offset: 12 },
            Instruction::Bne { a: g(1), b: g(2), offset: -12 },
            Instruction::Barrier { id: 77 },
            Instruction::Halt,
            Instruction::Nop,
        ]
    }

    #[test]
    fn encode_decode_round_trip_for_every_variant() {
        for inst in representative_instructions() {
            let word = encode(&inst).unwrap();
            assert_eq!(decode(word).unwrap(), inst, "round trip failed for {inst}");
        }
    }

    #[test]
    fn opcode_occupies_top_six_bits() {
        for inst in representative_instructions() {
            let word = encode(&inst).unwrap();
            assert_eq!((word >> 26) as u8, inst.opcode().code());
        }
    }

    #[test]
    fn out_of_range_immediates_are_rejected() {
        assert!(matches!(
            encode(&Instruction::ScAlui { op: ScalarAluOp::Add, dst: g(1), src: g(1), imm: 512 }),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Instruction::MemCpy { src: g(1), dst: g(2), len: g(3), offset: 1024 }),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Instruction::Send { addr: g(1), len: g(2), dst_core: g(3), tag: 4000 }),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
        assert!(matches!(
            encode(&Instruction::Jmp { offset: 40000 }),
            Err(IsaError::ImmediateOutOfRange { .. })
        ));
    }

    #[test]
    fn invalid_macro_group_is_rejected() {
        assert_eq!(
            encode(&Instruction::CimMvm { input: g(1), rows: g(2), output: g(3), mg: 64 }),
            Err(IsaError::InvalidMacroGroup { index: 64 })
        );
    }

    #[test]
    fn unknown_words_fail_to_decode() {
        assert!(decode(0x3E << 26).is_err());
        let bad_funct = (u32::from(Opcode::VecOp.code()) << 26) | 0x3F;
        assert!(matches!(decode(bad_funct), Err(IsaError::UnknownFunct { .. })));
    }

    #[test]
    fn encode_program_encodes_all_or_fails() {
        let prog = representative_instructions();
        let words = encode_program(&prog).unwrap();
        assert_eq!(words.len(), prog.len());
        let bad = vec![Instruction::Nop, Instruction::Jmp { offset: 1 << 20 }];
        assert!(encode_program(&bad).is_err());
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let word = encode(&Instruction::Jmp { offset: -26 }).unwrap();
        match decode(word).unwrap() {
            Instruction::Jmp { offset } => assert_eq!(offset, -26),
            other => panic!("unexpected {other}"),
        }
    }
}
