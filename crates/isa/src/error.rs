use std::error::Error;
use std::fmt;

/// Errors produced while constructing, encoding, decoding or assembling
/// CIMFlow instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index was outside the architectural register file.
    InvalidRegister {
        /// The offending index.
        index: u8,
        /// Number of architectural registers of that class.
        limit: u8,
    },
    /// A macro-group index did not fit into the 4-bit flag field.
    InvalidMacroGroup {
        /// The offending macro-group index.
        index: u8,
    },
    /// An immediate value did not fit into its encoding field.
    ImmediateOutOfRange {
        /// The value that was requested.
        value: i32,
        /// Number of bits available in the encoding.
        bits: u8,
    },
    /// A 32-bit word did not correspond to any known opcode.
    UnknownOpcode {
        /// The 6-bit opcode field extracted from the word.
        opcode: u8,
    },
    /// A funct field value was not valid for the decoded opcode.
    UnknownFunct {
        /// The opcode being decoded.
        opcode: u8,
        /// The offending funct value.
        funct: u8,
    },
    /// An assembler parse failure.
    ParseInstruction {
        /// Line number (1-based) where the failure occurred.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A label was referenced but never defined.
    UndefinedLabel {
        /// The missing label name.
        name: String,
    },
    /// A label was defined more than once.
    DuplicateLabel {
        /// The duplicated label name.
        name: String,
    },
    /// A custom instruction descriptor collided with an existing mnemonic.
    DuplicateExtension {
        /// The mnemonic that is already registered.
        mnemonic: String,
    },
    /// A branch or jump target was too far away to encode.
    BranchOutOfRange {
        /// The requested offset in instructions.
        offset: i64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::InvalidRegister { index, limit } => {
                write!(f, "register index {index} exceeds register file size {limit}")
            }
            IsaError::InvalidMacroGroup { index } => {
                write!(f, "macro group index {index} does not fit the 4-bit flag field")
            }
            IsaError::ImmediateOutOfRange { value, bits } => {
                write!(f, "immediate {value} does not fit into {bits} bits")
            }
            IsaError::UnknownOpcode { opcode } => {
                write!(f, "unknown opcode 0b{opcode:06b}")
            }
            IsaError::UnknownFunct { opcode, funct } => {
                write!(f, "unknown funct 0b{funct:06b} for opcode 0b{opcode:06b}")
            }
            IsaError::ParseInstruction { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            IsaError::UndefinedLabel { name } => write!(f, "undefined label `{name}`"),
            IsaError::DuplicateLabel { name } => write!(f, "duplicate label `{name}`"),
            IsaError::DuplicateExtension { mnemonic } => {
                write!(f, "instruction mnemonic `{mnemonic}` is already registered")
            }
            IsaError::BranchOutOfRange { offset } => {
                write!(f, "branch offset {offset} instructions is out of encodable range")
            }
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<IsaError> = vec![
            IsaError::InvalidRegister { index: 40, limit: 32 },
            IsaError::InvalidMacroGroup { index: 99 },
            IsaError::ImmediateOutOfRange { value: 70000, bits: 16 },
            IsaError::UnknownOpcode { opcode: 63 },
            IsaError::UnknownFunct { opcode: 1, funct: 63 },
            IsaError::ParseInstruction { line: 3, reason: "bad operand".into() },
            IsaError::UndefinedLabel { name: "loop".into() },
            IsaError::DuplicateLabel { name: "loop".into() },
            IsaError::DuplicateExtension { mnemonic: "cim_fma".into() },
            IsaError::BranchOutOfRange { offset: 1 << 40 },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
