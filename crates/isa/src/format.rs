use std::fmt;

/// The bit-level layout families of the unified 32-bit instruction word.
///
/// Every instruction starts with a 6-bit opcode in bits `[31:26]`.
/// Operand registers occupy 5-bit fields; some formats carry a 6-bit
/// functionality specifier, execution flags, or immediates of 10 or 16
/// bits, mirroring Fig. 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstructionFormat {
    /// `opcode | rs | rt | re | flags(11)` — CIM compute instructions.
    Cim,
    /// `opcode | rs | rt | rd | re | funct(6)` — vector compute instructions.
    Vector,
    /// `opcode | rs | rt | rd | funct(6) | unused` — scalar register-register.
    ScalarReg,
    /// `opcode | rs | rt | funct(6) | imm(10)` — scalar register-immediate.
    ScalarImm,
    /// `opcode | rs | rt | rd | offset(11)` — communication instructions.
    Communication,
    /// `opcode | rs | rt | offset(16)` — control-flow instructions.
    Control,
}

impl InstructionFormat {
    /// All format families.
    pub const ALL: [InstructionFormat; 6] = [
        InstructionFormat::Cim,
        InstructionFormat::Vector,
        InstructionFormat::ScalarReg,
        InstructionFormat::ScalarImm,
        InstructionFormat::Communication,
        InstructionFormat::Control,
    ];

    /// Returns the field layout (bit positions and widths) of the format.
    pub fn layout(self) -> FieldLayout {
        match self {
            InstructionFormat::Cim => FieldLayout {
                rs: Some((21, 5)),
                rt: Some((16, 5)),
                rd: None,
                re: Some((11, 5)),
                funct: None,
                imm: Some((0, 11)),
            },
            InstructionFormat::Vector => FieldLayout {
                rs: Some((21, 5)),
                rt: Some((16, 5)),
                rd: Some((11, 5)),
                re: Some((6, 5)),
                funct: Some((0, 6)),
                imm: None,
            },
            InstructionFormat::ScalarReg => FieldLayout {
                rs: Some((21, 5)),
                rt: Some((16, 5)),
                rd: Some((11, 5)),
                re: None,
                funct: Some((0, 6)),
                imm: None,
            },
            InstructionFormat::ScalarImm => FieldLayout {
                rs: Some((21, 5)),
                rt: Some((16, 5)),
                rd: None,
                re: None,
                funct: Some((10, 6)),
                imm: Some((0, 10)),
            },
            InstructionFormat::Communication => FieldLayout {
                rs: Some((21, 5)),
                rt: Some((16, 5)),
                rd: Some((11, 5)),
                re: None,
                funct: None,
                imm: Some((0, 11)),
            },
            InstructionFormat::Control => FieldLayout {
                rs: Some((21, 5)),
                rt: Some((16, 5)),
                rd: None,
                re: None,
                funct: None,
                imm: Some((0, 16)),
            },
        }
    }

    /// Maximum number of register operands carried by this format.
    pub fn register_operands(self) -> usize {
        let l = self.layout();
        [l.rs, l.rt, l.rd, l.re].iter().filter(|f| f.is_some()).count()
    }
}

impl fmt::Display for InstructionFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstructionFormat::Cim => "cim",
            InstructionFormat::Vector => "vector",
            InstructionFormat::ScalarReg => "scalar-reg",
            InstructionFormat::ScalarImm => "scalar-imm",
            InstructionFormat::Communication => "communication",
            InstructionFormat::Control => "control",
        };
        f.write_str(s)
    }
}

/// Bit positions (`(lsb, width)`) of every field of an instruction format.
///
/// `None` means the field does not exist in the format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldLayout {
    /// First source register.
    pub rs: Option<(u8, u8)>,
    /// Second source register.
    pub rt: Option<(u8, u8)>,
    /// Destination register.
    pub rd: Option<(u8, u8)>,
    /// Extra operand register (lengths, counts).
    pub re: Option<(u8, u8)>,
    /// Functionality specifier.
    pub funct: Option<(u8, u8)>,
    /// Immediate / offset / flags field.
    pub imm: Option<(u8, u8)>,
}

impl FieldLayout {
    /// Checks that no two fields of the layout overlap and that all fields
    /// fit below the 6-bit opcode at bits `[31:26]`.
    pub fn is_consistent(&self) -> bool {
        let mut used = 0u32;
        let fields = [self.rs, self.rt, self.rd, self.re, self.funct, self.imm];
        for (lsb, width) in fields.into_iter().flatten() {
            if u32::from(lsb) + u32::from(width) > 26 {
                return false;
            }
            let mask = ((1u32 << width) - 1) << lsb;
            if used & mask != 0 {
                return false;
            }
            used |= mask;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_layouts_are_consistent() {
        for fmt in InstructionFormat::ALL {
            assert!(fmt.layout().is_consistent(), "layout of {fmt} overlaps or exceeds 26 bits");
        }
    }

    #[test]
    fn control_format_has_sixteen_bit_immediate() {
        let layout = InstructionFormat::Control.layout();
        assert_eq!(layout.imm, Some((0, 16)));
    }

    #[test]
    fn vector_format_supports_four_register_operands() {
        assert_eq!(InstructionFormat::Vector.register_operands(), 4);
        assert_eq!(InstructionFormat::Control.register_operands(), 2);
    }

    #[test]
    fn inconsistent_layout_is_detected() {
        let bad = FieldLayout {
            rs: Some((21, 5)),
            rt: Some((23, 5)),
            rd: None,
            re: None,
            funct: None,
            imm: None,
        };
        assert!(!bad.is_consistent());
        let too_wide =
            FieldLayout { rs: Some((22, 5)), rt: None, rd: None, re: None, funct: None, imm: None };
        assert!(!too_wide.is_consistent());
    }
}
