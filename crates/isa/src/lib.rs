//! # cimflow-isa
//!
//! Instruction set architecture for the CIMFlow digital compute-in-memory
//! (CIM) framework, reproducing Sec. III-B of the CIMFlow paper (DAC 2025).
//!
//! The ISA bridges the compiler (`cimflow-compiler`) and the cycle-level
//! simulator (`cimflow-sim`) with a unified 32-bit instruction word and a
//! small number of format variations for the different operation classes:
//!
//! * **CIM compute** — in-memory matrix-vector multiplication and weight
//!   loading on macro groups,
//! * **vector compute** — element-wise auxiliary DNN operations
//!   (activation, pooling, quantization, accumulation),
//! * **scalar compute** — address arithmetic and control-flow support,
//! * **communication** — local/global memory copies and inter-core
//!   send/receive over the NoC,
//! * **control flow** — branches, jumps, barriers and halt.
//!
//! The crate offers:
//!
//! * a typed, high-level [`Instruction`] enum used throughout the compiler
//!   and simulator,
//! * exact 32-bit binary [`encode`]/[`decode`] round-trips,
//! * a textual assembler / disassembler ([`asm`]),
//! * a [`Program`] container with labels,
//! * an [`extension`] registry implementing the paper's "customized
//!   instruction description template" for adding new operations together
//!   with their performance parameters.
//!
//! # Example
//!
//! ```
//! use cimflow_isa::{Instruction, GReg, encode, decode};
//!
//! # fn main() -> Result<(), cimflow_isa::IsaError> {
//! let inst = Instruction::CimMvm {
//!     input: GReg::new(7)?,
//!     rows: GReg::new(10)?,
//!     output: GReg::new(9)?,
//!     mg: 3,
//! };
//! let word = encode(&inst)?;
//! assert_eq!(decode(word)?, inst);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod encode;
mod error;
pub mod extension;
mod format;
mod inst;
mod opcode;
mod program;
mod register;

pub use encode::{decode, encode, encode_program};
pub use error::IsaError;
pub use extension::{ExecutionUnit, InstructionDescriptor, IsaExtension};
pub use format::{FieldLayout, InstructionFormat};
pub use inst::{Instruction, PoolKind, ScalarAluOp, VectorOpKind};
pub use opcode::{Opcode, OpcodeClass};
pub use program::{Label, Program, ProgramBuilder};
pub use register::{GReg, Register, SReg, GENERAL_REGISTER_COUNT};

#[cfg(test)]
mod proptests;
