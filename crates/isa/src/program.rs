use std::collections::BTreeMap;
use std::fmt;

use crate::inst::Instruction;
use crate::opcode::OpcodeClass;
use crate::register::GReg;
use crate::IsaError;

/// A symbolic label used by the [`ProgramBuilder`] to express branch
/// targets before the final instruction layout is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(usize);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A finished, position-resolved instruction sequence for one core.
///
/// A `Program` is what the compiler hands to the simulator: a flat list of
/// [`Instruction`]s whose branch offsets are already relative, plus the
/// optional label map retained for debugging and disassembly.
///
/// # Example
///
/// ```
/// use cimflow_isa::{Instruction, Program};
///
/// let program = Program::from_instructions(vec![Instruction::Nop, Instruction::Halt]);
/// assert_eq!(program.len(), 2);
/// assert!(program.is_halting());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    labels: BTreeMap<usize, String>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-resolved instruction sequence.
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Program { instructions, labels: BTreeMap::new() }
    }

    /// Returns the instructions in execution order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions in the program.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Whether the final reachable instruction is a [`Instruction::Halt`].
    pub fn is_halting(&self) -> bool {
        matches!(self.instructions.last(), Some(Instruction::Halt))
    }

    /// Returns the debug name attached to an instruction index, if any.
    pub fn label_at(&self, index: usize) -> Option<&str> {
        self.labels.get(&index).map(String::as_str)
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Counts instructions per operation class; useful for static program
    /// statistics and for the compilation reports.
    pub fn class_histogram(&self) -> BTreeMap<OpcodeClass, usize> {
        let mut histogram = BTreeMap::new();
        for inst in &self.instructions {
            *histogram.entry(inst.class()).or_insert(0) += 1;
        }
        histogram
    }

    /// Verifies structural well-formedness: every branch target lands inside
    /// the program and the program terminates with a halt.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BranchOutOfRange`] for a branch that escapes the
    /// program body.
    pub fn validate(&self) -> Result<(), IsaError> {
        for (pc, inst) in self.instructions.iter().enumerate() {
            let offset = match inst {
                Instruction::Jmp { offset }
                | Instruction::Beq { offset, .. }
                | Instruction::Bne { offset, .. } => Some(*offset),
                _ => None,
            };
            if let Some(offset) = offset {
                let target = pc as i64 + 1 + i64::from(offset);
                if target < 0 || target > self.instructions.len() as i64 {
                    return Err(IsaError::BranchOutOfRange { offset: i64::from(offset) });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.instructions.iter().enumerate() {
            if let Some(label) = self.label_at(i) {
                writeln!(f, "{label}:")?;
            }
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

impl IntoIterator for Program {
    type Item = Instruction;
    type IntoIter = std::vec::IntoIter<Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.into_iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program::from_instructions(iter.into_iter().collect())
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

/// Incrementally builds a [`Program`] with symbolic labels.
///
/// The builder is the code-generation interface used by
/// `cimflow-compiler`: instructions are emitted sequentially, branch
/// targets are named with [`Label`]s, and `finish` resolves all label
/// references into relative offsets.
///
/// # Example
///
/// ```
/// use cimflow_isa::{GReg, Instruction, ProgramBuilder, ScalarAluOp};
///
/// # fn main() -> Result<(), cimflow_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let counter = GReg::new(1)?;
/// let limit = GReg::new(2)?;
/// b.load_immediate(counter, 0)?;
/// b.load_immediate(limit, 4)?;
/// let top = b.bind_label("loop");
/// b.push(Instruction::ScAlui { op: ScalarAluOp::Add, dst: counter, src: counter, imm: 1 });
/// b.branch_if_not_equal(counter, limit, top);
/// b.push(Instruction::Halt);
/// let program = b.finish()?;
/// assert!(program.is_halting());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instructions: Vec<Instruction>,
    label_positions: Vec<Option<usize>>,
    label_names: Vec<String>,
    pending_branches: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether no instruction has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an already-resolved instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// Declares a label that will be bound later with [`Self::place_label`].
    pub fn declare_label(&mut self, name: &str) -> Label {
        self.label_positions.push(None);
        self.label_names.push(name.to_owned());
        Label(self.label_positions.len() - 1)
    }

    /// Declares a label bound to the current position.
    pub fn bind_label(&mut self, name: &str) -> Label {
        let label = self.declare_label(name);
        self.place_label(label);
        label
    }

    /// Binds a previously declared label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label belongs to a different builder.
    pub fn place_label(&mut self, label: Label) {
        self.label_positions[label.0] = Some(self.instructions.len());
    }

    /// Emits an unconditional jump to `target`.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.pending_branches.push((self.instructions.len(), target));
        self.instructions.push(Instruction::Jmp { offset: 0 });
        self
    }

    /// Emits a `beq` to `target`.
    pub fn branch_if_equal(&mut self, a: GReg, b: GReg, target: Label) -> &mut Self {
        self.pending_branches.push((self.instructions.len(), target));
        self.instructions.push(Instruction::Beq { a, b, offset: 0 });
        self
    }

    /// Emits a `bne` to `target`.
    pub fn branch_if_not_equal(&mut self, a: GReg, b: GReg, target: Label) -> &mut Self {
        self.pending_branches.push((self.instructions.len(), target));
        self.instructions.push(Instruction::Bne { a, b, offset: 0 });
        self
    }

    /// Emits the shortest sequence loading an arbitrary 32-bit value into
    /// `dst` (one `sc_li`, optionally followed by `sc_lui`).
    ///
    /// # Errors
    ///
    /// Never fails for 32-bit values; the `Result` mirrors the fallible
    /// encoding API for forward compatibility.
    pub fn load_immediate(&mut self, dst: GReg, value: u32) -> Result<&mut Self, IsaError> {
        let low = (value & 0xFFFF) as u16;
        let high = (value >> 16) as u16;
        self.instructions.push(Instruction::ScLi { dst, imm: low });
        if high != 0 {
            self.instructions.push(Instruction::ScLui { dst, imm: high });
        }
        Ok(self)
    }

    /// Resolves all labels and returns the finished [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] if a referenced label was never
    /// placed, or [`IsaError::BranchOutOfRange`] if a resolved offset does
    /// not fit the 16-bit branch field.
    pub fn finish(mut self) -> Result<Program, IsaError> {
        for (pc, label) in &self.pending_branches {
            let target = self.label_positions[label.0].ok_or_else(|| IsaError::UndefinedLabel {
                name: self.label_names[label.0].clone(),
            })?;
            let offset = target as i64 - (*pc as i64 + 1);
            if offset < i64::from(i16::MIN) || offset > i64::from(i16::MAX) {
                return Err(IsaError::BranchOutOfRange { offset });
            }
            let offset = offset as i32;
            match &mut self.instructions[*pc] {
                Instruction::Jmp { offset: o }
                | Instruction::Beq { offset: o, .. }
                | Instruction::Bne { offset: o, .. } => *o = offset,
                other => unreachable!("pending branch points at non-branch {other}"),
            }
        }
        let mut labels = BTreeMap::new();
        for (i, pos) in self.label_positions.iter().enumerate() {
            if let Some(pos) = pos {
                labels.entry(*pos).or_insert_with(|| self.label_names[i].clone());
            }
        }
        let program = Program { instructions: self.instructions, labels };
        program.validate()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::ScalarAluOp;

    fn g(i: u8) -> GReg {
        GReg::new(i).unwrap()
    }

    #[test]
    fn empty_program_properties() {
        let p = Program::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(!p.is_halting());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builder_resolves_backward_branch() {
        let mut b = ProgramBuilder::new();
        b.load_immediate(g(1), 0).unwrap();
        b.load_immediate(g(2), 3).unwrap();
        let top = b.bind_label("loop");
        b.push(Instruction::ScAlui { op: ScalarAluOp::Add, dst: g(1), src: g(1), imm: 1 });
        b.branch_if_not_equal(g(1), g(2), top);
        b.push(Instruction::Halt);
        let p = b.finish().unwrap();
        match p.instructions()[3] {
            Instruction::Bne { offset, .. } => assert_eq!(offset, -2),
            ref other => panic!("expected bne, got {other}"),
        }
        assert!(p.is_halting());
        assert_eq!(p.label_at(2), Some("loop"));
    }

    #[test]
    fn builder_resolves_forward_branch() {
        let mut b = ProgramBuilder::new();
        let done = b.declare_label("done");
        b.branch_if_equal(g(1), g(1), done);
        b.push(Instruction::Nop);
        b.push(Instruction::Nop);
        b.place_label(done);
        b.push(Instruction::Halt);
        let p = b.finish().unwrap();
        match p.instructions()[0] {
            Instruction::Beq { offset, .. } => assert_eq!(offset, 2),
            ref other => panic!("expected beq, got {other}"),
        }
    }

    #[test]
    fn unplaced_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let missing = b.declare_label("missing");
        b.jump(missing);
        assert_eq!(b.finish(), Err(IsaError::UndefinedLabel { name: "missing".into() }));
    }

    #[test]
    fn load_immediate_splits_wide_values() {
        let mut b = ProgramBuilder::new();
        b.load_immediate(g(7), 418_816).unwrap();
        b.load_immediate(g(8), 12).unwrap();
        let p = b.finish().unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.instructions()[0],
            Instruction::ScLi { dst: g(7), imm: (418_816 & 0xFFFF) as u16 }
        );
        assert_eq!(
            p.instructions()[1],
            Instruction::ScLui { dst: g(7), imm: (418_816 >> 16) as u16 }
        );
        assert_eq!(p.instructions()[2], Instruction::ScLi { dst: g(8), imm: 12 });
    }

    #[test]
    fn out_of_body_branch_fails_validation() {
        let p = Program::from_instructions(vec![Instruction::Jmp { offset: 5 }]);
        assert!(matches!(p.validate(), Err(IsaError::BranchOutOfRange { .. })));
        let ok = Program::from_instructions(vec![Instruction::Jmp { offset: -1 }]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn class_histogram_counts_units() {
        let p = Program::from_instructions(vec![
            Instruction::Nop,
            Instruction::CimMvm { input: g(1), rows: g(2), output: g(3), mg: 0 },
            Instruction::CimLoad { weights: g(1), rows: g(2), mg: 0 },
            Instruction::Halt,
        ]);
        let h = p.class_histogram();
        assert_eq!(h[&OpcodeClass::Cim], 2);
        assert_eq!(h[&OpcodeClass::Control], 2);
    }

    #[test]
    fn program_iteration_and_collection() {
        let p: Program = vec![Instruction::Nop, Instruction::Halt].into_iter().collect();
        assert_eq!(p.iter().count(), 2);
        let mut q = Program::new();
        q.extend(p.clone());
        assert_eq!(q.len(), 2);
        let owned: Vec<Instruction> = p.into_iter().collect();
        assert_eq!(owned.len(), 2);
    }

    #[test]
    fn display_includes_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label("entry");
        b.push(Instruction::Nop);
        b.jump(top);
        b.push(Instruction::Halt);
        let text = b.finish().unwrap().to_string();
        assert!(text.contains("entry:"));
        assert!(text.contains("nop"));
    }
}
