//! # cimflow
//!
//! The integrated CIMFlow framework: an out-of-the-box workflow for
//! implementing and evaluating DNN workloads on digital compute-in-memory
//! (CIM) architectures, reproducing the system presented in
//! *"CIMFlow: An Integrated Framework for Systematic Design and Evaluation
//! of Digital CIM Architectures"* (DAC 2025).
//!
//! This crate ties the individual components together:
//!
//! * [`cimflow_nn`] — DNN workload description and the benchmark model zoo,
//! * [`cimflow_arch`] — the hierarchical hardware abstraction (Table I),
//! * [`cimflow_isa`] — the unified 32-bit instruction set,
//! * [`cimflow_compiler`] — CG-level (DP partitioning, duplication) and
//!   OP-level (im2col, tiling) optimization plus code generation,
//! * [`cimflow_sim`] — the cycle-level multi-core simulator,
//! * [`cimflow_energy`] / [`cimflow_noc`] — energy and interconnect models,
//! * [`cimflow_obs`] — dependency-free metrics and span tracing shared by
//!   the service, explorer, compiler and simulator.
//!
//! The [`CimFlow`] workflow object exposes the `model + architecture +
//! strategy → compile → simulate → report` pipeline of Fig. 2, and the
//! [`dse`] module provides the architectural sweep helpers used to
//! regenerate the paper's Figs. 6 and 7. The sweep helpers run on the
//! [`cimflow_dse`] batch engine (re-exported as [`dse_engine`]), which
//! adds declarative sweep grids, a parallel executor, evaluation caching
//! and Pareto analysis for larger explorations. For long-running,
//! multi-client workloads the engine's service core — [`EvalService`],
//! [`EvalRequest`], [`JobHandle`] (re-exported here, served over the
//! wire by the `cimflow-serve` crate and the `cimflow-dse serve`
//! subcommand) — adds non-blocking submission, admission control and
//! per-tenant quotas on one shared worker pool and cache.
//!
//! # Quick start
//!
//! ```
//! use cimflow::{CimFlow, Strategy};
//! use cimflow::models;
//!
//! # fn main() -> Result<(), cimflow::CimFlowError> {
//! let flow = CimFlow::with_default_arch();
//! let evaluation = flow.evaluate(&models::mobilenet_v2(32), Strategy::DpOptimized)?;
//! println!("{}", evaluation.simulation);
//! assert!(evaluation.simulation.throughput_tops() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dse;
mod error;
mod workflow;

pub use error::CimFlowError;
pub use workflow::{CimFlow, Evaluation};

// Re-export the component crates so that downstream users need a single
// dependency.
pub use cimflow_arch::{
    self as arch, ArchConfig, InterChipConfig, InterChipTopology, SystemConfig,
};
pub use cimflow_compiler::{
    self as compiler, CompileOptions, CompiledProgram, SearchMode, Strategy, SystemPlan,
    SystemSearch,
};
pub use cimflow_dse as dse_engine;
// The service-oriented evaluation API (async job handles, admission
// control, per-tenant quotas) — the core the blocking surfaces run on —
// plus the adaptive Pareto-guided exploration engine.
pub use cimflow_dse::{
    evaluate_traced, explore, explore_journaled, BatchHandle, EvalPath, EvalRequest, EvalService,
    ExploreAlgorithm, ExploreReport, ExploreSpec, JobEvent, JobHandle, JobStatus, Priority,
    Rejected, ServiceConfig, ServiceStats, ServingSummary, SweepJournal, TraceStore, TrafficSpec,
};
pub use cimflow_energy::{self as energy, EnergyBreakdown};
pub use cimflow_isa as isa;
pub use cimflow_nn::models;
pub use cimflow_nn::{self as nn, Model};
pub use cimflow_noc as noc;
// Observability: a metrics registry and a span tracer shared by the
// service, explorer, compiler and (via `SimOptions::profile`) the
// simulator's cycle-domain timelines.
pub use cimflow_obs::{self as obs, MetricsRegistry, Tracer};
pub use cimflow_sim::{self as sim, ReplayEngine, ServeModel, ServingReport, SimReport, SimTrace};
// Online inference traffic: deterministic workload generation feeding
// the simulator's serving mode and the DSE layer's SLO objectives.
pub use cimflow_traffic::{self as traffic, ArrivalSpec, WorkloadSpec};
