//! The end-to-end `compile → validate → simulate → report` workflow.

use cimflow_arch::ArchConfig;
use cimflow_compiler::{compile, CompiledProgram, Strategy};
use cimflow_nn::Model;

use crate::CimFlowError;

// The evaluation record (and the underlying compile→simulate primitive)
// lives in `cimflow-dse`, where the batch engine fans it out; the facade
// re-exports it so existing `cimflow::Evaluation` users are unaffected.
pub use cimflow_dse::Evaluation;

/// The CIMFlow workflow object: holds an architecture configuration and
/// runs the full compile-and-simulate pipeline on models.
///
/// # Example
///
/// ```
/// use cimflow::{models, CimFlow, Strategy};
///
/// # fn main() -> Result<(), cimflow::CimFlowError> {
/// let flow = CimFlow::with_default_arch();
/// let compiled = flow.compile(&models::resnet18(32), Strategy::GenericMapping)?;
/// assert!(compiled.report.total_instructions > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CimFlow {
    arch: ArchConfig,
}

impl CimFlow {
    /// Creates a workflow for a validated architecture configuration.
    ///
    /// # Errors
    ///
    /// Returns the architecture validation error if the configuration is
    /// inconsistent.
    pub fn new(arch: ArchConfig) -> Result<Self, CimFlowError> {
        arch.validate()?;
        Ok(CimFlow { arch })
    }

    /// Creates a workflow for the paper's default architecture (Table I).
    pub fn with_default_arch() -> Self {
        CimFlow { arch: ArchConfig::paper_default() }
    }

    /// The architecture this workflow targets.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Compiles a model with the given strategy.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures (invalid model, capacity overflow,
    /// validation failures).
    pub fn compile(
        &self,
        model: &Model,
        strategy: Strategy,
    ) -> Result<CompiledProgram, CimFlowError> {
        Ok(compile(model, &self.arch, strategy)?)
    }

    /// Compiles and simulates a model, producing the full evaluation.
    ///
    /// This is the single-point primitive the `cimflow-dse` batch engine
    /// fans out across sweeps; the facade delegates to it so both paths
    /// share one pipeline.
    ///
    /// # Errors
    ///
    /// Propagates compilation and simulation failures.
    pub fn evaluate(&self, model: &Model, strategy: Strategy) -> Result<Evaluation, CimFlowError> {
        Ok(cimflow_dse::evaluate(&self.arch, model, strategy)?)
    }
}

impl Default for CimFlow {
    fn default() -> Self {
        Self::with_default_arch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn workflow_rejects_invalid_architectures() {
        let mut arch = ArchConfig::paper_default();
        arch.system.chip.core_count = 0;
        assert!(CimFlow::new(arch).is_err());
        assert!(CimFlow::new(ArchConfig::paper_default()).is_ok());
    }

    #[test]
    fn evaluation_reports_speedup_and_energy_ratio() {
        let flow = CimFlow::with_default_arch();
        let model = models::mobilenet_v2(32);
        let generic = flow.evaluate(&model, Strategy::GenericMapping).unwrap();
        let dp = flow.evaluate(&model, Strategy::DpOptimized).unwrap();
        let speedup = dp.speedup_over(&generic);
        assert!(speedup > 1.0, "DP speedup over generic is {speedup}");
        assert!(dp.energy_ratio_over(&generic) > 0.0);
        assert!(dp.mean_duplication >= generic.mean_duplication);
        let text = dp.to_string();
        assert!(text.contains("mobilenetv2"));
        assert!(text.contains("TOPS"));
    }

    #[test]
    fn default_workflow_uses_table_i() {
        let flow = CimFlow::default();
        assert_eq!(flow.arch().chip().core_count, 64);
    }
}
