//! The end-to-end `compile → validate → simulate → report` workflow.

use std::fmt;

use cimflow_arch::ArchConfig;
use cimflow_compiler::{compile, CompileReport, CompiledProgram, Strategy};
use cimflow_nn::Model;
use cimflow_sim::{SimReport, Simulator};

use crate::CimFlowError;

/// The result of evaluating one model on one architecture with one
/// compilation strategy.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Name of the evaluated model.
    pub model: String,
    /// The compilation strategy used.
    pub strategy: Strategy,
    /// The architecture the evaluation ran on.
    pub arch: ArchConfig,
    /// Static compilation statistics.
    pub compilation: CompileReport,
    /// Number of execution stages chosen by the partitioner.
    pub stages: usize,
    /// Mean weight-duplication factor chosen by the mapper.
    pub mean_duplication: f64,
    /// The detailed simulation report.
    pub simulation: SimReport,
}

impl Evaluation {
    /// Normalized-speed helper: the speedup of this evaluation relative to
    /// a baseline evaluation of the same model (Fig. 5's y-axis).
    pub fn speedup_over(&self, baseline: &Evaluation) -> f64 {
        if self.simulation.total_cycles == 0 {
            return 0.0;
        }
        baseline.simulation.total_cycles as f64 / self.simulation.total_cycles as f64
    }

    /// Normalized-energy helper: the energy of this evaluation relative to
    /// a baseline evaluation of the same model (Fig. 5's lower panel).
    pub fn energy_ratio_over(&self, baseline: &Evaluation) -> f64 {
        let base = baseline.simulation.energy.total_pj();
        if base <= 0.0 {
            return 0.0;
        }
        self.simulation.energy.total_pj() / base
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}] — {} stages, mean duplication {:.2}",
            self.model, self.strategy, self.stages, self.mean_duplication
        )?;
        write!(f, "{}", self.simulation)
    }
}

/// The CIMFlow workflow object: holds an architecture configuration and
/// runs the full compile-and-simulate pipeline on models.
///
/// # Example
///
/// ```
/// use cimflow::{models, CimFlow, Strategy};
///
/// # fn main() -> Result<(), cimflow::CimFlowError> {
/// let flow = CimFlow::with_default_arch();
/// let compiled = flow.compile(&models::resnet18(32), Strategy::GenericMapping)?;
/// assert!(compiled.report.total_instructions > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CimFlow {
    arch: ArchConfig,
}

impl CimFlow {
    /// Creates a workflow for a validated architecture configuration.
    ///
    /// # Errors
    ///
    /// Returns the architecture validation error if the configuration is
    /// inconsistent.
    pub fn new(arch: ArchConfig) -> Result<Self, CimFlowError> {
        arch.validate()?;
        Ok(CimFlow { arch })
    }

    /// Creates a workflow for the paper's default architecture (Table I).
    pub fn with_default_arch() -> Self {
        CimFlow { arch: ArchConfig::paper_default() }
    }

    /// The architecture this workflow targets.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Compiles a model with the given strategy.
    ///
    /// # Errors
    ///
    /// Propagates compilation failures (invalid model, capacity overflow,
    /// validation failures).
    pub fn compile(&self, model: &Model, strategy: Strategy) -> Result<CompiledProgram, CimFlowError> {
        Ok(compile(model, &self.arch, strategy)?)
    }

    /// Compiles and simulates a model, producing the full evaluation.
    ///
    /// # Errors
    ///
    /// Propagates compilation and simulation failures.
    pub fn evaluate(&self, model: &Model, strategy: Strategy) -> Result<Evaluation, CimFlowError> {
        let compiled = self.compile(model, strategy)?;
        let simulation = Simulator::new(&compiled).run()?;
        Ok(Evaluation {
            model: model.name.clone(),
            strategy,
            arch: self.arch,
            compilation: compiled.report.clone(),
            stages: compiled.plan.stages.len(),
            mean_duplication: compiled.plan.mean_duplication(),
            simulation,
        })
    }
}

impl Default for CimFlow {
    fn default() -> Self {
        Self::with_default_arch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn workflow_rejects_invalid_architectures() {
        let mut arch = ArchConfig::paper_default();
        arch.chip.core_count = 0;
        assert!(CimFlow::new(arch).is_err());
        assert!(CimFlow::new(ArchConfig::paper_default()).is_ok());
    }

    #[test]
    fn evaluation_reports_speedup_and_energy_ratio() {
        let flow = CimFlow::with_default_arch();
        let model = models::mobilenet_v2(32);
        let generic = flow.evaluate(&model, Strategy::GenericMapping).unwrap();
        let dp = flow.evaluate(&model, Strategy::DpOptimized).unwrap();
        let speedup = dp.speedup_over(&generic);
        assert!(speedup > 1.0, "DP speedup over generic is {speedup}");
        assert!(dp.energy_ratio_over(&generic) > 0.0);
        assert!(dp.mean_duplication >= generic.mean_duplication);
        let text = dp.to_string();
        assert!(text.contains("mobilenetv2"));
        assert!(text.contains("TOPS"));
    }

    #[test]
    fn default_workflow_uses_table_i() {
        let flow = CimFlow::default();
        assert_eq!(flow.arch().chip.core_count, 64);
    }
}
