use std::error::Error;
use std::fmt;

use cimflow_arch::ArchError;
use cimflow_compiler::CompileError;
use cimflow_dse::DseError;
use cimflow_nn::NnError;
use cimflow_sim::SimError;

/// Any error produced by the end-to-end CIMFlow workflow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CimFlowError {
    /// The architecture configuration is invalid.
    Arch(ArchError),
    /// The model description is invalid.
    Model(NnError),
    /// Compilation failed.
    Compile(CompileError),
    /// Simulation failed.
    Simulation(SimError),
    /// A design-space-exploration sweep failed (spec or I/O level;
    /// point-level failures are reported per point, not as this error).
    Dse(DseError),
}

impl fmt::Display for CimFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CimFlowError::Arch(e) => write!(f, "architecture error: {e}"),
            CimFlowError::Model(e) => write!(f, "model error: {e}"),
            CimFlowError::Compile(e) => write!(f, "compilation error: {e}"),
            CimFlowError::Simulation(e) => write!(f, "simulation error: {e}"),
            CimFlowError::Dse(e) => write!(f, "design-space exploration error: {e}"),
        }
    }
}

impl Error for CimFlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CimFlowError::Arch(e) => Some(e),
            CimFlowError::Model(e) => Some(e),
            CimFlowError::Compile(e) => Some(e),
            CimFlowError::Simulation(e) => Some(e),
            CimFlowError::Dse(e) => Some(e),
        }
    }
}

impl From<ArchError> for CimFlowError {
    fn from(value: ArchError) -> Self {
        CimFlowError::Arch(value)
    }
}

impl From<NnError> for CimFlowError {
    fn from(value: NnError) -> Self {
        CimFlowError::Model(value)
    }
}

impl From<CompileError> for CimFlowError {
    fn from(value: CompileError) -> Self {
        CimFlowError::Compile(value)
    }
}

impl From<SimError> for CimFlowError {
    fn from(value: SimError) -> Self {
        CimFlowError::Simulation(value)
    }
}

impl From<DseError> for CimFlowError {
    fn from(value: DseError) -> Self {
        // Point-level pipeline failures map onto the precise workflow
        // variants; engine-level failures keep their own variant.
        match value {
            DseError::Arch(e) => CimFlowError::Arch(e),
            DseError::Compile(e) => CimFlowError::Compile(e),
            DseError::Simulation(e) => CimFlowError::Simulation(e),
            other => CimFlowError::Dse(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CimFlowError = ArchError::invalid("chip.core_count", "must be positive").into();
        assert!(e.to_string().contains("architecture error"));
        assert!(e.source().is_some());
        let e: CimFlowError = CompileError::EmptyWorkload.into();
        assert!(e.to_string().contains("compilation error"));
        let e: CimFlowError = SimError::CycleLimitExceeded { limit: 3 }.into();
        assert!(e.to_string().contains("simulation error"));
        let e: CimFlowError = NnError::InvalidGraph { reason: "cycle".into() }.into();
        assert!(e.to_string().contains("model error"));
    }

    #[test]
    fn dse_errors_map_onto_precise_variants() {
        let arch: CimFlowError =
            DseError::Arch(ArchError::invalid("chip.core_count", "must be positive")).into();
        assert!(matches!(arch, CimFlowError::Arch(_)));
        let compile: CimFlowError = DseError::Compile(CompileError::EmptyWorkload).into();
        assert!(matches!(compile, CimFlowError::Compile(_)));
        let spec: CimFlowError = DseError::spec("no axes").into();
        assert!(matches!(spec, CimFlowError::Dse(_)));
        assert!(spec.to_string().contains("design-space exploration"));
        assert!(spec.source().is_some());
    }
}
