//! Design-space-exploration helpers: the architectural sweeps behind the
//! paper's Figs. 6 and 7.

use cimflow_arch::ArchConfig;
use cimflow_compiler::Strategy;
use cimflow_nn::Model;

use crate::{CimFlow, CimFlowError, Evaluation};

/// One point of an architectural design-space sweep.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Macro-group size (macros per MG) of the configuration.
    pub mg_size: u32,
    /// NoC flit size in bytes of the configuration.
    pub flit_bytes: u32,
    /// The compilation strategy used.
    pub strategy: Strategy,
    /// The full evaluation at this point.
    pub evaluation: Evaluation,
}

impl DsePoint {
    /// Achieved throughput in TOPS (Fig. 6 / Fig. 7 y-axis or x-axis).
    pub fn throughput_tops(&self) -> f64 {
        self.evaluation.simulation.throughput_tops()
    }

    /// Total energy in millijoules (Fig. 6 / Fig. 7 axis).
    pub fn energy_mj(&self) -> f64 {
        self.evaluation.simulation.energy_mj()
    }
}

/// Sweeps macro-group sizes and NoC flit sizes for one model and one
/// compilation strategy, starting from a base architecture.
///
/// This is the experiment behind Fig. 6 (generic mapping) and, combined
/// over two strategies, Fig. 7.
///
/// # Errors
///
/// Fails on the first configuration that cannot be compiled or simulated.
pub fn sweep(
    base: &ArchConfig,
    model: &Model,
    mg_sizes: &[u32],
    flit_sizes: &[u32],
    strategy: Strategy,
) -> Result<Vec<DsePoint>, CimFlowError> {
    let mut points = Vec::with_capacity(mg_sizes.len() * flit_sizes.len());
    for &flit in flit_sizes {
        for &mg in mg_sizes {
            let arch = base.with_macros_per_group(mg).with_flit_bytes(flit);
            let flow = CimFlow::new(arch)?;
            let evaluation = flow.evaluate(model, strategy)?;
            points.push(DsePoint { mg_size: mg, flit_bytes: flit, strategy, evaluation });
        }
    }
    Ok(points)
}

/// Convenience wrapper running [`sweep`] for several strategies (Fig. 7).
///
/// # Errors
///
/// See [`sweep`].
pub fn sweep_strategies(
    base: &ArchConfig,
    model: &Model,
    mg_sizes: &[u32],
    flit_sizes: &[u32],
    strategies: &[Strategy],
) -> Result<Vec<DsePoint>, CimFlowError> {
    let mut points = Vec::new();
    for &strategy in strategies {
        points.extend(sweep(base, model, mg_sizes, flit_sizes, strategy)?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn sweep_produces_one_point_per_configuration() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let points = sweep(&base, &model, &[4, 8], &[8, 16], Strategy::GenericMapping).unwrap();
        assert_eq!(points.len(), 4);
        for point in &points {
            assert!(point.throughput_tops() > 0.0);
            assert!(point.energy_mj() > 0.0);
        }
        // The swept parameters actually differ between points.
        assert!(points.iter().any(|p| p.mg_size == 4) && points.iter().any(|p| p.mg_size == 8));
        assert!(points.iter().any(|p| p.flit_bytes == 16));
    }

    #[test]
    fn strategy_sweep_covers_all_requested_strategies() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let points = sweep_strategies(
            &base,
            &model,
            &[8],
            &[8],
            &[Strategy::GenericMapping, Strategy::DpOptimized],
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        let generic = points.iter().find(|p| p.strategy == Strategy::GenericMapping).unwrap();
        let dp = points.iter().find(|p| p.strategy == Strategy::DpOptimized).unwrap();
        assert!(dp.throughput_tops() >= generic.throughput_tops());
    }
}
