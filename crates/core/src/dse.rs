//! Design-space-exploration helpers: the architectural sweeps behind the
//! paper's Figs. 6 and 7.
//!
//! These helpers are a thin compatibility layer over the
//! [`cimflow_dse`] engine (re-exported as [`crate::dse_engine`]): the
//! grid is expanded into engine jobs and evaluated by the parallel
//! executor, so callers get worker fan-out, per-point error capture and
//! deterministic result ordering for free. New code exploring more than
//! the two classic axes should use [`cimflow_dse::SweepSpec`] directly.

use std::sync::Arc;

use cimflow_arch::ArchConfig;
use cimflow_compiler::Strategy;
use cimflow_dse::{DseError, EvalCache, Executor, Job, ModelSpec, PointSpec};
use cimflow_nn::Model;

use crate::{CimFlowError, Evaluation};

/// One point of an architectural design-space sweep.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Macro-group size (macros per MG) of the configuration.
    pub mg_size: u32,
    /// NoC flit size in bytes of the configuration.
    pub flit_bytes: u32,
    /// The compilation strategy used.
    pub strategy: Strategy,
    /// The full evaluation at this point.
    pub evaluation: Evaluation,
}

impl DsePoint {
    /// Achieved throughput in TOPS (Fig. 6 / Fig. 7 y-axis or x-axis).
    pub fn throughput_tops(&self) -> f64 {
        self.evaluation.simulation.throughput_tops()
    }

    /// Total energy in millijoules (Fig. 6 / Fig. 7 axis).
    pub fn energy_mj(&self) -> f64 {
        self.evaluation.simulation.energy_mj()
    }
}

/// The outcome of one sweep point: the swept parameters plus either the
/// evaluation or the error that stopped this single point.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Macro-group size of the point.
    pub mg_size: u32,
    /// NoC flit size in bytes of the point.
    pub flit_bytes: u32,
    /// The compilation strategy used.
    pub strategy: Strategy,
    /// The evaluation, or the per-point failure.
    pub result: Result<Evaluation, DseError>,
}

/// Builds the engine jobs of one `mg × flit` grid for an explicit model.
fn grid_jobs(
    base: &ArchConfig,
    model: &Arc<Model>,
    mg_sizes: &[u32],
    flit_sizes: &[u32],
    strategy: Strategy,
) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(mg_sizes.len() * flit_sizes.len());
    for &flit in flit_sizes {
        for &mg in mg_sizes {
            let arch = base.with_macros_per_group(mg).with_flit_bytes(flit);
            let spec = PointSpec {
                model: ModelSpec::new(&model.name, 0),
                strategy,
                search: cimflow_compiler::SearchMode::Sequential,
                chip_count: u64::from(base.chip_count()),
                core_count: u64::from(base.chip().core_count),
                local_memory_kib: base.core.local_memory.size_bytes / 1024,
                flit_bytes: u64::from(flit),
                mg_size: u64::from(mg),
                frequency_mhz: u64::from(base.chip().frequency_mhz),
                memory_port: u64::from(base.chip().memory_port),
                offered_qps: 0,
            };
            jobs.push(Job::from_model(spec, arch, Arc::clone(model)));
        }
    }
    jobs
}

/// Sweeps macro-group sizes and NoC flit sizes for one model and one
/// compilation strategy, reporting every point's outcome individually.
///
/// A configuration that cannot be compiled or simulated yields an `Err`
/// **for that point only** — the rest of the sweep still runs (this
/// replaces the historic fail-fast behaviour that discarded a whole sweep
/// on the first invalid configuration). Points are evaluated by the
/// parallel [`cimflow_dse::Executor`] and returned in `flit`-major,
/// `mg`-minor grid order.
pub fn sweep_outcomes(
    base: &ArchConfig,
    model: &Model,
    mg_sizes: &[u32],
    flit_sizes: &[u32],
    strategy: Strategy,
) -> Vec<SweepOutcome> {
    let model = Arc::new(model.clone());
    let jobs = grid_jobs(base, &model, mg_sizes, flit_sizes, strategy);
    Executor::new()
        .run_jobs(jobs, &EvalCache::new())
        .into_iter()
        .map(|outcome| SweepOutcome {
            mg_size: outcome.point.mg_size as u32,
            flit_bytes: outcome.point.flit_bytes as u32,
            strategy: outcome.point.strategy,
            result: outcome.result,
        })
        .collect()
}

/// Sweeps macro-group sizes and NoC flit sizes for one model and one
/// compilation strategy, starting from a base architecture.
///
/// This is the experiment behind Fig. 6 (generic mapping) and, combined
/// over two strategies, Fig. 7. Thin backward-compatible wrapper over
/// [`sweep_outcomes`]: failing points are dropped from the result instead
/// of aborting the sweep.
///
/// # Errors
///
/// Fails only when **every** configuration of the grid fails, returning
/// the first point's error.
pub fn sweep(
    base: &ArchConfig,
    model: &Model,
    mg_sizes: &[u32],
    flit_sizes: &[u32],
    strategy: Strategy,
) -> Result<Vec<DsePoint>, CimFlowError> {
    let outcomes = sweep_outcomes(base, model, mg_sizes, flit_sizes, strategy);
    let total = outcomes.len();
    let mut first_error = None;
    let mut points = Vec::with_capacity(total);
    for outcome in outcomes {
        match outcome.result {
            Ok(evaluation) => points.push(DsePoint {
                mg_size: outcome.mg_size,
                flit_bytes: outcome.flit_bytes,
                strategy: outcome.strategy,
                evaluation,
            }),
            Err(e) => first_error = first_error.or(Some(e)),
        }
    }
    if points.is_empty() && total > 0 {
        if let Some(e) = first_error {
            return Err(e.into());
        }
    }
    Ok(points)
}

/// Convenience wrapper running [`sweep`] for several strategies (Fig. 7).
///
/// # Errors
///
/// See [`sweep`].
pub fn sweep_strategies(
    base: &ArchConfig,
    model: &Model,
    mg_sizes: &[u32],
    flit_sizes: &[u32],
    strategies: &[Strategy],
) -> Result<Vec<DsePoint>, CimFlowError> {
    let mut points = Vec::new();
    for &strategy in strategies {
        points.extend(sweep(base, model, mg_sizes, flit_sizes, strategy)?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn sweep_produces_one_point_per_configuration() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let points = sweep(&base, &model, &[4, 8], &[8, 16], Strategy::GenericMapping).unwrap();
        assert_eq!(points.len(), 4);
        for point in &points {
            assert!(point.throughput_tops() > 0.0);
            assert!(point.energy_mj() > 0.0);
        }
        // The swept parameters actually differ between points.
        assert!(points.iter().any(|p| p.mg_size == 4) && points.iter().any(|p| p.mg_size == 8));
        assert!(points.iter().any(|p| p.flit_bytes == 16));
    }

    #[test]
    fn strategy_sweep_covers_all_requested_strategies() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let points = sweep_strategies(
            &base,
            &model,
            &[8],
            &[8],
            &[Strategy::GenericMapping, Strategy::DpOptimized],
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        let generic = points.iter().find(|p| p.strategy == Strategy::GenericMapping).unwrap();
        let dp = points.iter().find(|p| p.strategy == Strategy::DpOptimized).unwrap();
        assert!(dp.throughput_tops() >= generic.throughput_tops());
    }

    #[test]
    fn one_bad_configuration_no_longer_discards_the_sweep() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        // mg = 0 is invalid; the historic implementation would have
        // returned Err for the whole sweep.
        let outcomes = sweep_outcomes(&base, &model, &[0, 8], &[8], Strategy::GenericMapping);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].result.is_err());
        assert!(outcomes[1].result.is_ok());

        let points = sweep(&base, &model, &[0, 8], &[8], Strategy::GenericMapping).unwrap();
        assert_eq!(points.len(), 1, "the valid point survives");
        assert_eq!(points[0].mg_size, 8);

        // All-failing grids still surface an error.
        assert!(sweep(&base, &model, &[0], &[8], Strategy::GenericMapping).is_err());
    }

    #[test]
    fn outcome_grid_order_is_flit_major() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let outcomes = sweep_outcomes(&base, &model, &[4, 8], &[8, 16], Strategy::GenericMapping);
        let grid: Vec<(u32, u32)> = outcomes.iter().map(|o| (o.flit_bytes, o.mg_size)).collect();
        assert_eq!(grid, vec![(8, 4), (8, 8), (16, 4), (16, 8)]);
    }
}
