//! Open-loop arrival processes.
//!
//! Every generator implements [`ArrivalProcess`]: an infinite stream of
//! inter-arrival gaps measured in ticks. Generators are deterministic
//! functions of their seed, and all of them scale with a single
//! `mean_gap` parameter (ticks per request at the offered rate), so one
//! workload preset sweeps cleanly across an offered-QPS axis: raising
//! QPS compresses the *same* arrival sequence in time without
//! reordering it.

use crate::rng::XorShift;
use crate::workload::TrafficError;

/// An open-loop arrival process: an infinite stream of inter-arrival
/// gaps in ticks.
pub trait ArrivalProcess {
    /// The gap between the previous request and the next one, in ticks
    /// (fractional; the workload expander accumulates and rounds).
    fn next_gap(&mut self) -> f64;
}

/// Memoryless Poisson arrivals: exponential gaps with mean `mean_gap`.
#[derive(Debug, Clone)]
pub struct Poisson {
    mean_gap: f64,
    rng: XorShift,
}

impl Poisson {
    /// Poisson arrivals at one request per `mean_gap` ticks.
    pub fn new(mean_gap: f64, seed: u64) -> Self {
        Poisson { mean_gap, rng: XorShift::new(seed) }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap(&mut self) -> f64 {
        self.rng.exponential() * self.mean_gap
    }
}

/// Two-phase bursty arrivals (MMPP-style): the process alternates
/// between a *burst* phase running `burst`× faster than the base rate
/// and a *calm* phase slowed so the long-run mean rate equals the base
/// rate exactly; each phase lasts `dwell` requests.
#[derive(Debug, Clone)]
pub struct Bursty {
    mean_gap: f64,
    /// Gap multiplier of the current phase (`1/burst` while bursting).
    phase_scale: f64,
    burst_scale: f64,
    calm_scale: f64,
    dwell: u64,
    remaining: u64,
    rng: XorShift,
}

impl Bursty {
    /// Bursty arrivals with base mean gap `mean_gap`, burst intensity
    /// `burst` (> 1) and `dwell` requests per phase (≥ 1).
    pub fn new(mean_gap: f64, burst: f64, dwell: u64, seed: u64) -> Self {
        let burst = burst.max(1.0);
        let dwell = dwell.max(1);
        // Calm-phase gaps are stretched so that one full burst+calm
        // cycle averages to exactly `mean_gap` per request:
        //   (1/burst + calm) / 2 = 1  =>  calm = 2 - 1/burst.
        let burst_scale = 1.0 / burst;
        let calm_scale = 2.0 - burst_scale;
        Bursty {
            mean_gap,
            phase_scale: burst_scale,
            burst_scale,
            calm_scale,
            dwell,
            remaining: dwell,
            rng: XorShift::new(seed),
        }
    }
}

impl ArrivalProcess for Bursty {
    fn next_gap(&mut self) -> f64 {
        if self.remaining == 0 {
            self.phase_scale = if self.phase_scale == self.burst_scale {
                self.calm_scale
            } else {
                self.burst_scale
            };
            self.remaining = self.dwell;
        }
        self.remaining -= 1;
        self.rng.exponential() * self.mean_gap * self.phase_scale
    }
}

/// Diurnal arrivals: a Poisson process whose instantaneous rate is
/// modulated sinusoidally over time — `rate(t) = base · (1 + amplitude
/// · sin(2πt / period))` with the period expressed in mean gaps, so the
/// day/night shape is invariant across the offered-QPS axis.
#[derive(Debug, Clone)]
pub struct Diurnal {
    mean_gap: f64,
    amplitude: f64,
    period: f64,
    elapsed: f64,
    rng: XorShift,
}

impl Diurnal {
    /// Diurnal arrivals with base mean gap `mean_gap`, modulation depth
    /// `amplitude` (clamped to `[0, 0.95]`) and a period of
    /// `period_gaps` mean gaps.
    pub fn new(mean_gap: f64, amplitude: f64, period_gaps: f64, seed: u64) -> Self {
        Diurnal {
            mean_gap,
            amplitude: amplitude.clamp(0.0, 0.95),
            period: period_gaps.max(1.0) * mean_gap,
            elapsed: 0.0,
            rng: XorShift::new(seed),
        }
    }
}

impl ArrivalProcess for Diurnal {
    fn next_gap(&mut self) -> f64 {
        let phase = (self.elapsed / self.period) * std::f64::consts::TAU;
        let modulation = 1.0 + self.amplitude * phase.sin();
        let gap = self.rng.exponential() * self.mean_gap / modulation;
        self.elapsed += gap;
        gap
    }
}

/// A recorded arrival trace: relative inter-arrival gaps normalized to
/// mean 1.0, so replay at any offered QPS preserves the recorded shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    gaps: Vec<f64>,
}

impl ArrivalTrace {
    /// Builds a trace from raw gaps (any time unit; normalized to mean
    /// 1.0 internally).
    ///
    /// # Errors
    ///
    /// [`TrafficError::EmptyTrace`] when no positive gap survives.
    pub fn from_gaps(raw: &[f64]) -> Result<Self, TrafficError> {
        let gaps: Vec<f64> = raw.iter().copied().filter(|g| g.is_finite() && *g >= 0.0).collect();
        let sum: f64 = gaps.iter().sum();
        if gaps.is_empty() || sum <= 0.0 {
            return Err(TrafficError::EmptyTrace);
        }
        let mean = sum / gaps.len() as f64;
        Ok(ArrivalTrace { gaps: gaps.iter().map(|g| g / mean).collect() })
    }

    /// Parses a JSONL arrival trace: one object per line carrying either
    /// a relative gap (`{"gap_us": 120.5}`) or an absolute timestamp
    /// (`{"t_us": 1042.0}`, differenced in file order). Blank lines are
    /// skipped; mixing the two forms is an error.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Trace`] on malformed lines,
    /// [`TrafficError::EmptyTrace`] when nothing usable remains.
    pub fn from_jsonl(text: &str) -> Result<Self, TrafficError> {
        let mut gaps = Vec::new();
        let mut timestamps = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| TrafficError::trace(format!("line {}: {e}", number + 1)))?;
            let map = value.as_map().ok_or_else(|| {
                TrafficError::trace(format!("line {}: not an object", number + 1))
            })?;
            let number_field = |name: &str| {
                use serde::Deserialize;
                map.iter().find(|(k, _)| k == name).and_then(|(_, v)| f64::deserialize(v).ok())
            };
            match (number_field("gap_us"), number_field("t_us")) {
                (Some(gap), None) => gaps.push(gap),
                (None, Some(t)) => timestamps.push(t),
                _ => {
                    return Err(TrafficError::trace(format!(
                        "line {}: expected exactly one of \"gap_us\" or \"t_us\"",
                        number + 1
                    )))
                }
            }
        }
        if !gaps.is_empty() && !timestamps.is_empty() {
            return Err(TrafficError::trace("trace mixes \"gap_us\" and \"t_us\" lines"));
        }
        if !timestamps.is_empty() {
            let mut previous = 0.0;
            for t in timestamps {
                gaps.push((t - previous).max(0.0));
                previous = t;
            }
        }
        Self::from_gaps(&gaps)
    }

    /// Reads a JSONL arrival trace from `path`.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Trace`] when the file cannot be read or parsed.
    pub fn from_path(path: &std::path::Path) -> Result<Self, TrafficError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TrafficError::trace(format!("{}: {e}", path.display())))?;
        Self::from_jsonl(&text)
    }

    /// Number of recorded gaps.
    pub fn len(&self) -> usize {
        self.gaps.len()
    }

    /// Whether the trace holds no gaps (never true for a constructed
    /// trace — constructors reject empty input).
    pub fn is_empty(&self) -> bool {
        self.gaps.is_empty()
    }
}

/// Replays a recorded [`ArrivalTrace`] at an offered rate, cycling when
/// the request horizon outruns the recording.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: ArrivalTrace,
    mean_gap: f64,
    cursor: usize,
}

impl TraceReplay {
    /// Replays `trace` at one request per `mean_gap` ticks on average.
    pub fn new(trace: ArrivalTrace, mean_gap: f64) -> Self {
        TraceReplay { trace, mean_gap, cursor: 0 }
    }
}

impl ArrivalProcess for TraceReplay {
    fn next_gap(&mut self) -> f64 {
        let gap = self.trace.gaps[self.cursor % self.trace.gaps.len()];
        self.cursor += 1;
        gap * self.mean_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap_of(process: &mut dyn ArrivalProcess, n: usize) -> f64 {
        (0..n).map(|_| process.next_gap()).sum::<f64>() / n as f64
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = Poisson::new(1000.0, 1);
        let mean = mean_gap_of(&mut p, 50_000);
        assert!((mean - 1000.0).abs() / 1000.0 < 0.02, "poisson mean gap {mean}");
    }

    #[test]
    fn bursty_preserves_long_run_rate_but_not_smoothness() {
        let mut b = Bursty::new(1000.0, 8.0, 32, 1);
        let mean = mean_gap_of(&mut b, 64_000);
        assert!((mean - 1000.0).abs() / 1000.0 < 0.02, "bursty mean gap {mean}");
        // Burst-phase gaps are 8x shorter than calm-phase gaps.
        let mut b = Bursty::new(1000.0, 8.0, 4, 1);
        let gaps: Vec<f64> = (0..8).map(|_| b.next_gap()).collect();
        let burst: f64 = gaps[..4].iter().sum();
        let calm: f64 = gaps[4..].iter().sum();
        assert!(calm > burst, "calm phase must be slower: burst={burst} calm={calm}");
    }

    #[test]
    fn diurnal_modulates_and_stays_near_rate() {
        let mut d = Diurnal::new(1000.0, 0.5, 256.0, 1);
        let mean = mean_gap_of(&mut d, 64_000);
        // E[1/(1 + a sin)] = 1/sqrt(1 - a^2): ~15% stretch at a = 0.5.
        assert!((mean - 1000.0).abs() / 1000.0 < 0.25, "diurnal mean gap {mean}");
    }

    #[test]
    fn generators_scale_linearly_with_mean_gap() {
        // Same seed, different rate: the gap *sequence* is identical up
        // to the scale factor — the property the QPS axis relies on.
        let mut slow = Poisson::new(2000.0, 9);
        let mut fast = Poisson::new(500.0, 9);
        for _ in 0..100 {
            let s = slow.next_gap();
            let f = fast.next_gap();
            assert!((s / f - 4.0).abs() < 1e-9, "gaps must scale: {s} vs {f}");
        }
    }

    #[test]
    fn jsonl_traces_parse_gaps_and_timestamps() {
        let by_gap = ArrivalTrace::from_jsonl("{\"gap_us\": 10}\n{\"gap_us\": 30}\n").unwrap();
        assert_eq!(by_gap.len(), 2);
        let by_time =
            ArrivalTrace::from_jsonl("{\"t_us\": 10.0}\n\n{\"t_us\": 40.0}\n{\"t_us\": 45.0}\n")
                .unwrap();
        assert_eq!(by_time.len(), 3);
        // Replay at mean gap 100: normalized shape, mean preserved.
        let mut replay = TraceReplay::new(by_gap, 100.0);
        let a = replay.next_gap();
        let b = replay.next_gap();
        assert!((a - 50.0).abs() < 1e-9 && (b - 150.0).abs() < 1e-9, "{a} {b}");
        let c = replay.next_gap();
        assert!((c - 50.0).abs() < 1e-9, "replay cycles: {c}");
    }

    #[test]
    fn jsonl_traces_reject_garbage() {
        assert!(ArrivalTrace::from_jsonl("").is_err());
        assert!(ArrivalTrace::from_jsonl("not json\n").is_err());
        assert!(ArrivalTrace::from_jsonl("{\"gap_us\": 1}\n{\"t_us\": 2}\n").is_err());
        assert!(ArrivalTrace::from_jsonl("{\"neither\": 1}\n").is_err());
    }
}
