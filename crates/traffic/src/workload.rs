//! Serializable workload specification and its expansion into a
//! concrete request stream.
//!
//! A [`WorkloadSpec`] is the *preset*: arrival shape, seed, request
//! horizon, batching knobs and the per-model traffic mix. It is
//! deliberately rate-free — the offered QPS is supplied at expansion
//! time (it is a sweep axis in the DSE layer), and every arrival shape
//! scales with it, so one preset describes a whole load curve.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

use crate::arrival::{ArrivalProcess, ArrivalTrace, Bursty, Diurnal, Poisson, TraceReplay};
use crate::rng::XorShift;

/// Default workload seed (the DSE explorer convention: any fixed,
/// documented value; determinism matters, the digits do not).
pub const DEFAULT_SEED: u64 = 0x7AFF_1C5E;

/// A traffic-layer error: an invalid specification or an unusable
/// arrival trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficError {
    /// The workload specification is invalid (zero rate, bad mix, …).
    Spec(String),
    /// An arrival trace file could not be read or parsed.
    Trace(String),
    /// An arrival trace contained no usable gaps.
    EmptyTrace,
}

impl TrafficError {
    /// A specification error with `message`.
    pub fn spec(message: impl Into<String>) -> Self {
        TrafficError::Spec(message.into())
    }

    /// A trace error with `message`.
    pub fn trace(message: impl Into<String>) -> Self {
        TrafficError::Trace(message.into())
    }
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::Spec(m) => write!(f, "invalid workload spec: {m}"),
            TrafficError::Trace(m) => write!(f, "arrival trace: {m}"),
            TrafficError::EmptyTrace => write!(f, "arrival trace holds no usable gaps"),
        }
    }
}

impl std::error::Error for TrafficError {}

/// One inference request of the open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Stream-order identifier (0-based).
    pub id: u64,
    /// Index of the model this request targets.
    pub model: usize,
    /// Arrival time in ticks.
    pub arrival: u64,
}

/// The arrival-shape part of a workload preset.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless Poisson arrivals.
    Poisson,
    /// Two-phase bursty arrivals (MMPP-style).
    Bursty {
        /// Burst-phase rate multiplier (> 1).
        burst: f64,
        /// Requests per phase.
        dwell: u64,
    },
    /// Sinusoidally rate-modulated Poisson arrivals.
    Diurnal {
        /// Modulation depth in `[0, 0.95]`.
        amplitude: f64,
        /// Period in units of mean inter-arrival gaps.
        period_gaps: f64,
    },
    /// Replay of a recorded JSONL arrival trace.
    Trace {
        /// Path of the JSONL file (`{"gap_us": …}` or `{"t_us": …}`
        /// lines).
        path: String,
    },
}

impl ArrivalSpec {
    /// Short name of the shape (`poisson`, `bursty`, `diurnal`,
    /// `trace`).
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalSpec::Poisson => "poisson",
            ArrivalSpec::Bursty { .. } => "bursty",
            ArrivalSpec::Diurnal { .. } => "diurnal",
            ArrivalSpec::Trace { .. } => "trace",
        }
    }
}

impl Serialize for ArrivalSpec {
    fn serialize(&self) -> Content {
        let mut map = vec![("kind".to_owned(), Content::Str(self.kind().to_owned()))];
        match self {
            ArrivalSpec::Poisson => {}
            ArrivalSpec::Bursty { burst, dwell } => {
                map.push(("burst".to_owned(), Content::F64(*burst)));
                map.push(("dwell".to_owned(), Content::U64(*dwell)));
            }
            ArrivalSpec::Diurnal { amplitude, period_gaps } => {
                map.push(("amplitude".to_owned(), Content::F64(*amplitude)));
                map.push(("period_gaps".to_owned(), Content::F64(*period_gaps)));
            }
            ArrivalSpec::Trace { path } => {
                map.push(("path".to_owned(), Content::Str(path.clone())));
            }
        }
        Content::Map(map)
    }
}

impl Deserialize for ArrivalSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        // A bare string is accepted as shorthand for a parameterless
        // shape: `"arrival": "poisson"`.
        if let Some(kind) = content.as_str() {
            return match kind {
                "poisson" => Ok(ArrivalSpec::Poisson),
                "bursty" => Ok(ArrivalSpec::Bursty { burst: 4.0, dwell: 16 }),
                "diurnal" => Ok(ArrivalSpec::Diurnal { amplitude: 0.5, period_gaps: 256.0 }),
                other => Err(serde::Error::new(format!("unknown arrival kind `{other}`"))),
            };
        }
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::new("arrival spec must be a string or a map"))?;
        let kind = map
            .iter()
            .find(|(k, _)| k == "kind")
            .and_then(|(_, v)| v.as_str())
            .ok_or_else(|| serde::Error::new("arrival spec needs a string `kind` field"))?;
        match kind {
            "poisson" => Ok(ArrivalSpec::Poisson),
            "bursty" => Ok(ArrivalSpec::Bursty {
                burst: field_or(map, "burst", 4.0)?,
                dwell: field_or(map, "dwell", 16)?,
            }),
            "diurnal" => Ok(ArrivalSpec::Diurnal {
                amplitude: field_or(map, "amplitude", 0.5)?,
                period_gaps: field_or(map, "period_gaps", 256.0)?,
            }),
            "trace" => {
                let path: Option<String> = opt(map, "path")?;
                let path = path.ok_or_else(|| serde::Error::new("trace arrivals need a `path`"))?;
                Ok(ArrivalSpec::Trace { path })
            }
            other => Err(serde::Error::new(format!("unknown arrival kind `{other}`"))),
        }
    }
}

/// The field named `name`, if present.
fn opt<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<Option<T>, serde::Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v).map(Some),
        None => Ok(None),
    }
}

/// The field named `name`, or `default` when absent.
fn field_or<T: Deserialize>(
    map: &[(String, Content)],
    name: &str,
    default: T,
) -> Result<T, serde::Error> {
    Ok(opt(map, name)?.unwrap_or(default))
}

/// A rate-free workload preset: arrival shape, seed, horizon, batching
/// knobs and the per-model traffic mix.
///
/// Every field has a default, so `{}` is a valid preset (Poisson
/// arrivals, 256 requests, batches of up to 8, greedy dispatch).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Arrival shape.
    pub arrival: ArrivalSpec,
    /// PRNG seed: one seed, one request stream.
    pub seed: u64,
    /// Number of requests in the stream (the simulated horizon).
    pub requests: u64,
    /// Largest batch the dynamic batcher dispatches.
    pub max_batch: u64,
    /// Longest time the batcher holds an incomplete batch while the
    /// system is otherwise idle, in microseconds (0 = dispatch
    /// greedily).
    pub max_queue_delay_us: u64,
    /// Per-model traffic weights; empty = uniform across the co-located
    /// models.
    pub mix: Vec<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            arrival: ArrivalSpec::Poisson,
            seed: DEFAULT_SEED,
            requests: 256,
            max_batch: 8,
            max_queue_delay_us: 0,
            mix: Vec::new(),
        }
    }
}

impl Serialize for WorkloadSpec {
    fn serialize(&self) -> Content {
        Content::Map(vec![
            ("arrival".to_owned(), self.arrival.serialize()),
            ("seed".to_owned(), Content::U64(self.seed)),
            ("requests".to_owned(), Content::U64(self.requests)),
            ("max_batch".to_owned(), Content::U64(self.max_batch)),
            ("max_queue_delay_us".to_owned(), Content::U64(self.max_queue_delay_us)),
            ("mix".to_owned(), Content::Seq(self.mix.iter().map(|w| Content::F64(*w)).collect())),
        ])
    }
}

impl Deserialize for WorkloadSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("workload spec must be a map"))?;
        let defaults = WorkloadSpec::default();
        Ok(WorkloadSpec {
            arrival: opt(map, "arrival")?.unwrap_or(defaults.arrival),
            seed: field_or(map, "seed", defaults.seed)?,
            requests: field_or(map, "requests", defaults.requests)?,
            max_batch: field_or(map, "max_batch", defaults.max_batch)?,
            max_queue_delay_us: field_or(map, "max_queue_delay_us", defaults.max_queue_delay_us)?,
            mix: opt(map, "mix")?.unwrap_or_default(),
        })
    }
}

impl WorkloadSpec {
    /// Validates the preset against a co-location width of `models`.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Spec`] naming the offending field.
    pub fn validate(&self, models: usize) -> Result<(), TrafficError> {
        if models == 0 {
            return Err(TrafficError::spec("at least one model must be served"));
        }
        if self.requests == 0 {
            return Err(TrafficError::spec("request horizon must be positive"));
        }
        if self.max_batch == 0 {
            return Err(TrafficError::spec("max_batch must be positive"));
        }
        if !self.mix.is_empty() {
            if self.mix.len() != models {
                return Err(TrafficError::spec(format!(
                    "mix has {} weights for {} models",
                    self.mix.len(),
                    models
                )));
            }
            if self.mix.iter().any(|w| !w.is_finite() || *w < 0.0)
                || self.mix.iter().sum::<f64>() <= 0.0
            {
                return Err(TrafficError::spec(
                    "mix weights must be non-negative with a positive sum",
                ));
            }
        }
        if let ArrivalSpec::Bursty { burst, dwell } = &self.arrival {
            if !burst.is_finite() || *burst < 1.0 {
                return Err(TrafficError::spec("burst intensity must be >= 1"));
            }
            if *dwell == 0 {
                return Err(TrafficError::spec("burst dwell must be positive"));
            }
        }
        Ok(())
    }

    /// The arrival process of this preset at one request per `mean_gap`
    /// ticks.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Trace`] when a trace file cannot be loaded.
    pub fn process(&self, mean_gap: f64) -> Result<Box<dyn ArrivalProcess>, TrafficError> {
        Ok(match &self.arrival {
            ArrivalSpec::Poisson => Box::new(Poisson::new(mean_gap, self.seed)),
            ArrivalSpec::Bursty { burst, dwell } => {
                Box::new(Bursty::new(mean_gap, *burst, *dwell, self.seed))
            }
            ArrivalSpec::Diurnal { amplitude, period_gaps } => {
                Box::new(Diurnal::new(mean_gap, *amplitude, *period_gaps, self.seed))
            }
            ArrivalSpec::Trace { path } => {
                let trace = ArrivalTrace::from_path(std::path::Path::new(path))?;
                Box::new(TraceReplay::new(trace, mean_gap))
            }
        })
    }

    /// Expands the preset into a concrete sorted request stream.
    ///
    /// `models` is the co-location width (model indices are assigned by
    /// the mix), `offered_qps` the open-loop rate and
    /// `ticks_per_second` the tick resolution (the simulator passes its
    /// clock rate, so a tick is a cycle).
    ///
    /// Determinism: one `(preset, models, qps, ticks_per_second)`
    /// tuple, one stream. Across the QPS axis the *sequence* of
    /// requests (order, model assignment, relative shape) is invariant
    /// — only the time scale changes.
    ///
    /// # Errors
    ///
    /// [`TrafficError::Spec`] for invalid presets/rates,
    /// [`TrafficError::Trace`] for unusable trace files.
    pub fn generate(
        &self,
        models: usize,
        offered_qps: u64,
        ticks_per_second: u64,
    ) -> Result<Vec<Request>, TrafficError> {
        self.validate(models)?;
        if offered_qps == 0 {
            return Err(TrafficError::spec("offered QPS must be positive"));
        }
        if ticks_per_second == 0 {
            return Err(TrafficError::spec("tick rate must be positive"));
        }
        let mean_gap = ticks_per_second as f64 / offered_qps as f64;
        let mut process = self.process(mean_gap)?;
        // Model assignment draws from its own stream so the assignment
        // sequence is independent of the arrival shape.
        let mut mix_rng = XorShift::new(self.seed ^ 0xA11C_0C8E_D15C_0DE5);
        let weights: Vec<f64> =
            if self.mix.is_empty() { vec![1.0; models] } else { self.mix.clone() };
        let total: f64 = weights.iter().sum();
        let mut clock = 0.0f64;
        let mut requests = Vec::with_capacity(self.requests as usize);
        for id in 0..self.requests {
            clock += process.next_gap();
            let mut pick = mix_rng.unit() * total;
            let mut model = 0;
            for (index, weight) in weights.iter().enumerate() {
                pick -= weight;
                if pick <= 0.0 {
                    model = index;
                    break;
                }
            }
            requests.push(Request { id, model, arrival: clock.round() as u64 });
        }
        Ok(requests)
    }

    /// The max-queue-delay knob converted to ticks.
    pub fn max_queue_delay_ticks(&self, ticks_per_second: u64) -> u64 {
        (self.max_queue_delay_us as f64 * ticks_per_second as f64 / 1e6).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preset_round_trips_through_json() {
        let spec = WorkloadSpec::default();
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn empty_map_and_shorthand_arrivals_parse() {
        let spec: WorkloadSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec, WorkloadSpec::default());
        let spec: WorkloadSpec =
            serde_json::from_str("{\"arrival\": \"bursty\", \"requests\": 64}").unwrap();
        assert_eq!(spec.requests, 64);
        assert!(matches!(spec.arrival, ArrivalSpec::Bursty { .. }));
        let spec: WorkloadSpec =
            serde_json::from_str("{\"arrival\": {\"kind\": \"diurnal\", \"amplitude\": 0.25}}")
                .unwrap();
        assert!(
            matches!(spec.arrival, ArrivalSpec::Diurnal { amplitude, .. } if amplitude == 0.25)
        );
    }

    #[test]
    fn generation_is_deterministic_and_rate_faithful() {
        let spec = WorkloadSpec { requests: 4096, ..WorkloadSpec::default() };
        let a = spec.generate(2, 1000, 1_000_000_000).unwrap();
        let b = spec.generate(2, 1000, 1_000_000_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        // Mean gap ~ 1e9 / 1000 = 1e6 ticks.
        let makespan = a.last().unwrap().arrival as f64;
        let mean_gap = makespan / a.len() as f64;
        assert!((mean_gap / 1e6 - 1.0).abs() < 0.05, "mean gap {mean_gap}");
        // Uniform mix covers both models.
        let m0 = a.iter().filter(|r| r.model == 0).count();
        assert!(m0 > 1500 && m0 < 2600, "uniform mix skewed: {m0}/4096");
    }

    #[test]
    fn qps_axis_compresses_without_reordering() {
        let spec = WorkloadSpec { requests: 512, ..WorkloadSpec::default() };
        let slow = spec.generate(3, 100, 1_000_000_000).unwrap();
        let fast = spec.generate(3, 400, 1_000_000_000).unwrap();
        for (s, f) in slow.iter().zip(&fast) {
            assert_eq!(s.model, f.model, "model assignment must not depend on rate");
            if f.arrival < 100_000 {
                continue; // rounding noise dominates tiny early arrivals
            }
            let ratio = s.arrival as f64 / f.arrival as f64;
            assert!((ratio - 4.0).abs() < 0.01, "arrivals must compress 4x: {ratio}");
        }
    }

    #[test]
    fn skewed_mix_is_respected() {
        let spec = WorkloadSpec { requests: 4096, mix: vec![3.0, 1.0], ..WorkloadSpec::default() };
        let requests = spec.generate(2, 1000, 1_000_000_000).unwrap();
        let m0 = requests.iter().filter(|r| r.model == 0).count() as f64 / 4096.0;
        assert!((m0 - 0.75).abs() < 0.05, "3:1 mix drifted: {m0}");
    }

    #[test]
    fn invalid_presets_are_rejected() {
        let spec = WorkloadSpec::default();
        assert!(spec.generate(0, 100, 1_000_000).is_err());
        assert!(spec.generate(1, 0, 1_000_000).is_err());
        assert!(WorkloadSpec { requests: 0, ..spec.clone() }.validate(1).is_err());
        assert!(WorkloadSpec { max_batch: 0, ..spec.clone() }.validate(1).is_err());
        assert!(WorkloadSpec { mix: vec![1.0], ..spec.clone() }.validate(2).is_err());
        assert!(WorkloadSpec { mix: vec![0.0, 0.0], ..spec }.validate(2).is_err());
    }
}
