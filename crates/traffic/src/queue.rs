//! The request queue + dynamic batcher at the chip boundary.
//!
//! [`run_queue`] is the deterministic discrete-event core of serving
//! mode: it pushes a sorted open-loop request stream through per-model
//! FIFO queues and a dynamic batcher in front of a single (multi-chip)
//! system, given each model's single-inference latency and pipeline
//! interval in ticks.
//!
//! ## Service model
//!
//! A dispatched batch of `k` requests of model `m` starting at tick `s`
//! issues its inferences down the chip pipeline at the model's
//! steady-state interval `I`: request `j` completes at
//! `s + j·I + L` where `L` is the single-inference latency. The engine
//! can accept the *next batch of the same model* at `s + k·I` (the
//! pipeline stays warm), while switching models forces a pipeline
//! drain — the next batch starts no earlier than the previous batch's
//! last completion. Batching therefore amortizes model-switch drains,
//! which is exactly why the dynamic batcher exists.
//!
//! ## Dispatch policy
//!
//! FIFO within a model; across models the batcher always serves the
//! model whose head request arrived first. A batch dispatches at
//! `max(engine_ready, min(t_full, t_head + max_queue_delay))`: the
//! batcher holds an incomplete batch only while waiting is free or
//! bounded by the delay knob, and never delays once the engine is
//! ready and the window has closed. With `max_queue_delay = 0` the
//! batcher is greedy — an idle system serves a lone request
//! immediately, so its latency is *exactly* `L` ticks.

use crate::workload::Request;

/// Per-model service timing in ticks, taken from the cycle engine's
/// report for the design point being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelTiming {
    /// Single-inference latency (`SimReport::total_cycles`).
    pub latency: u64,
    /// Steady-state pipeline interval
    /// (`SimReport::pipeline_interval_cycles`), clamped to ≥ 1.
    pub interval: u64,
}

/// One served request with its full timing provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Stream-order identifier of the request.
    pub id: u64,
    /// Model index.
    pub model: usize,
    /// Arrival tick.
    pub arrival: u64,
    /// Tick the request's batch dispatched.
    pub dispatched: u64,
    /// Tick the request's inference completed.
    pub completed: u64,
}

impl Completion {
    /// End-to-end latency in ticks (queueing + service).
    pub fn latency(&self) -> u64 {
        self.completed - self.arrival
    }
}

/// One dispatched batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRecord {
    /// Model index.
    pub model: usize,
    /// Dispatch tick.
    pub dispatched: u64,
    /// Requests in the batch.
    pub size: u64,
}

/// The outcome of pushing one request stream through the batcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueOutcome {
    /// Every request's timing, in stream order.
    pub completions: Vec<Completion>,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// `(tick, queued)` sampled at each dispatch (depth *after* the
    /// batch left the queue).
    pub depth_timeline: Vec<(u64, u64)>,
    /// Deepest backlog observed (measured just before each dispatch).
    pub peak_depth: u64,
    /// Tick of the last completion.
    pub makespan: u64,
}

impl QueueOutcome {
    /// Mean batch size (1.0 when nothing was dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.batches.is_empty() {
            return 1.0;
        }
        self.batches.iter().map(|b| b.size).sum::<u64>() as f64 / self.batches.len() as f64
    }
}

/// Runs the queue + dynamic batcher over `requests` (sorted by arrival;
/// each request's `model` indexes `timings`).
///
/// `max_batch` caps batch size (≥ 1), `max_queue_delay` bounds how long
/// an incomplete batch may be held, both in ticks. Deterministic: one
/// input, one outcome.
///
/// # Panics
///
/// When a request's model index is out of range for `timings`, when
/// `max_batch` is 0, or when `requests` is not sorted by arrival —
/// expansion via [`WorkloadSpec::generate`](crate::WorkloadSpec::generate)
/// upholds all three.
pub fn run_queue(
    requests: &[Request],
    timings: &[ModelTiming],
    max_batch: u64,
    max_queue_delay: u64,
) -> QueueOutcome {
    assert!(max_batch > 0, "max_batch must be positive");
    assert!(
        requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
        "requests must be sorted by arrival"
    );
    let max_batch = max_batch as usize;
    // Per-model FIFO queues as index lists into `requests`.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); timings.len()];
    for (index, request) in requests.iter().enumerate() {
        queues[request.model].push(index);
    }
    let arrivals: Vec<u64> = requests.iter().map(|r| r.arrival).collect();
    let arrived_by = |tick: u64| arrivals.partition_point(|a| *a <= tick) as u64;

    let mut cursors = vec![0usize; timings.len()];
    let mut engine_free = 0u64; // next same-model issue slot
    let mut last_drain = 0u64; // last completion of the previous batch
    let mut last_model: Option<usize> = None;
    let mut dispatched_count = 0u64;

    let mut completions = Vec::with_capacity(requests.len());
    let mut batches = Vec::new();
    let mut depth_timeline = Vec::new();
    let mut peak_depth = 0u64;
    let mut makespan = 0u64;

    // FIFO across models: serve the model whose head arrived first.
    while let Some(model) = queues
        .iter()
        .enumerate()
        .filter(|(m, q)| cursors[*m] < q.len())
        .min_by_key(|(m, q)| (requests[q[cursors[*m]]].arrival, *m))
        .map(|(model, _)| model)
    {
        let queue = &queues[model];
        let cursor = cursors[model];
        let head = requests[queue[cursor]].arrival;
        // Switching models drains the pipeline; staying keeps it warm.
        let ready =
            if last_model == Some(model) { engine_free } else { engine_free.max(last_drain) };
        // Waiting helps only until the batch could fill — or until this
        // model's last request has arrived (the stream is open-loop and
        // fully known, so holding past that gains nothing).
        let last_arrival = requests[*queue.last().expect("non-empty queue")].arrival;
        let full_at = queue
            .get(cursor + max_batch - 1)
            .map_or(last_arrival, |index| requests[*index].arrival);
        let window = full_at.min(head.saturating_add(max_queue_delay));
        let dispatch_at = ready.max(window);
        // Everything of this model that has arrived by the dispatch
        // tick joins the batch, up to the cap.
        let size = queue[cursor..]
            .iter()
            .take(max_batch)
            .take_while(|index| requests[**index].arrival <= dispatch_at)
            .count();
        debug_assert!(size >= 1, "the head request always joins its batch");

        let backlog = arrived_by(dispatch_at) - dispatched_count;
        peak_depth = peak_depth.max(backlog);

        let timing = timings[model];
        let interval = timing.interval.max(1);
        for (j, index) in queue[cursor..cursor + size].iter().enumerate() {
            let request = requests[*index];
            let completed = dispatch_at + j as u64 * interval + timing.latency;
            makespan = makespan.max(completed);
            completions.push(Completion {
                id: request.id,
                model,
                arrival: request.arrival,
                dispatched: dispatch_at,
                completed,
            });
        }
        batches.push(BatchRecord { model, dispatched: dispatch_at, size: size as u64 });
        dispatched_count += size as u64;
        depth_timeline.push((dispatch_at, backlog - size as u64));

        engine_free = dispatch_at + size as u64 * interval;
        last_drain = dispatch_at + (size as u64 - 1) * interval + timing.latency;
        last_model = Some(model);
        cursors[model] = cursor + size;
    }
    completions.sort_unstable_by_key(|c| c.id);
    QueueOutcome { completions, batches, depth_timeline, peak_depth, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, model: usize, arrival: u64) -> Request {
        Request { id, model, arrival }
    }

    const TIMING: ModelTiming = ModelTiming { latency: 1000, interval: 100 };

    #[test]
    fn idle_system_serves_at_exactly_single_inference_latency() {
        // Arrivals far apart: every request is a lone greedy batch.
        let requests: Vec<Request> = (0..8).map(|i| request(i, 0, i * 50_000)).collect();
        let outcome = run_queue(&requests, &[TIMING], 8, 0);
        for c in &outcome.completions {
            assert_eq!(c.latency(), TIMING.latency, "idle latency must be exactly L");
            assert_eq!(c.dispatched, c.arrival);
        }
        assert_eq!(outcome.batches.len(), 8);
        assert_eq!(outcome.peak_depth, 1);
    }

    #[test]
    fn backlog_forms_batches_and_pipelines_at_the_interval() {
        // 16 requests at t=0, cap 8: two full batches.
        let requests: Vec<Request> = (0..16).map(|i| request(i, 0, 0)).collect();
        let outcome = run_queue(&requests, &[TIMING], 8, 0);
        assert_eq!(outcome.batches.len(), 2);
        assert_eq!(outcome.batches[0].size, 8);
        assert_eq!(outcome.batches[0].dispatched, 0);
        // Same model back-to-back: the pipe stays warm, next batch at 8I.
        assert_eq!(outcome.batches[1].dispatched, 8 * 100);
        // j-th request of a batch completes at s + j*I + L.
        assert_eq!(outcome.completions[0].completed, 1000);
        assert_eq!(outcome.completions[7].completed, 7 * 100 + 1000);
        assert_eq!(outcome.completions[8].completed, 800 + 1000);
        assert_eq!(outcome.peak_depth, 16);
    }

    #[test]
    fn model_switches_drain_the_pipeline() {
        let slow = ModelTiming { latency: 2000, interval: 250 };
        let requests = vec![request(0, 0, 0), request(1, 1, 0), request(2, 0, 0)];
        let outcome = run_queue(&requests, &[TIMING, slow], 8, 0);
        // Model 0 wins the tie at t=0 and batches its two requests.
        assert_eq!(outcome.batches[0], BatchRecord { model: 0, dispatched: 0, size: 2 });
        // Model 1 must wait for the drain: last completion = 1*I + L.
        assert_eq!(outcome.batches[1], BatchRecord { model: 1, dispatched: 1100, size: 1 });
        assert_eq!(outcome.completions[1].completed, 1100 + 2000);
        assert_eq!(outcome.makespan, 3100);
    }

    #[test]
    fn queue_delay_window_holds_then_closes() {
        let requests = vec![request(0, 0, 0), request(1, 0, 60)];
        // Window 100 ticks, cap 2: the batcher waits for the second
        // request (it arrives inside the window) and dispatches both.
        let held = run_queue(&requests, &[TIMING], 2, 100);
        assert_eq!(held.batches.len(), 1);
        assert_eq!(held.batches[0], BatchRecord { model: 0, dispatched: 60, size: 2 });
        // Window 30 ticks: the window closes first; two lone batches.
        let closed = run_queue(&requests, &[TIMING], 2, 30);
        assert_eq!(closed.batches.len(), 2);
        assert_eq!(closed.batches[0].dispatched, 30);
        // Greedy (window 0): dispatch immediately on arrival.
        let greedy = run_queue(&requests, &[TIMING], 2, 0);
        assert_eq!(greedy.batches[0].dispatched, 0);
    }

    #[test]
    fn fifo_is_preserved_within_and_across_models() {
        let requests = vec![
            request(0, 1, 10),
            request(1, 0, 20),
            request(2, 1, 10_000),
            request(3, 0, 10_010),
        ];
        let outcome = run_queue(&requests, &[TIMING, TIMING], 4, 0);
        // Head-arrival order decides: model 1 first, then model 0.
        assert_eq!(outcome.batches[0].model, 1);
        assert_eq!(outcome.batches[1].model, 0);
        let by_id: Vec<u64> = outcome.completions.iter().map(|c| c.id).collect();
        assert_eq!(by_id, vec![0, 1, 2, 3], "completions are reported in stream order");
        for c in &outcome.completions {
            assert!(c.completed > c.arrival);
        }
    }

    #[test]
    fn saturated_single_model_throughput_approaches_one_per_interval() {
        // Everything arrives at t=0: pure backlog drain.
        let n: u64 = 512;
        let requests: Vec<Request> = (0..n).map(|i| request(i, 0, 0)).collect();
        let outcome = run_queue(&requests, &[TIMING], 8, 0);
        // Makespan = (n-1)*I + L: the pipe never drains between batches.
        assert_eq!(outcome.makespan, (n - 1) * 100 + 1000);
    }
}
