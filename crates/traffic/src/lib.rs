//! Online inference traffic for the CIMFlow serving-mode simulator.
//!
//! The simulator historically scores a design point by *one* inference's
//! cycles and energy; the chips it models would spend their lives
//! serving open-loop request streams. This crate owns everything about
//! those streams that does not require the cycle engine:
//!
//! * **Arrival generators** ([`arrival`]): deterministic open-loop
//!   processes — Poisson, bursty (two-state MMPP), diurnal
//!   (rate-modulated Poisson) and a JSONL trace-file replayer — behind
//!   the [`ArrivalProcess`] trait, driven by the same seeded
//!   xorshift64\*/splitmix64 PRNG the DSE explorer uses ([`rng`]).
//! * **Workload specification** ([`workload`]): a serializable
//!   [`WorkloadSpec`] (arrival shape, seed, request horizon, batching
//!   knobs, per-model mix) that expands into a concrete sorted request
//!   stream for a given offered QPS.
//! * **Queue + dynamic batcher** ([`queue`]): the discrete-event core
//!   that pushes a request stream through per-model FIFO queues and a
//!   dynamic batcher at the chip boundary (max-batch-size and
//!   max-queue-delay knobs), given each model's single-inference
//!   latency and pipeline interval.
//!
//! Everything is expressed in integer **ticks** (the caller decides the
//! tick: the simulator uses clock cycles), so queueing arithmetic is
//! exact — a request served on an idle system completes exactly
//! `latency` ticks after it arrives, bit-consistent with the cycle
//! engine's `SimReport`. All generators are deterministic: one seed,
//! one request stream, one serving outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod queue;
pub mod rng;
pub mod workload;

pub use arrival::{ArrivalProcess, ArrivalTrace, Bursty, Diurnal, Poisson, TraceReplay};
pub use queue::{run_queue, BatchRecord, Completion, ModelTiming, QueueOutcome};
pub use rng::XorShift;
pub use workload::{ArrivalSpec, Request, TrafficError, WorkloadSpec, DEFAULT_SEED};
