//! Deterministic, dependency-free randomness: the same
//! xorshift64\*/splitmix64 pairing the DSE explorer uses, plus the
//! floating-point draws arrival processes need.

/// xorshift64\* seeded through a splitmix64 finalizer.
///
/// The finalizer is a bijective mix, so every seed lands on a distinct,
/// well-scrambled state and adjacent seeds diverge in every bit; the
/// final `| 1` keeps the xorshift state nonzero.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// A generator seeded with `seed` (any value, including 0).
    pub fn new(seed: u64) -> Self {
        let mut mixed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mixed = (mixed ^ (mixed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        mixed = (mixed ^ (mixed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        mixed ^= mixed >> 31;
        XorShift(mixed | 1)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in the half-open interval `(0, 1]` — never zero, so
    /// it is safe under `ln()`.
    pub fn unit(&mut self) -> f64 {
        // 53 mantissa bits; +1 shifts the range from [0, 1) to (0, 1].
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// A unit-rate exponential sample (`-ln(U)` with `U` in `(0, 1]`).
    ///
    /// Scaling this by a mean gap yields exponential inter-arrival times
    /// whose *sequence* is identical across rates for one seed — the
    /// property the monotonicity tests and the offered-QPS sweep axis
    /// rely on (arrivals compress in time, never reorder).
    pub fn exponential(&mut self) -> f64 {
        -self.unit().ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_divergent_across_seeds() {
        let a: Vec<u64> = {
            let mut r = XorShift::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = XorShift::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_draws_stay_in_half_open_interval() {
        let mut r = XorShift::new(7);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!(u > 0.0 && u <= 1.0, "unit draw out of range: {u}");
        }
    }

    #[test]
    fn exponential_mean_is_near_one() {
        let mut r = XorShift::new(1234);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.exponential()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "unit-exponential mean drifted: {mean}");
    }
}
