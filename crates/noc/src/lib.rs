//! # cimflow-noc
//!
//! A 2-D mesh network-on-chip model for the CIMFlow framework — the role
//! Noxim plays in the original paper's methodology (it models "the NoC
//! interconnection costs").
//!
//! The model is a flit-level, XY-routed, virtual-cut-through mesh with
//! per-link contention tracked at packet granularity:
//!
//! * a packet of `bytes` is segmented into flits of the configured size
//!   (the paper's "flit size per cycle" link-bandwidth parameter),
//! * the head flit advances one hop per [`NocConfig::hop_latency`] cycles,
//! * each traversed link is occupied for the packet's serialization time,
//!   so concurrent packets sharing a link queue behind each other,
//! * per-transfer latency, flit-hop counts and per-link occupancy are
//!   accumulated into [`NocStats`] for the energy model and the reports.
//!
//! The chip-level global memory is reached through a configurable memory
//! port node, matching the paper's organization where cores access global
//! memory over the NoC.
//!
//! For multi-chip systems the crate additionally models the chip-to-chip
//! interconnect ([`InterChipFabric`]): a point-to-point or ring fabric of
//! full-duplex links, flit-serialized exactly like the mesh but with a
//! wider flit and a much larger per-hop latency. Both networks implement
//! the [`Interconnect`] trait so the simulator drives them uniformly.
//!
//! # Example
//!
//! ```
//! use cimflow_noc::{Mesh, NocConfig};
//!
//! let mut mesh = Mesh::new(NocConfig::new(4, 4, 8));
//! let outcome = mesh.transfer(0, 15, 64, 0);
//! assert_eq!(outcome.hops, 6);
//! assert!(outcome.arrival > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifier of a mesh node (row-major core index).
pub type NodeId = u32;

/// Configuration of the mesh NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (columns).
    pub width: u32,
    /// Mesh height (rows).
    pub height: u32,
    /// Flit size in bytes (link bandwidth per cycle).
    pub flit_bytes: u32,
    /// Cycles for the head flit to traverse one router + link.
    pub hop_latency: u32,
    /// Node to which the global-memory port is attached.
    pub memory_port: NodeId,
}

impl NocConfig {
    /// Creates a mesh configuration with 1-cycle hops and the memory port
    /// at node 0.
    pub fn new(width: u32, height: u32, flit_bytes: u32) -> Self {
        NocConfig { width, height, flit_bytes, hop_latency: 1, memory_port: 0 }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Returns the `(x, y)` coordinate of a node.
    pub fn coordinates(&self, node: NodeId) -> (u32, u32) {
        (node % self.width.max(1), node / self.width.max(1))
    }

    /// Manhattan distance between two nodes (the XY-routing hop count).
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let (fx, fy) = self.coordinates(from);
        let (tx, ty) = self.coordinates(to);
        fx.abs_diff(tx) + fy.abs_diff(ty)
    }

    /// Number of flits needed to carry `bytes`.
    pub fn flits_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(u64::from(self.flit_bytes.max(1)))
        }
    }
}

/// A directed link between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Upstream router.
    pub from: NodeId,
    /// Downstream router.
    pub to: NodeId,
}

/// Outcome of one packet transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Cycle at which the packet was injected.
    pub departure: u64,
    /// Cycle at which the tail flit arrives at the destination.
    pub arrival: u64,
    /// Number of hops traversed.
    pub hops: u32,
    /// Number of flits transferred.
    pub flits: u64,
    /// Cycles the packet spent waiting for busy links.
    pub contention: u64,
}

impl TransferOutcome {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.arrival - self.departure
    }
}

/// Accumulated NoC statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Packets transferred.
    pub packets: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total flits injected.
    pub flits: u64,
    /// Total flit-hops (flits × hops), the NoC energy proxy.
    pub flit_hops: u64,
    /// Total byte-hops (bytes × hops), the link-energy proxy.
    pub byte_hops: u64,
    /// Sum of packet latencies.
    pub total_latency: u64,
    /// Sum of contention (queueing) cycles.
    pub total_contention: u64,
    /// Largest observed packet latency.
    pub max_latency: u64,
}

impl NocStats {
    /// Mean packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets as f64
        }
    }

    /// Folds another accumulator into this one (used to aggregate the
    /// per-chip meshes of a multi-chip system into one report entry).
    pub fn merge(&mut self, other: &NocStats) {
        self.packets += other.packets;
        self.bytes += other.bytes;
        self.flits += other.flits;
        self.flit_hops += other.flit_hops;
        self.byte_hops += other.byte_hops;
        self.total_latency += other.total_latency;
        self.total_contention += other.total_contention;
        self.max_latency = self.max_latency.max(other.max_latency);
    }
}

/// Walks a packet of `flits` flits (carrying `bytes` payload bytes) over
/// `route`, queueing on busy links and accounting into `stats` — the one
/// contention/serialization model shared by the on-chip [`Mesh`] and the
/// chip-to-chip [`InterChipFabric`], which differ only in how they route.
///
/// An empty route or a zero-flit packet completes immediately without
/// touching the network (the packet is still counted).
fn transfer_over(
    route: &[Link],
    flits: u64,
    bytes: u64,
    hop_latency: u64,
    now: u64,
    link_free: &mut BTreeMap<Link, u64>,
    stats: &mut NocStats,
) -> TransferOutcome {
    if route.is_empty() || flits == 0 {
        let outcome =
            TransferOutcome { departure: now, arrival: now, hops: 0, flits, contention: 0 };
        stats.packets += 1;
        stats.bytes += bytes;
        stats.flits += flits;
        return outcome;
    }
    let hops = route.len() as u32;
    let mut head_time = now;
    let mut contention = 0u64;
    for link in route {
        let free_at = link_free.get(link).copied().unwrap_or(0);
        let start = head_time.max(free_at);
        contention += start - head_time;
        // The link is busy until the tail flit has crossed it.
        link_free.insert(*link, start + flits);
        head_time = start + hop_latency;
    }
    // The tail flit arrives `flits - 1` cycles after the head.
    let arrival = head_time + flits.saturating_sub(1);
    let outcome = TransferOutcome { departure: now, arrival, hops, flits, contention };

    stats.packets += 1;
    stats.bytes += bytes;
    stats.flits += flits;
    stats.flit_hops += flits * u64::from(hops);
    stats.byte_hops += bytes * u64::from(hops);
    stats.total_latency += outcome.latency();
    stats.total_contention += contention;
    stats.max_latency = stats.max_latency.max(outcome.latency());
    outcome
}

/// A packet-switched interconnect: something that can carry one packet
/// from `src` to `dst` with contention, and account the traffic.
///
/// Implemented by the on-chip [`Mesh`] (node = core/router) and the
/// chip-to-chip [`InterChipFabric`] (node = chip), so the simulator
/// drives per-chip meshes and the system-level fabric through one
/// interface.
pub trait Interconnect {
    /// Simulates one packet transfer of `bytes` from `src` to `dst`
    /// injected at cycle `now`, updating link contention and statistics.
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome;

    /// Accumulated statistics.
    fn stats(&self) -> &NocStats;

    /// Clears contention state and statistics.
    fn reset(&mut self);
}

/// The mesh NoC with per-link contention state.
#[derive(Debug, Clone)]
pub struct Mesh {
    config: NocConfig,
    link_free: BTreeMap<Link, u64>,
    stats: NocStats,
}

impl Mesh {
    /// Creates an idle mesh.
    pub fn new(config: NocConfig) -> Self {
        Mesh { config, link_free: BTreeMap::new(), stats: NocStats::default() }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Clears contention state and statistics.
    pub fn reset(&mut self) {
        self.link_free.clear();
        self.stats = NocStats::default();
    }

    /// The XY route from `src` to `dst` as a list of directed links.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<Link> {
        let mut links = Vec::new();
        let (mut x, mut y) = self.config.coordinates(src);
        let (tx, ty) = self.config.coordinates(dst);
        let mut current = src;
        while x != tx {
            let next_x = if x < tx { x + 1 } else { x - 1 };
            let next = y * self.config.width + next_x;
            links.push(Link { from: current, to: next });
            current = next;
            x = next_x;
        }
        while y != ty {
            let next_y = if y < ty { y + 1 } else { y - 1 };
            let next = next_y * self.config.width + x;
            links.push(Link { from: current, to: next });
            current = next;
            y = next_y;
        }
        links
    }

    /// Simulates one packet transfer of `bytes` from `src` to `dst`
    /// injected at cycle `now`, updating link contention and statistics.
    ///
    /// Transfers with `src == dst` (or zero bytes) complete immediately
    /// without touching the network.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        let flits = self.config.flits_for(bytes);
        let route = if src == dst { Vec::new() } else { self.route(src, dst) };
        transfer_over(
            &route,
            flits,
            bytes,
            u64::from(self.config.hop_latency),
            now,
            &mut self.link_free,
            &mut self.stats,
        )
    }

    /// Convenience wrapper for a transfer to the global-memory port.
    pub fn transfer_to_memory(&mut self, src: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        self.transfer(src, self.config.memory_port, bytes, now)
    }

    /// Convenience wrapper for a transfer from the global-memory port.
    pub fn transfer_from_memory(&mut self, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        self.transfer(self.config.memory_port, dst, bytes, now)
    }
}

impl Interconnect for Mesh {
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        Mesh::transfer(self, src, dst, bytes, now)
    }

    fn stats(&self) -> &NocStats {
        Mesh::stats(self)
    }

    fn reset(&mut self) {
        Mesh::reset(self)
    }
}

/// Configuration of the chip-to-chip fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterChipConfig {
    /// Number of chips connected by the fabric.
    pub chips: u32,
    /// Link bandwidth in bytes per core-clock cycle (the inter-chip
    /// "flit" size).
    pub link_bytes: u32,
    /// Head latency of one link traversal in cycles (SerDes plus time of
    /// flight) — the inter-chip analogue of [`NocConfig::hop_latency`].
    pub link_latency: u32,
    /// Whether the chips form a ring (`true`) or a full point-to-point
    /// fabric with a dedicated link per chip pair (`false`).
    pub ring: bool,
}

impl InterChipConfig {
    /// Creates a point-to-point fabric configuration.
    pub fn point_to_point(chips: u32, link_bytes: u32, link_latency: u32) -> Self {
        InterChipConfig { chips, link_bytes, link_latency, ring: false }
    }

    /// Creates a ring fabric configuration.
    pub fn ring(chips: u32, link_bytes: u32, link_latency: u32) -> Self {
        InterChipConfig { chips, link_bytes, link_latency, ring: true }
    }

    /// Number of link-serialization flits needed to carry `bytes`.
    pub fn flits_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(u64::from(self.link_bytes.max(1)))
        }
    }

    /// Hop count from chip `from` to chip `to`.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        if from == to {
            return 0;
        }
        if self.ring {
            let d = from.abs_diff(to);
            d.min(self.chips.max(1) - d)
        } else {
            1
        }
    }
}

/// The chip-to-chip interconnect: full-duplex links between chips with
/// per-link contention, flit-serialized like the mesh.
///
/// Point-to-point fabrics route every packet over the single direct link
/// of the `(src, dst)` pair; ring fabrics walk the shorter ring direction
/// one chip at a time, occupying every traversed link for the packet's
/// serialization time so concurrent packets queue behind each other.
#[derive(Debug, Clone)]
pub struct InterChipFabric {
    config: InterChipConfig,
    link_free: BTreeMap<Link, u64>,
    stats: NocStats,
}

impl InterChipFabric {
    /// Creates an idle fabric.
    pub fn new(config: InterChipConfig) -> Self {
        InterChipFabric { config, link_free: BTreeMap::new(), stats: NocStats::default() }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &InterChipConfig {
        &self.config
    }

    /// The route from chip `src` to chip `dst` as a list of directed
    /// links.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<Link> {
        if src == dst {
            return Vec::new();
        }
        if !self.config.ring {
            return vec![Link { from: src, to: dst }];
        }
        let chips = self.config.chips.max(1);
        let forward = (dst + chips - src) % chips;
        let step_forward = forward <= chips - forward;
        let mut links = Vec::new();
        let mut current = src;
        while current != dst {
            let next =
                if step_forward { (current + 1) % chips } else { (current + chips - 1) % chips };
            links.push(Link { from: current, to: next });
            current = next;
        }
        links
    }
}

impl Interconnect for InterChipFabric {
    fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        let flits = self.config.flits_for(bytes);
        let route = self.route(src, dst);
        transfer_over(
            &route,
            flits,
            bytes,
            u64::from(self.config.link_latency),
            now,
            &mut self.link_free,
            &mut self.stats,
        )
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.link_free.clear();
        self.stats = NocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(NocConfig::new(4, 4, 8))
    }

    #[test]
    fn route_follows_xy_order_and_length() {
        let mesh = mesh4();
        let route = mesh.route(0, 15);
        assert_eq!(route.len(), 6);
        // X first: 0 -> 1 -> 2 -> 3, then Y: 3 -> 7 -> 11 -> 15.
        assert_eq!(route[0], Link { from: 0, to: 1 });
        assert_eq!(route[2], Link { from: 2, to: 3 });
        assert_eq!(route[3], Link { from: 3, to: 7 });
        assert_eq!(route[5], Link { from: 11, to: 15 });
        assert!(mesh.route(5, 5).is_empty());
    }

    #[test]
    fn transfer_latency_combines_hops_and_serialization() {
        let mut mesh = mesh4();
        // 64 bytes = 8 flits over 6 hops: 6 cycles head latency + 7 tail.
        let outcome = mesh.transfer(0, 15, 64, 0);
        assert_eq!(outcome.hops, 6);
        assert_eq!(outcome.flits, 8);
        assert_eq!(outcome.latency(), 6 + 7);
        assert_eq!(outcome.contention, 0);
    }

    #[test]
    fn local_and_empty_transfers_are_free() {
        let mut mesh = mesh4();
        let same = mesh.transfer(3, 3, 1024, 10);
        assert_eq!(same.latency(), 0);
        let empty = mesh.transfer(0, 5, 0, 10);
        assert_eq!(empty.latency(), 0);
        assert_eq!(mesh.stats().flit_hops, 0);
    }

    #[test]
    fn contention_queues_packets_on_shared_links() {
        let mut mesh = mesh4();
        let first = mesh.transfer(0, 3, 256, 0);
        let second = mesh.transfer(0, 3, 256, 0);
        assert!(second.arrival > first.arrival);
        assert!(second.contention > 0);
        // A packet on a disjoint path is unaffected.
        let third = mesh.transfer(12, 15, 256, 0);
        assert_eq!(third.contention, 0);
    }

    #[test]
    fn wider_flits_reduce_serialization_latency() {
        let narrow = Mesh::new(NocConfig::new(4, 4, 8)).transfer(0, 15, 128, 0).latency();
        let wide = Mesh::new(NocConfig::new(4, 4, 16)).transfer(0, 15, 128, 0).latency();
        assert!(wide < narrow);
    }

    #[test]
    fn memory_port_helpers_route_to_the_port() {
        let mut config = NocConfig::new(4, 4, 8);
        config.memory_port = 5;
        let mut mesh = Mesh::new(config);
        let to = mesh.transfer_to_memory(15, 32, 0);
        assert_eq!(to.hops, mesh.config().hops(15, 5));
        let from = mesh.transfer_from_memory(0, 32, 0);
        assert_eq!(from.hops, mesh.config().hops(5, 0));
    }

    #[test]
    fn stats_merge_aggregates_every_field() {
        let mut a = mesh4();
        a.transfer(0, 15, 64, 0);
        let mut b = mesh4();
        b.transfer(0, 3, 256, 0);
        b.transfer(0, 3, 256, 0); // contention on the shared path
        let mut merged = a.stats().clone();
        merged.merge(b.stats());
        assert_eq!(merged.packets, 3);
        assert_eq!(merged.bytes, 64 + 512);
        assert_eq!(merged.flits, a.stats().flits + b.stats().flits);
        assert_eq!(merged.flit_hops, a.stats().flit_hops + b.stats().flit_hops);
        assert_eq!(merged.byte_hops, a.stats().byte_hops + b.stats().byte_hops);
        assert_eq!(merged.total_latency, a.stats().total_latency + b.stats().total_latency);
        assert!(merged.total_contention > 0);
        assert_eq!(merged.max_latency, a.stats().max_latency.max(b.stats().max_latency));
    }

    #[test]
    fn stats_accumulate() {
        let mut mesh = mesh4();
        mesh.transfer(0, 15, 64, 0);
        mesh.transfer(1, 2, 16, 5);
        let stats = mesh.stats();
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.bytes, 80);
        assert!(stats.flit_hops > 0);
        assert!(stats.mean_latency() > 0.0);
        assert!(stats.max_latency >= stats.mean_latency() as u64);
        mesh.reset();
        assert_eq!(mesh.stats().packets, 0);
    }

    #[test]
    fn point_to_point_fabric_is_single_hop() {
        let mut fabric = InterChipFabric::new(InterChipConfig::point_to_point(4, 32, 64));
        let outcome = fabric.transfer(0, 3, 64, 0);
        assert_eq!(outcome.hops, 1);
        assert_eq!(outcome.flits, 2);
        assert_eq!(outcome.latency(), 64 + 1);
        // Distinct pairs use distinct links: no contention.
        let other = fabric.transfer(1, 2, 64, 0);
        assert_eq!(other.contention, 0);
        // The same pair queues on its link.
        let queued = fabric.transfer(0, 3, 64, 0);
        assert!(queued.contention > 0);
    }

    #[test]
    fn ring_fabric_routes_the_short_way_around() {
        let fabric = InterChipFabric::new(InterChipConfig::ring(4, 32, 64));
        assert_eq!(fabric.route(0, 1), vec![Link { from: 0, to: 1 }]);
        assert_eq!(fabric.route(0, 3), vec![Link { from: 0, to: 3 }], "wraps backwards");
        assert_eq!(fabric.route(0, 2).len(), 2);
        assert_eq!(fabric.config().hops(1, 3), 2);
        let mut fabric = fabric;
        let two_hops = fabric.transfer(0, 2, 32, 0);
        assert_eq!(two_hops.hops, 2);
        assert_eq!(two_hops.latency(), 2 * 64);
    }

    #[test]
    fn fabric_local_and_empty_transfers_are_free() {
        let mut fabric = InterChipFabric::new(InterChipConfig::point_to_point(2, 32, 64));
        assert_eq!(fabric.transfer(1, 1, 4096, 5).latency(), 0);
        assert_eq!(fabric.transfer(0, 1, 0, 5).latency(), 0);
        assert_eq!(fabric.stats().flit_hops, 0);
        fabric.reset();
        assert_eq!(fabric.stats().packets, 0);
    }

    #[test]
    fn interconnect_trait_drives_both_networks_uniformly() {
        fn ship(net: &mut dyn Interconnect, src: NodeId, dst: NodeId) -> u64 {
            net.transfer(src, dst, 256, 0).latency()
        }
        let mut mesh = mesh4();
        let mut fabric = InterChipFabric::new(InterChipConfig::point_to_point(4, 32, 64));
        assert!(ship(&mut mesh, 0, 15) > 0);
        assert!(ship(&mut fabric, 0, 3) > 0);
        assert_eq!(Interconnect::stats(&mesh).packets, 1);
        assert_eq!(fabric.stats().packets, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Hop distance is symmetric on the mesh and on both fabric
            /// topologies.
            #[test]
            fn hop_distance_is_symmetric(a in 0u32..16, b in 0u32..16) {
                let mesh = mesh4();
                prop_assert_eq!(mesh.config().hops(a, b), mesh.config().hops(b, a));
                let chips = 8;
                let ring = InterChipConfig::ring(chips, 32, 64);
                let p2p = InterChipConfig::point_to_point(chips, 32, 64);
                let (a, b) = (a % chips, b % chips);
                prop_assert_eq!(ring.hops(a, b), ring.hops(b, a));
                prop_assert_eq!(p2p.hops(a, b), p2p.hops(b, a));
            }

            /// Inter-chip transfer latency is monotone in the payload size.
            #[test]
            fn fabric_latency_monotone_in_bytes(
                src in 0u32..4,
                dst in 0u32..4,
                bytes in 1u64..8192,
                ring in any::<bool>(),
            ) {
                let config = InterChipConfig { chips: 4, link_bytes: 32, link_latency: 64, ring };
                let small = InterChipFabric::new(config).transfer(src, dst, bytes, 0).latency();
                let large = InterChipFabric::new(config).transfer(src, dst, bytes * 2, 0).latency();
                prop_assert!(large >= small);
            }

            /// With a link no wider than the mesh flit and a hop latency
            /// at least the mesh diameter, crossing chips is never faster
            /// than crossing the mesh for the same payload: the off-chip
            /// fabric cannot beat the on-chip network it bridges.
            #[test]
            fn interchip_transfers_cost_at_least_intrachip(
                src in 0u32..16,
                dst in 0u32..16,
                bytes in 1u64..16384,
            ) {
                let mesh_config = NocConfig::new(4, 4, 8);
                let intra = Mesh::new(mesh_config).transfer(src, dst, bytes, 0).latency();
                let fabric_config = InterChipConfig::point_to_point(2, mesh_config.flit_bytes, 64);
                let inter = InterChipFabric::new(fabric_config).transfer(0, 1, bytes, 0).latency();
                prop_assert!(
                    inter >= intra,
                    "inter-chip {} < intra-chip {} for {} bytes", inter, intra, bytes
                );
            }

            /// The route always ends at the destination and has the
            /// Manhattan length.
            #[test]
            fn route_is_connected_and_minimal(src in 0u32..16, dst in 0u32..16) {
                let mesh = mesh4();
                let route = mesh.route(src, dst);
                prop_assert_eq!(route.len() as u32, mesh.config().hops(src, dst));
                let mut current = src;
                for link in &route {
                    prop_assert_eq!(link.from, current);
                    prop_assert_eq!(mesh.config().hops(link.from, link.to), 1);
                    current = link.to;
                }
                prop_assert_eq!(current, dst);
            }

            /// Latency is monotone in the payload size.
            #[test]
            fn latency_monotone_in_bytes(src in 0u32..16, dst in 0u32..16, bytes in 1u64..4096) {
                let small = Mesh::new(NocConfig::new(4, 4, 8)).transfer(src, dst, bytes, 0).latency();
                let large = Mesh::new(NocConfig::new(4, 4, 8)).transfer(src, dst, bytes * 2, 0).latency();
                prop_assert!(large >= small);
            }

            /// Every transfer arrives no earlier than it departs, and
            /// statistics never lose packets.
            #[test]
            fn transfers_are_causal(transfers in prop::collection::vec((0u32..16, 0u32..16, 1u64..2048), 1..50)) {
                let mut mesh = mesh4();
                let mut now = 0u64;
                for (src, dst, bytes) in &transfers {
                    let outcome = mesh.transfer(*src, *dst, *bytes, now);
                    prop_assert!(outcome.arrival >= outcome.departure);
                    now += 3;
                }
                prop_assert_eq!(mesh.stats().packets, transfers.len() as u64);
            }
        }
    }
}
