//! # cimflow-noc
//!
//! A 2-D mesh network-on-chip model for the CIMFlow framework — the role
//! Noxim plays in the original paper's methodology (it models "the NoC
//! interconnection costs").
//!
//! The model is a flit-level, XY-routed, virtual-cut-through mesh with
//! per-link contention tracked at packet granularity:
//!
//! * a packet of `bytes` is segmented into flits of the configured size
//!   (the paper's "flit size per cycle" link-bandwidth parameter),
//! * the head flit advances one hop per [`NocConfig::hop_latency`] cycles,
//! * each traversed link is occupied for the packet's serialization time,
//!   so concurrent packets sharing a link queue behind each other,
//! * per-transfer latency, flit-hop counts and per-link occupancy are
//!   accumulated into [`NocStats`] for the energy model and the reports.
//!
//! The chip-level global memory is reached through a configurable memory
//! port node, matching the paper's organization where cores access global
//! memory over the NoC.
//!
//! # Example
//!
//! ```
//! use cimflow_noc::{Mesh, NocConfig};
//!
//! let mut mesh = Mesh::new(NocConfig::new(4, 4, 8));
//! let outcome = mesh.transfer(0, 15, 64, 0);
//! assert_eq!(outcome.hops, 6);
//! assert!(outcome.arrival > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifier of a mesh node (row-major core index).
pub type NodeId = u32;

/// Configuration of the mesh NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (columns).
    pub width: u32,
    /// Mesh height (rows).
    pub height: u32,
    /// Flit size in bytes (link bandwidth per cycle).
    pub flit_bytes: u32,
    /// Cycles for the head flit to traverse one router + link.
    pub hop_latency: u32,
    /// Node to which the global-memory port is attached.
    pub memory_port: NodeId,
}

impl NocConfig {
    /// Creates a mesh configuration with 1-cycle hops and the memory port
    /// at node 0.
    pub fn new(width: u32, height: u32, flit_bytes: u32) -> Self {
        NocConfig { width, height, flit_bytes, hop_latency: 1, memory_port: 0 }
    }

    /// Number of nodes in the mesh.
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Returns the `(x, y)` coordinate of a node.
    pub fn coordinates(&self, node: NodeId) -> (u32, u32) {
        (node % self.width.max(1), node / self.width.max(1))
    }

    /// Manhattan distance between two nodes (the XY-routing hop count).
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let (fx, fy) = self.coordinates(from);
        let (tx, ty) = self.coordinates(to);
        fx.abs_diff(tx) + fy.abs_diff(ty)
    }

    /// Number of flits needed to carry `bytes`.
    pub fn flits_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(u64::from(self.flit_bytes.max(1)))
        }
    }
}

/// A directed link between two adjacent routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Upstream router.
    pub from: NodeId,
    /// Downstream router.
    pub to: NodeId,
}

/// Outcome of one packet transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Cycle at which the packet was injected.
    pub departure: u64,
    /// Cycle at which the tail flit arrives at the destination.
    pub arrival: u64,
    /// Number of hops traversed.
    pub hops: u32,
    /// Number of flits transferred.
    pub flits: u64,
    /// Cycles the packet spent waiting for busy links.
    pub contention: u64,
}

impl TransferOutcome {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.arrival - self.departure
    }
}

/// Accumulated NoC statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Packets transferred.
    pub packets: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total flits injected.
    pub flits: u64,
    /// Total flit-hops (flits × hops), the NoC energy proxy.
    pub flit_hops: u64,
    /// Total byte-hops (bytes × hops), the link-energy proxy.
    pub byte_hops: u64,
    /// Sum of packet latencies.
    pub total_latency: u64,
    /// Sum of contention (queueing) cycles.
    pub total_contention: u64,
    /// Largest observed packet latency.
    pub max_latency: u64,
}

impl NocStats {
    /// Mean packet latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.packets as f64
        }
    }
}

/// The mesh NoC with per-link contention state.
#[derive(Debug, Clone)]
pub struct Mesh {
    config: NocConfig,
    link_free: BTreeMap<Link, u64>,
    stats: NocStats,
}

impl Mesh {
    /// Creates an idle mesh.
    pub fn new(config: NocConfig) -> Self {
        Mesh { config, link_free: BTreeMap::new(), stats: NocStats::default() }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Clears contention state and statistics.
    pub fn reset(&mut self) {
        self.link_free.clear();
        self.stats = NocStats::default();
    }

    /// The XY route from `src` to `dst` as a list of directed links.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<Link> {
        let mut links = Vec::new();
        let (mut x, mut y) = self.config.coordinates(src);
        let (tx, ty) = self.config.coordinates(dst);
        let mut current = src;
        while x != tx {
            let next_x = if x < tx { x + 1 } else { x - 1 };
            let next = y * self.config.width + next_x;
            links.push(Link { from: current, to: next });
            current = next;
            x = next_x;
        }
        while y != ty {
            let next_y = if y < ty { y + 1 } else { y - 1 };
            let next = next_y * self.config.width + x;
            links.push(Link { from: current, to: next });
            current = next;
            y = next_y;
        }
        links
    }

    /// Simulates one packet transfer of `bytes` from `src` to `dst`
    /// injected at cycle `now`, updating link contention and statistics.
    ///
    /// Transfers with `src == dst` (or zero bytes) complete immediately
    /// without touching the network.
    pub fn transfer(&mut self, src: NodeId, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        let flits = self.config.flits_for(bytes);
        if src == dst || flits == 0 {
            let outcome =
                TransferOutcome { departure: now, arrival: now, hops: 0, flits, contention: 0 };
            self.stats.packets += 1;
            self.stats.bytes += bytes;
            self.stats.flits += flits;
            return outcome;
        }
        let route = self.route(src, dst);
        let hops = route.len() as u32;
        let hop_latency = u64::from(self.config.hop_latency);
        let mut head_time = now;
        let mut contention = 0u64;
        for link in &route {
            let free_at = self.link_free.get(link).copied().unwrap_or(0);
            let start = head_time.max(free_at);
            contention += start - head_time;
            // The link is busy until the tail flit has crossed it.
            self.link_free.insert(*link, start + flits);
            head_time = start + hop_latency;
        }
        // The tail flit arrives `flits - 1` cycles after the head.
        let arrival = head_time + flits.saturating_sub(1);
        let outcome = TransferOutcome { departure: now, arrival, hops, flits, contention };

        self.stats.packets += 1;
        self.stats.bytes += bytes;
        self.stats.flits += flits;
        self.stats.flit_hops += flits * u64::from(hops);
        self.stats.byte_hops += bytes * u64::from(hops);
        self.stats.total_latency += outcome.latency();
        self.stats.total_contention += contention;
        self.stats.max_latency = self.stats.max_latency.max(outcome.latency());
        outcome
    }

    /// Convenience wrapper for a transfer to the global-memory port.
    pub fn transfer_to_memory(&mut self, src: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        self.transfer(src, self.config.memory_port, bytes, now)
    }

    /// Convenience wrapper for a transfer from the global-memory port.
    pub fn transfer_from_memory(&mut self, dst: NodeId, bytes: u64, now: u64) -> TransferOutcome {
        self.transfer(self.config.memory_port, dst, bytes, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4() -> Mesh {
        Mesh::new(NocConfig::new(4, 4, 8))
    }

    #[test]
    fn route_follows_xy_order_and_length() {
        let mesh = mesh4();
        let route = mesh.route(0, 15);
        assert_eq!(route.len(), 6);
        // X first: 0 -> 1 -> 2 -> 3, then Y: 3 -> 7 -> 11 -> 15.
        assert_eq!(route[0], Link { from: 0, to: 1 });
        assert_eq!(route[2], Link { from: 2, to: 3 });
        assert_eq!(route[3], Link { from: 3, to: 7 });
        assert_eq!(route[5], Link { from: 11, to: 15 });
        assert!(mesh.route(5, 5).is_empty());
    }

    #[test]
    fn transfer_latency_combines_hops_and_serialization() {
        let mut mesh = mesh4();
        // 64 bytes = 8 flits over 6 hops: 6 cycles head latency + 7 tail.
        let outcome = mesh.transfer(0, 15, 64, 0);
        assert_eq!(outcome.hops, 6);
        assert_eq!(outcome.flits, 8);
        assert_eq!(outcome.latency(), 6 + 7);
        assert_eq!(outcome.contention, 0);
    }

    #[test]
    fn local_and_empty_transfers_are_free() {
        let mut mesh = mesh4();
        let same = mesh.transfer(3, 3, 1024, 10);
        assert_eq!(same.latency(), 0);
        let empty = mesh.transfer(0, 5, 0, 10);
        assert_eq!(empty.latency(), 0);
        assert_eq!(mesh.stats().flit_hops, 0);
    }

    #[test]
    fn contention_queues_packets_on_shared_links() {
        let mut mesh = mesh4();
        let first = mesh.transfer(0, 3, 256, 0);
        let second = mesh.transfer(0, 3, 256, 0);
        assert!(second.arrival > first.arrival);
        assert!(second.contention > 0);
        // A packet on a disjoint path is unaffected.
        let third = mesh.transfer(12, 15, 256, 0);
        assert_eq!(third.contention, 0);
    }

    #[test]
    fn wider_flits_reduce_serialization_latency() {
        let narrow = Mesh::new(NocConfig::new(4, 4, 8)).transfer(0, 15, 128, 0).latency();
        let wide = Mesh::new(NocConfig::new(4, 4, 16)).transfer(0, 15, 128, 0).latency();
        assert!(wide < narrow);
    }

    #[test]
    fn memory_port_helpers_route_to_the_port() {
        let mut config = NocConfig::new(4, 4, 8);
        config.memory_port = 5;
        let mut mesh = Mesh::new(config);
        let to = mesh.transfer_to_memory(15, 32, 0);
        assert_eq!(to.hops, mesh.config().hops(15, 5));
        let from = mesh.transfer_from_memory(0, 32, 0);
        assert_eq!(from.hops, mesh.config().hops(5, 0));
    }

    #[test]
    fn stats_accumulate() {
        let mut mesh = mesh4();
        mesh.transfer(0, 15, 64, 0);
        mesh.transfer(1, 2, 16, 5);
        let stats = mesh.stats();
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.bytes, 80);
        assert!(stats.flit_hops > 0);
        assert!(stats.mean_latency() > 0.0);
        assert!(stats.max_latency >= stats.mean_latency() as u64);
        mesh.reset();
        assert_eq!(mesh.stats().packets, 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The route always ends at the destination and has the
            /// Manhattan length.
            #[test]
            fn route_is_connected_and_minimal(src in 0u32..16, dst in 0u32..16) {
                let mesh = mesh4();
                let route = mesh.route(src, dst);
                prop_assert_eq!(route.len() as u32, mesh.config().hops(src, dst));
                let mut current = src;
                for link in &route {
                    prop_assert_eq!(link.from, current);
                    prop_assert_eq!(mesh.config().hops(link.from, link.to), 1);
                    current = link.to;
                }
                prop_assert_eq!(current, dst);
            }

            /// Latency is monotone in the payload size.
            #[test]
            fn latency_monotone_in_bytes(src in 0u32..16, dst in 0u32..16, bytes in 1u64..4096) {
                let small = Mesh::new(NocConfig::new(4, 4, 8)).transfer(src, dst, bytes, 0).latency();
                let large = Mesh::new(NocConfig::new(4, 4, 8)).transfer(src, dst, bytes * 2, 0).latency();
                prop_assert!(large >= small);
            }

            /// Every transfer arrives no earlier than it departs, and
            /// statistics never lose packets.
            #[test]
            fn transfers_are_causal(transfers in prop::collection::vec((0u32..16, 0u32..16, 1u64..2048), 1..50)) {
                let mut mesh = mesh4();
                let mut now = 0u64;
                for (src, dst, bytes) in &transfers {
                    let outcome = mesh.transfer(*src, *dst, *bytes, now);
                    prop_assert!(outcome.arrival >= outcome.departure);
                    now += 3;
                }
                prop_assert_eq!(mesh.stats().packets, transfers.len() as u64);
            }
        }
    }
}
