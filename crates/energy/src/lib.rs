//! # cimflow-energy
//!
//! Energy, latency-support and area models for the CIMFlow framework.
//!
//! The original paper obtains its performance statistics from
//! "multiple industry-standard tools": post-layout analysis of the digital
//! CIM macro of Yan et al. (ISSCC 2022), memory compilers for the on-chip
//! SRAM, Design Compiler + PrimeTime PX for the digital logic, and Noxim
//! for the NoC. None of those tools are redistributable, so this crate
//! substitutes **parameterized analytical models with constants calibrated
//! to published 28 nm figures** (see DESIGN.md). Absolute joules therefore
//! differ from the authors' testbed, but the *ratios* between component
//! energies — which drive every trend in Figs. 5–7 — are realistic:
//!
//! * CIM macro: ≈ 27 TOPS/W INT8 (ISSCC'22 macro) → ≈ 0.073 pJ per MAC.
//! * Local SRAM (512 KB): ≈ 0.4 pJ/byte read, 0.45 pJ/byte write.
//! * Global SRAM (16 MB): ≈ 2.4 pJ/byte access.
//! * NoC: ≈ 0.8 pJ per byte per hop plus router overhead.
//! * Vector/scalar/digital control: fractions of a pJ per operation.
//!
//! The [`EnergyModel`] aggregates the component models; its
//! [`EnergyBreakdown`] output feeds both the compiler's cost estimator and
//! the simulator's report, which is exactly the structure Fig. 6 plots
//! (local memory / compute / NoC energy per inference).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use cimflow_arch::ArchConfig;

/// Energy model of the digital CIM macro arrays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CimEnergyModel {
    /// Energy per INT8 multiply-accumulate in picojoules.
    pub mac_pj: f64,
    /// Energy to program one weight byte into a macro in picojoules.
    pub weight_write_pj_per_byte: f64,
    /// Static energy per macro per cycle in picojoules (leakage).
    pub static_pj_per_macro_cycle: f64,
}

impl CimEnergyModel {
    /// Constants calibrated to the 28 nm ADC-less digital CIM macro of
    /// Yan et al. (ISSCC 2022): ≈ 27.4 TOPS/W at INT8.
    pub fn calibrated_28nm() -> Self {
        CimEnergyModel {
            mac_pj: 0.073,
            weight_write_pj_per_byte: 0.9,
            static_pj_per_macro_cycle: 0.002,
        }
    }

    /// Energy of `macs` multiply-accumulates.
    pub fn compute_pj(&self, macs: u64) -> f64 {
        self.mac_pj * macs as f64
    }

    /// Energy of programming `bytes` of weights into the arrays.
    pub fn weight_load_pj(&self, bytes: u64) -> f64 {
        self.weight_write_pj_per_byte * bytes as f64
    }
}

impl Default for CimEnergyModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// Energy model of the SRAM memories (local and global).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SramEnergyModel {
    /// Local-memory read energy per byte in picojoules.
    pub local_read_pj_per_byte: f64,
    /// Local-memory write energy per byte in picojoules.
    pub local_write_pj_per_byte: f64,
    /// Global-memory access energy per byte in picojoules.
    pub global_pj_per_byte: f64,
}

impl SramEnergyModel {
    /// Constants representative of 28 nm memory-compiler output.
    pub fn calibrated_28nm() -> Self {
        SramEnergyModel {
            local_read_pj_per_byte: 0.40,
            local_write_pj_per_byte: 0.45,
            global_pj_per_byte: 2.4,
        }
    }

    /// Energy of reading `bytes` from local memory.
    pub fn local_read_pj(&self, bytes: u64) -> f64 {
        self.local_read_pj_per_byte * bytes as f64
    }

    /// Energy of writing `bytes` to local memory.
    pub fn local_write_pj(&self, bytes: u64) -> f64 {
        self.local_write_pj_per_byte * bytes as f64
    }

    /// Energy of accessing `bytes` of global memory.
    pub fn global_pj(&self, bytes: u64) -> f64 {
        self.global_pj_per_byte * bytes as f64
    }
}

impl Default for SramEnergyModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// Energy model of the NoC (the role Noxim plays in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocEnergyModel {
    /// Link traversal energy per byte per hop in picojoules.
    pub link_pj_per_byte_hop: f64,
    /// Router traversal energy per flit in picojoules.
    pub router_pj_per_flit: f64,
}

impl NocEnergyModel {
    /// Constants representative of a 28 nm mesh NoC.
    pub fn calibrated_28nm() -> Self {
        NocEnergyModel { link_pj_per_byte_hop: 0.8, router_pj_per_flit: 1.5 }
    }

    /// Energy of moving a packet of `flits` flits of `flit_bytes` each over
    /// `hops` hops.
    ///
    /// Link energy is charged for the full flit width regardless of how
    /// many payload bytes the last flit actually carries: wide links toggle
    /// all their wires. This padding effect is what makes poorly packed
    /// transfers on 16-byte links more expensive than on 8-byte links and
    /// reproduces the Fig. 6 observation that compact models spend a large
    /// energy share in the NoC at high link bandwidth.
    pub fn transfer_pj(&self, flits: u64, flit_bytes: u32, hops: u32) -> f64 {
        let wire_bytes = flits as f64 * f64::from(flit_bytes);
        self.link_pj_per_byte_hop * wire_bytes * f64::from(hops)
            + self.router_pj_per_flit * flits as f64 * f64::from(hops.max(1))
    }
}

impl Default for NocEnergyModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// Energy model of the chip-to-chip interconnect (package-level SerDes
/// links), exercised only by multi-chip systems.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterChipEnergyModel {
    /// Link traversal energy per byte per chip-to-chip hop in picojoules
    /// (an order of magnitude above the on-chip mesh: SerDes plus package
    /// traces).
    pub link_pj_per_byte_hop: f64,
    /// Per-packet protocol/framing overhead in picojoules.
    pub packet_pj: f64,
}

impl InterChipEnergyModel {
    /// Constants representative of short-reach package-level SerDes
    /// (≈ 1.25 pJ/bit → 10 pJ/byte).
    pub fn calibrated_28nm() -> Self {
        InterChipEnergyModel { link_pj_per_byte_hop: 10.0, packet_pj: 40.0 }
    }

    /// Energy of moving `bytes` over `hops` chip-to-chip links.
    pub fn transfer_pj(&self, bytes: u64, hops: u32) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.link_pj_per_byte_hop * bytes as f64 * f64::from(hops.max(1)) + self.packet_pj
    }
}

impl Default for InterChipEnergyModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// Energy model of the remaining digital logic (vector unit, scalar unit,
/// instruction fetch/decode) — the parts the paper synthesizes with Design
/// Compiler and measures with PrimeTime PX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DigitalEnergyModel {
    /// Vector-unit energy per processed element in picojoules.
    pub vector_pj_per_elem: f64,
    /// Scalar ALU energy per operation in picojoules.
    pub scalar_pj_per_op: f64,
    /// Instruction fetch + decode energy per instruction in picojoules.
    pub issue_pj_per_inst: f64,
    /// Idle/static core energy per cycle in picojoules.
    pub static_pj_per_core_cycle: f64,
}

impl DigitalEnergyModel {
    /// Constants representative of 28 nm synthesis results.
    pub fn calibrated_28nm() -> Self {
        DigitalEnergyModel {
            vector_pj_per_elem: 0.12,
            scalar_pj_per_op: 0.45,
            issue_pj_per_inst: 0.35,
            static_pj_per_core_cycle: 1.2,
        }
    }
}

impl Default for DigitalEnergyModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// Per-component energy accumulation in picojoules.
///
/// This is the quantity Fig. 6 plots (stacked energy of local memory,
/// compute unit and NoC); `global_memory` and `control` are reported
/// separately in the detailed simulator report.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// CIM + vector + scalar compute energy.
    pub compute_pj: f64,
    /// Local-memory access energy.
    pub local_memory_pj: f64,
    /// NoC transfer energy.
    pub noc_pj: f64,
    /// Chip-to-chip interconnect energy (zero on single-chip systems).
    pub interchip_pj: f64,
    /// Global-memory access energy.
    pub global_memory_pj: f64,
    /// Instruction issue and static energy.
    pub control_pj: f64,
}

impl EnergyBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj
            + self.local_memory_pj
            + self.noc_pj
            + self.interchip_pj
            + self.global_memory_pj
            + self.control_pj
    }

    /// Total energy in millijoules (the unit of Fig. 6).
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1.0e-9
    }

    /// Adds another breakdown component-wise.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.compute_pj += other.compute_pj;
        self.local_memory_pj += other.local_memory_pj;
        self.noc_pj += other.noc_pj;
        self.interchip_pj += other.interchip_pj;
        self.global_memory_pj += other.global_memory_pj;
        self.control_pj += other.control_pj;
    }

    /// Fraction of the total contributed by the NoC (used by the Fig. 6
    /// analysis of communication-dominated configurations).
    pub fn noc_share(&self) -> f64 {
        let total = self.total_pj();
        if total <= 0.0 {
            0.0
        } else {
            self.noc_pj / total
        }
    }
}

/// The complete energy model consumed by the compiler's cost estimator and
/// the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyModel {
    /// CIM array model.
    pub cim: CimEnergyModel,
    /// SRAM model (local + global).
    pub sram: SramEnergyModel,
    /// NoC model.
    pub noc: NocEnergyModel,
    /// Chip-to-chip interconnect model.
    pub interchip: InterChipEnergyModel,
    /// Remaining digital logic model.
    pub digital: DigitalEnergyModel,
}

impl EnergyModel {
    /// The default 28 nm-calibrated model.
    pub fn calibrated_28nm() -> Self {
        Self::default()
    }

    /// Estimated energy of executing `macs` multiply-accumulates on the
    /// CIM arrays, including reading the activations once from local
    /// memory and writing the results back.
    pub fn mvm_energy(&self, macs: u64, input_bytes: u64, output_bytes: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.cim.compute_pj(macs),
            local_memory_pj: self.sram.local_read_pj(input_bytes)
                + self.sram.local_write_pj(output_bytes),
            ..EnergyBreakdown::default()
        }
    }

    /// Estimated energy of a NoC transfer of `flits` flits of `flit_bytes`
    /// each over `hops` hops.
    pub fn noc_energy(&self, flits: u64, flit_bytes: u32, hops: u32) -> EnergyBreakdown {
        EnergyBreakdown {
            noc_pj: self.noc.transfer_pj(flits, flit_bytes, hops),
            ..EnergyBreakdown::default()
        }
    }

    /// Estimated energy of a global-memory transfer of `bytes`.
    pub fn global_memory_energy(&self, bytes: u64) -> EnergyBreakdown {
        EnergyBreakdown {
            global_memory_pj: self.sram.global_pj(bytes),
            ..EnergyBreakdown::default()
        }
    }

    /// Estimated energy of an inter-chip transfer of `bytes` over `hops`
    /// chip-to-chip links.
    pub fn interchip_energy(&self, bytes: u64, hops: u32) -> EnergyBreakdown {
        EnergyBreakdown {
            interchip_pj: self.interchip.transfer_pj(bytes, hops),
            ..EnergyBreakdown::default()
        }
    }

    /// Static + leakage energy of the whole system (all chips) over
    /// `cycles` cycles.
    pub fn static_energy(&self, arch: &ArchConfig, cycles: u64) -> EnergyBreakdown {
        let cores = u64::from(arch.total_cores());
        let macros = cores * u64::from(arch.core.cim_unit.total_macros());
        EnergyBreakdown {
            compute_pj: self.cim.static_pj_per_macro_cycle * macros as f64 * cycles as f64,
            control_pj: self.digital.static_pj_per_core_cycle * cores as f64 * cycles as f64,
            ..EnergyBreakdown::default()
        }
    }
}

/// Silicon-area model of the accelerator, calibrated to published 28 nm
/// figures the same way the energy constants are.
///
/// Area is derived entirely from the [`ArchConfig`]: CIM macros, SRAM
/// capacities and core/chip counts each carry a per-unit area constant,
/// so every sweep axis that grows the machine (chips, cores, local
/// memory) grows the estimate. The absolute mm² are approximate — the
/// paper's authors had real floorplans — but the *ordering* between
/// design points is what the DSE's area objective and feasibility caps
/// consume, and that ordering is driven by the same capacity ratios a
/// floorplan would show.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Area of one digital CIM macro in mm² (ISSCC'22-class 28 nm macro).
    pub cim_mm2_per_macro: f64,
    /// Local (per-core) SRAM area per MiB in mm².
    pub local_sram_mm2_per_mib: f64,
    /// Global (per-chip) SRAM area per MiB in mm² (denser banking than
    /// the latency-optimized local arrays).
    pub global_sram_mm2_per_mib: f64,
    /// Remaining per-core digital logic (vector/scalar units, sequencer)
    /// in mm².
    pub core_logic_mm2: f64,
    /// One mesh router in mm² (one per core).
    pub router_mm2: f64,
    /// Fixed per-chip overhead (IO ring, PLLs, pads, SerDes) in mm².
    pub chip_overhead_mm2: f64,
}

impl AreaModel {
    /// Constants representative of 28 nm synthesis and memory-compiler
    /// output.
    pub fn calibrated_28nm() -> Self {
        AreaModel {
            cim_mm2_per_macro: 0.012,
            local_sram_mm2_per_mib: 0.50,
            global_sram_mm2_per_mib: 0.42,
            core_logic_mm2: 0.055,
            router_mm2: 0.02,
            chip_overhead_mm2: 2.0,
        }
    }

    /// Area of one core: its CIM macros, local SRAM, digital logic and
    /// mesh router.
    pub fn core_mm2(&self, arch: &ArchConfig) -> f64 {
        let macros = f64::from(arch.core.cim_unit.total_macros());
        let local_mib = arch.core.local_memory.size_bytes as f64 / (1024.0 * 1024.0);
        self.cim_mm2_per_macro * macros
            + self.local_sram_mm2_per_mib * local_mib
            + self.core_logic_mm2
            + self.router_mm2
    }

    /// Area of one chip: its cores, global SRAM and fixed overhead.
    pub fn chip_mm2(&self, arch: &ArchConfig) -> f64 {
        let global_mib = arch.chip().global_memory.size_bytes as f64 / (1024.0 * 1024.0);
        self.core_mm2(arch) * f64::from(arch.chip().core_count)
            + self.global_sram_mm2_per_mib * global_mib
            + self.chip_overhead_mm2
    }

    /// Total silicon area of the system (all chips) in mm² — the
    /// quantity the DSE's `area` objective minimizes and its feasibility
    /// caps bound.
    pub fn system_mm2(&self, arch: &ArchConfig) -> f64 {
        self.chip_mm2(arch) * f64::from(arch.chip_count())
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cim_energy_matches_published_efficiency() {
        let model = CimEnergyModel::calibrated_28nm();
        // 27.4 TOPS/W <=> about 0.073 pJ per MAC (2 OPs per MAC).
        let tops_per_watt = 2.0 / model.mac_pj;
        assert!(
            (25.0..30.0).contains(&tops_per_watt),
            "calibration drifted: {tops_per_watt} TOPS/W"
        );
        assert_eq!(model.compute_pj(0), 0.0);
        assert!(model.compute_pj(1_000_000) > 0.0);
    }

    #[test]
    fn component_order_of_magnitude_is_sensible() {
        let m = EnergyModel::calibrated_28nm();
        // Moving a byte one hop costs more than one MAC but less than a
        // global-memory access.
        assert!(m.noc.link_pj_per_byte_hop > m.cim.mac_pj);
        assert!(m.sram.global_pj_per_byte > m.sram.local_read_pj_per_byte);
        assert!(m.sram.local_read_pj_per_byte > m.cim.mac_pj);
    }

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut total = EnergyBreakdown::new();
        total.accumulate(&EnergyBreakdown { compute_pj: 10.0, ..Default::default() });
        total.accumulate(&EnergyBreakdown {
            noc_pj: 30.0,
            local_memory_pj: 20.0,
            ..Default::default()
        });
        assert_eq!(total.total_pj(), 60.0);
        assert!((total.noc_share() - 0.5).abs() < 1e-12);
        assert!((total.total_mj() - 60.0e-9).abs() < 1e-18);
        assert_eq!(EnergyBreakdown::new().noc_share(), 0.0);
    }

    #[test]
    fn mvm_energy_scales_linearly() {
        let m = EnergyModel::calibrated_28nm();
        let small = m.mvm_energy(1_000, 100, 100);
        let large = m.mvm_energy(10_000, 1_000, 1_000);
        assert!((large.compute_pj / small.compute_pj - 10.0).abs() < 1e-9);
        assert!((large.local_memory_pj / small.local_memory_pj - 10.0).abs() < 1e-9);
    }

    #[test]
    fn noc_energy_scales_with_hops_and_charges_padding() {
        let m = EnergyModel::calibrated_28nm();
        let near = m.noc_energy(8, 8, 1);
        let far = m.noc_energy(8, 8, 7);
        assert!(far.noc_pj > 5.0 * near.noc_pj);
        assert_eq!(m.noc_energy(0, 8, 3).noc_pj, 0.0);
        // Moving 40 bytes: 5 flits on an 8-byte link vs 3 flits on a
        // 16-byte link — the wide link toggles more wire bytes (48 > 40).
        let narrow_link = m.noc_energy(5, 8, 4);
        let wide_link = m.noc_energy(3, 16, 4);
        assert!(wide_link.noc_pj > narrow_link.noc_pj * 0.9);
    }

    #[test]
    fn static_energy_scales_with_chip_size_and_time() {
        let m = EnergyModel::calibrated_28nm();
        let arch = ArchConfig::paper_default();
        let small = m.static_energy(&arch, 1_000);
        let long = m.static_energy(&arch, 10_000);
        assert!(long.total_pj() > 9.0 * small.total_pj());
        let fewer_cores = m.static_energy(&arch.with_core_count(16), 1_000);
        assert!(fewer_cores.total_pj() < small.total_pj());
        // A multi-chip system leaks on every chip.
        let two_chips = m.static_energy(&arch.with_chip_count(2), 1_000);
        assert!((two_chips.total_pj() - 2.0 * small.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn interchip_energy_dwarfs_onchip_per_byte() {
        let m = EnergyModel::calibrated_28nm();
        assert!(m.interchip.link_pj_per_byte_hop > m.noc.link_pj_per_byte_hop);
        let transfer = m.interchip_energy(1024, 1);
        assert!(transfer.interchip_pj > 0.0);
        assert_eq!(m.interchip_energy(0, 1).interchip_pj, 0.0);
        let two_hops = m.interchip_energy(1024, 2);
        assert!(two_hops.interchip_pj > transfer.interchip_pj);
        assert!(transfer.total_pj() >= transfer.interchip_pj);
    }

    #[test]
    fn serde_round_trip() {
        let m = EnergyModel::calibrated_28nm();
        let text = serde_json::to_string(&m).unwrap();
        let back: EnergyModel = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn area_scales_with_every_capacity_axis() {
        let m = AreaModel::calibrated_28nm();
        let base = ArchConfig::paper_default();
        let mm2 = m.system_mm2(&base);
        assert!(mm2 > 0.0 && mm2.is_finite());
        // More chips, more cores, more local memory: all strictly larger.
        assert!((m.system_mm2(&base.with_chip_count(2)) - 2.0 * mm2).abs() < 1e-9);
        assert!(m.system_mm2(&base.with_core_count(16)) < mm2);
        assert!(m.system_mm2(&base.with_local_memory_kib(1024)) > mm2);
        // Fewer macros per group means fewer macros (the group count is
        // fixed), so the MG axis is a genuine area axis.
        assert!(m.system_mm2(&base.with_macros_per_group(2)) < mm2);
        // Chip area is dominated by its cores plus the global SRAM.
        assert!(m.chip_mm2(&base) > m.core_mm2(&base) * f64::from(base.chip().core_count));
    }

    #[test]
    fn area_model_serde_round_trip() {
        let m = AreaModel::calibrated_28nm();
        let text = serde_json::to_string(&m).unwrap();
        let back: AreaModel = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(AreaModel::default(), m);
    }
}
