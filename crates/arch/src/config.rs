//! The complete architecture configuration: the paper's "Arch. Config"
//! user input.

use serde::{Deserialize, Serialize};

use crate::chip::ChipConfig;
use crate::core::CoreConfig;
use crate::memory::SegmentKind;
use crate::ArchError;

/// The unified address map shared by the compiler and the simulator.
///
/// CIMFlow "implements a unified address space across both global and local
/// memories" (Sec. III-B): every core sees its own local memory at low
/// addresses and the chip-level global memory above
/// [`AddressMap::global_base`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressMap {
    /// Size of the per-core local memory in bytes.
    pub local_size: u64,
    /// First byte address that refers to global memory.
    pub global_base: u64,
    /// Size of the global memory in bytes.
    pub global_size: u64,
    /// Size of one local-memory segment in bytes.
    pub segment_size: u64,
}

impl AddressMap {
    /// Whether `addr` falls into the global-memory window.
    pub fn is_global(&self, addr: u64) -> bool {
        addr >= self.global_base
    }

    /// Base address of a local-memory segment.
    pub fn segment_base(&self, kind: SegmentKind) -> u64 {
        let index = SegmentKind::ALL.iter().position(|k| *k == kind).unwrap_or(0) as u64;
        index * self.segment_size
    }

    /// Translates a global address into an offset inside global memory.
    pub fn global_offset(&self, addr: u64) -> u64 {
        addr.saturating_sub(self.global_base)
    }
}

/// The complete CIMFlow architecture configuration.
///
/// Combines the chip-level and core-level descriptions (all cores are
/// homogeneous) and is the single hardware input consumed by the compiler
/// and the simulator.
///
/// # Example
///
/// ```
/// use cimflow_arch::ArchConfig;
///
/// # fn main() -> Result<(), cimflow_arch::ArchError> {
/// let arch = ArchConfig::paper_default()
///     .with_macros_per_group(4)
///     .with_flit_bytes(16);
/// arch.validate()?;
/// assert_eq!(arch.core.cim_unit.macros_per_group, 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Chip-level configuration (cores, NoC, global memory, clock).
    pub chip: ChipConfig,
    /// Core-level configuration (identical for every core).
    pub core: CoreConfig,
}

impl ArchConfig {
    /// The default architecture of Table I.
    pub fn paper_default() -> Self {
        ArchConfig { chip: ChipConfig::paper_default(), core: CoreConfig::paper_default() }
    }

    /// Returns a copy with a different macro-group size (macros per MG).
    pub fn with_macros_per_group(mut self, macros_per_group: u32) -> Self {
        self.core.cim_unit.macros_per_group = macros_per_group;
        self
    }

    /// Returns a copy with a different NoC flit size in bytes.
    pub fn with_flit_bytes(mut self, flit_bytes: u32) -> Self {
        self.chip.noc_flit_bytes = flit_bytes;
        self
    }

    /// Returns a copy with a different core count (mesh re-derived).
    pub fn with_core_count(mut self, core_count: u32) -> Self {
        self.chip = self.chip.with_core_count(core_count);
        self
    }

    /// Returns a copy with a different per-core local-memory capacity in
    /// bytes (the capacity must stay divisible by the segment count to
    /// validate).
    pub fn with_local_memory_bytes(mut self, size_bytes: u64) -> Self {
        self.core.local_memory.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different per-core local-memory capacity in
    /// KiB (the sweep axis used by `cimflow-dse`).
    pub fn with_local_memory_kib(self, size_kib: u64) -> Self {
        self.with_local_memory_bytes(size_kib * 1024)
    }

    /// Returns a copy with a different clock frequency in MHz.
    pub fn with_frequency_mhz(mut self, frequency_mhz: u32) -> Self {
        self.chip.frequency_mhz = frequency_mhz;
        self
    }

    /// Total CIM weight capacity of the chip in bytes.
    pub fn chip_weight_capacity_bytes(&self) -> u64 {
        u64::from(self.chip.core_count) * self.core.weight_capacity_bytes()
    }

    /// Peak INT8 throughput of the chip in tera-operations per second
    /// (counting one multiply and one add as two operations).
    pub fn peak_tops(&self) -> f64 {
        let macs_per_cycle = self.core.peak_macs_per_cycle() * f64::from(self.chip.core_count);
        macs_per_cycle * 2.0 * f64::from(self.chip.frequency_mhz) * 1.0e6 / 1.0e12
    }

    /// The unified address map implied by this configuration.
    pub fn address_map(&self) -> AddressMap {
        let local_size = self.core.local_memory.size_bytes;
        // Round the global base up to the next power of two above local
        // memory so that local address arithmetic can never overflow into
        // the global window.
        let global_base = local_size.next_power_of_two().max(1 << 20);
        AddressMap {
            local_size,
            global_base,
            global_size: self.chip.global_memory.size_bytes,
            segment_size: self.core.local_memory.segment_bytes(),
        }
    }

    /// Validates every level of the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an
    /// [`ArchError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), ArchError> {
        self.chip.validate()?;
        self.core.validate()?;
        Ok(())
    }

    /// Serializes the configuration to a pretty JSON string (the on-disk
    /// "architecture configuration file" format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ArchConfig serialization cannot fail")
    }

    /// Parses a configuration from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ParseConfig`] for malformed JSON or an
    /// [`ArchError::InvalidConfig`] if the parsed configuration violates a
    /// structural invariant.
    pub fn from_json(text: &str) -> Result<Self, ArchError> {
        let config: ArchConfig = serde_json::from_str(text)
            .map_err(|e| ArchError::ParseConfig { reason: e.to_string() })?;
        config.validate()?;
        Ok(config)
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_table_i() {
        let arch = ArchConfig::paper_default();
        assert!(arch.validate().is_ok());
        assert_eq!(arch.chip.core_count, 64);
        assert_eq!(arch.core.local_memory.size_bytes, 512 * 1024);
        assert_eq!(arch.chip.global_memory.size_bytes, 16 * 1024 * 1024);
        // 64 cores × 512 KiB of weights.
        assert_eq!(arch.chip_weight_capacity_bytes(), 32 * 1024 * 1024);
    }

    #[test]
    fn peak_tops_is_physically_plausible() {
        let arch = ArchConfig::paper_default();
        let tops = arch.peak_tops();
        // 64 cores × 16 MGs × (512×64 MACs / 256 cycles) × 2 at 1 GHz ≈ 262 TOPS.
        assert!(tops > 10.0 && tops < 500.0, "peak {tops} TOPS out of plausible range");
    }

    #[test]
    fn sweep_builders_change_only_their_field() {
        let base = ArchConfig::paper_default();
        let swept = base.with_macros_per_group(12).with_flit_bytes(16);
        assert_eq!(swept.core.cim_unit.macros_per_group, 12);
        assert_eq!(swept.chip.noc_flit_bytes, 16);
        assert_eq!(swept.chip.core_count, base.chip.core_count);
        assert!(swept.validate().is_ok());
    }

    #[test]
    fn address_map_separates_local_and_global() {
        let map = ArchConfig::paper_default().address_map();
        assert!(!map.is_global(0));
        assert!(!map.is_global(map.local_size - 1));
        assert!(map.is_global(map.global_base));
        assert_eq!(map.global_offset(map.global_base + 100), 100);
        assert_eq!(map.segment_base(SegmentKind::Input), 0);
        assert!(map.segment_base(SegmentKind::Scratch) >= 3 * map.segment_size);
    }

    #[test]
    fn json_round_trip_and_validation() {
        let arch = ArchConfig::paper_default().with_macros_per_group(4);
        let text = arch.to_json();
        let back = ArchConfig::from_json(&text).unwrap();
        assert_eq!(back, arch);

        assert!(matches!(ArchConfig::from_json("{not json"), Err(ArchError::ParseConfig { .. })));

        let mut broken = arch;
        broken.chip.core_count = 0;
        assert!(ArchConfig::from_json(&broken.to_json()).is_err());
    }

    #[test]
    fn dse_builder_setters_change_only_their_field() {
        let base = ArchConfig::paper_default();
        let swept = base.with_local_memory_kib(256).with_frequency_mhz(800);
        assert_eq!(swept.core.local_memory.size_bytes, 256 * 1024);
        assert_eq!(swept.chip.frequency_mhz, 800);
        assert_eq!(swept.chip.core_count, base.chip.core_count);
        assert!(swept.validate().is_ok());
        // Capacities that break the segment invariant are caught by
        // validation rather than silently accepted.
        assert!(base.with_local_memory_bytes(1022).validate().is_err());
    }

    #[test]
    fn smaller_core_count_reduces_capacity() {
        let small = ArchConfig::paper_default().with_core_count(16);
        assert!(
            small.chip_weight_capacity_bytes()
                < ArchConfig::paper_default().chip_weight_capacity_bytes()
        );
        assert!(small.validate().is_ok());
    }
}
