//! The complete architecture configuration: the paper's "Arch. Config"
//! user input, extended with an explicit system level.

use serde::{Content, Deserialize, Serialize};

use crate::chip::ChipConfig;
use crate::core::CoreConfig;
use crate::memory::SegmentKind;
use crate::system::{InterChipTopology, SystemConfig};
use crate::ArchError;

/// The unified address map shared by the compiler and the simulator.
///
/// CIMFlow "implements a unified address space across both global and local
/// memories" (Sec. III-B): every core sees its own local memory at low
/// addresses and the chip-level global memory above
/// [`AddressMap::global_base`]. In a multi-chip system every chip has its
/// own instance of this map (chips are homogeneous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddressMap {
    /// Size of the per-core local memory in bytes.
    pub local_size: u64,
    /// First byte address that refers to global memory.
    pub global_base: u64,
    /// Size of the global memory in bytes.
    pub global_size: u64,
    /// Size of one local-memory segment in bytes.
    pub segment_size: u64,
}

impl AddressMap {
    /// Whether `addr` falls into the global-memory window.
    pub fn is_global(&self, addr: u64) -> bool {
        addr >= self.global_base
    }

    /// Base address of a local-memory segment.
    pub fn segment_base(&self, kind: SegmentKind) -> u64 {
        let index = SegmentKind::ALL.iter().position(|k| *k == kind).unwrap_or(0) as u64;
        index * self.segment_size
    }

    /// Translates a global address into an offset inside global memory.
    pub fn global_offset(&self, addr: u64) -> u64 {
        addr.saturating_sub(self.global_base)
    }
}

/// The complete CIMFlow architecture configuration.
///
/// Combines the system-level description (the chip, how many chips, and
/// the inter-chip interconnect) with the core-level description (all
/// cores of all chips are homogeneous). It is the single hardware input
/// consumed by the compiler and the simulator.
///
/// # Example
///
/// ```
/// use cimflow_arch::ArchConfig;
///
/// # fn main() -> Result<(), cimflow_arch::ArchError> {
/// let arch = ArchConfig::paper_default()
///     .with_macros_per_group(4)
///     .with_flit_bytes(16)
///     .with_chip_count(2);
/// arch.validate()?;
/// assert_eq!(arch.core.cim_unit.macros_per_group, 4);
/// assert_eq!(arch.system.chip_count, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// System-level configuration: the chip (cores, NoC, global memory,
    /// clock), the chip count and the inter-chip interconnect.
    pub system: SystemConfig,
    /// Core-level configuration (identical for every core of every chip).
    pub core: CoreConfig,
}

impl ArchConfig {
    /// The default architecture of Table I (a single chip).
    pub fn paper_default() -> Self {
        ArchConfig {
            system: SystemConfig::single_chip(ChipConfig::paper_default()),
            core: CoreConfig::paper_default(),
        }
    }

    /// The chip-level configuration (shared by all chips of the system).
    pub fn chip(&self) -> &ChipConfig {
        &self.system.chip
    }

    /// Number of chips in the system.
    pub fn chip_count(&self) -> u32 {
        self.system.chip_count
    }

    /// Total cores across all chips.
    pub fn total_cores(&self) -> u32 {
        self.system.total_cores()
    }

    /// Returns a copy with a different macro-group size (macros per MG).
    pub fn with_macros_per_group(mut self, macros_per_group: u32) -> Self {
        self.core.cim_unit.macros_per_group = macros_per_group;
        self
    }

    /// Returns a copy with a different NoC flit size in bytes.
    pub fn with_flit_bytes(mut self, flit_bytes: u32) -> Self {
        self.system.chip.noc_flit_bytes = flit_bytes;
        self
    }

    /// Returns a copy with a different per-chip core count (mesh
    /// re-derived).
    pub fn with_core_count(mut self, core_count: u32) -> Self {
        self.system.chip = self.system.chip.with_core_count(core_count);
        self
    }

    /// Returns a copy with a different chip count (the `cimflow-dse`
    /// scale-out sweep axis).
    pub fn with_chip_count(mut self, chip_count: u32) -> Self {
        self.system.chip_count = chip_count;
        self
    }

    /// Returns a copy with a different inter-chip link bandwidth in bytes
    /// per cycle.
    pub fn with_interchip_link_bytes(mut self, bytes_per_cycle: u32) -> Self {
        self.system.interconnect.link_bytes_per_cycle = bytes_per_cycle;
        self
    }

    /// Returns a copy with a different inter-chip link latency in cycles.
    pub fn with_interchip_link_latency(mut self, cycles: u32) -> Self {
        self.system.interconnect.link_latency_cycles = cycles;
        self
    }

    /// Returns a copy with a different inter-chip topology.
    pub fn with_interchip_topology(mut self, topology: InterChipTopology) -> Self {
        self.system.interconnect.topology = topology;
        self
    }

    /// Returns a copy with the global-memory port at a different mesh
    /// node.
    pub fn with_memory_port(mut self, node: u32) -> Self {
        self.system.chip.memory_port = node;
        self
    }

    /// Returns a copy with a different per-core local-memory capacity in
    /// bytes (the capacity must stay divisible by the segment count to
    /// validate).
    pub fn with_local_memory_bytes(mut self, size_bytes: u64) -> Self {
        self.core.local_memory.size_bytes = size_bytes;
        self
    }

    /// Returns a copy with a different per-core local-memory capacity in
    /// KiB (the sweep axis used by `cimflow-dse`).
    pub fn with_local_memory_kib(self, size_kib: u64) -> Self {
        self.with_local_memory_bytes(size_kib * 1024)
    }

    /// Returns a copy with a different clock frequency in MHz.
    pub fn with_frequency_mhz(mut self, frequency_mhz: u32) -> Self {
        self.system.chip.frequency_mhz = frequency_mhz;
        self
    }

    /// Total CIM weight capacity of one chip in bytes.
    pub fn chip_weight_capacity_bytes(&self) -> u64 {
        u64::from(self.system.chip.core_count) * self.core.weight_capacity_bytes()
    }

    /// Total CIM weight capacity of the whole system in bytes.
    pub fn system_weight_capacity_bytes(&self) -> u64 {
        u64::from(self.system.chip_count) * self.chip_weight_capacity_bytes()
    }

    /// Peak INT8 throughput of the system in tera-operations per second
    /// (counting one multiply and one add as two operations).
    pub fn peak_tops(&self) -> f64 {
        let macs_per_cycle = self.core.peak_macs_per_cycle() * f64::from(self.total_cores());
        macs_per_cycle * 2.0 * f64::from(self.system.chip.frequency_mhz) * 1.0e6 / 1.0e12
    }

    /// The unified address map implied by this configuration (identical
    /// on every chip).
    pub fn address_map(&self) -> AddressMap {
        let local_size = self.core.local_memory.size_bytes;
        // Round the global base up to the next power of two above local
        // memory so that local address arithmetic can never overflow into
        // the global window.
        let global_base = local_size.next_power_of_two().max(1 << 20);
        AddressMap {
            local_size,
            global_base,
            global_size: self.system.chip.global_memory.size_bytes,
            segment_size: self.core.local_memory.segment_bytes(),
        }
    }

    /// Validates every level of the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an
    /// [`ArchError::InvalidConfig`].
    pub fn validate(&self) -> Result<(), ArchError> {
        self.system.validate()?;
        self.core.validate()?;
        Ok(())
    }

    /// Serializes the configuration to a pretty JSON string (the on-disk
    /// "architecture configuration file" format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ArchConfig serialization cannot fail")
    }

    /// Content hash over only the **compile-affecting** fields of the
    /// configuration — the share key for compilation results and
    /// simulation traces.
    ///
    /// Two configurations with the same fingerprint are guaranteed to
    /// compile any model to the identical `CompiledProgram` (same per-core
    /// instruction streams, same placement, same inter-chip cut), because
    /// the fields they may differ in are *timing-only*: the compiler never
    /// reads them, and the simulator only uses them to re-time the same
    /// executed work. The timing-only fields are:
    ///
    /// * `system.chip.frequency_mhz` — pure reporting scale (cycles →
    ///   seconds); no cycle count depends on it,
    /// * `system.chip.memory_port` — where the global-memory port sits on
    ///   the mesh; changes routing distance and contention, not the
    ///   instruction stream,
    /// * `system.chip.noc_hop_latency` — per-hop mesh latency,
    /// * `system.interconnect.*` — but **only on a single chip**, where
    ///   the fabric is never exercised. With `chip_count > 1` the
    ///   interconnect stays in the fingerprint: the system partitioner
    ///   scores chip splits with the link parameters, so they affect the
    ///   compile.
    ///
    /// Everything else (CIM unit, memories, vector unit, mesh shape and
    /// flit size, core/chip counts) shapes tiling, placement or code
    /// generation and therefore stays in the hash. The hash is FNV-1a over
    /// the canonical JSON of the configuration with the timing-only fields
    /// pinned to fixed sentinels, so it is stable across processes.
    pub fn compile_fingerprint(&self) -> u64 {
        let mut canonical = *self;
        canonical.system.chip.frequency_mhz = 0;
        canonical.system.chip.memory_port = 0;
        canonical.system.chip.noc_hop_latency = 1;
        if canonical.system.chip_count == 1 {
            canonical.system.interconnect = crate::system::InterChipConfig::paper_default();
        }
        fnv1a(canonical.to_json().as_bytes())
    }

    /// Parses a configuration from JSON and validates it.
    ///
    /// Both the historical single-chip shape (`{"chip": …, "core": …}`)
    /// and the system shape (`{"system": …, "core": …}`) are accepted; a
    /// file without a system level describes a single chip.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ParseConfig`] for malformed JSON or an
    /// [`ArchError::InvalidConfig`] if the parsed configuration violates a
    /// structural invariant.
    pub fn from_json(text: &str) -> Result<Self, ArchError> {
        let config: ArchConfig = serde_json::from_str(text)
            .map_err(|e| ArchError::ParseConfig { reason: e.to_string() })?;
        config.validate()?;
        Ok(config)
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// 64-bit FNV-1a over a byte string (stable across processes and
/// platforms; the same function the DSE cache uses for content hashes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// Manual serde keeps single-chip configurations byte-compatible with the
// historical chip-level format: a plain single-chip system (chip count 1,
// default interconnect) serializes as `{"chip": …, "core": …}` exactly as
// older engines wrote it — so existing configuration files, and the
// content hashes the evaluation cache derives from them, are unchanged —
// while any true multi-chip system serializes through its system level.
impl Serialize for ArchConfig {
    fn serialize(&self) -> Content {
        if self.system.is_single_chip_default() {
            Content::Map(vec![
                ("chip".to_owned(), Serialize::serialize(&self.system.chip)),
                ("core".to_owned(), Serialize::serialize(&self.core)),
            ])
        } else {
            Content::Map(vec![
                ("system".to_owned(), Serialize::serialize(&self.system)),
                ("core".to_owned(), Serialize::serialize(&self.core)),
            ])
        }
    }
}

impl Deserialize for ArchConfig {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for ArchConfig"))?;
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let system = match (field("system"), field("chip")) {
            (Some(system), _) => SystemConfig::deserialize(system)?,
            (None, Some(chip)) => SystemConfig::single_chip(ChipConfig::deserialize(chip)?),
            (None, None) => {
                return Err(serde::Error::new(
                    "ArchConfig needs either a `system` or a `chip` level",
                ))
            }
        };
        let core =
            field("core").ok_or_else(|| serde::Error::new("missing field `core` in ArchConfig"))?;
        Ok(ArchConfig { system, core: Deserialize::deserialize(core)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_table_i() {
        let arch = ArchConfig::paper_default();
        assert!(arch.validate().is_ok());
        assert_eq!(arch.chip().core_count, 64);
        assert_eq!(arch.system.chip_count, 1);
        assert_eq!(arch.core.local_memory.size_bytes, 512 * 1024);
        assert_eq!(arch.chip().global_memory.size_bytes, 16 * 1024 * 1024);
        // 64 cores × 512 KiB of weights.
        assert_eq!(arch.chip_weight_capacity_bytes(), 32 * 1024 * 1024);
        assert_eq!(arch.system_weight_capacity_bytes(), 32 * 1024 * 1024);
    }

    #[test]
    fn peak_tops_is_physically_plausible() {
        let arch = ArchConfig::paper_default();
        let tops = arch.peak_tops();
        // 64 cores × 16 MGs × (512×64 MACs / 256 cycles) × 2 at 1 GHz ≈ 262 TOPS.
        assert!(tops > 10.0 && tops < 500.0, "peak {tops} TOPS out of plausible range");
        // The system level scales capacity and peak throughput linearly.
        let four = arch.with_chip_count(4);
        assert!((four.peak_tops() - 4.0 * tops).abs() < 1e-9);
        assert_eq!(four.system_weight_capacity_bytes(), 4 * arch.chip_weight_capacity_bytes());
    }

    #[test]
    fn sweep_builders_change_only_their_field() {
        let base = ArchConfig::paper_default();
        let swept = base.with_macros_per_group(12).with_flit_bytes(16);
        assert_eq!(swept.core.cim_unit.macros_per_group, 12);
        assert_eq!(swept.chip().noc_flit_bytes, 16);
        assert_eq!(swept.chip().core_count, base.chip().core_count);
        assert!(swept.validate().is_ok());
    }

    #[test]
    fn system_builders_change_only_their_field() {
        let base = ArchConfig::paper_default();
        let swept = base
            .with_chip_count(4)
            .with_interchip_link_bytes(64)
            .with_interchip_link_latency(100)
            .with_interchip_topology(InterChipTopology::Ring)
            .with_memory_port(9);
        assert_eq!(swept.system.chip_count, 4);
        assert_eq!(swept.system.interconnect.link_bytes_per_cycle, 64);
        assert_eq!(swept.system.interconnect.link_latency_cycles, 100);
        assert_eq!(swept.system.interconnect.topology, InterChipTopology::Ring);
        assert_eq!(swept.chip().memory_port, 9);
        assert_eq!(swept.chip().core_count, base.chip().core_count);
        assert_eq!(swept.total_cores(), 256);
        assert!(swept.validate().is_ok());
        assert!(base.with_chip_count(0).validate().is_err());
        assert!(base.with_memory_port(64).validate().is_err());
    }

    #[test]
    fn address_map_separates_local_and_global() {
        let map = ArchConfig::paper_default().address_map();
        assert!(!map.is_global(0));
        assert!(!map.is_global(map.local_size - 1));
        assert!(map.is_global(map.global_base));
        assert_eq!(map.global_offset(map.global_base + 100), 100);
        assert_eq!(map.segment_base(SegmentKind::Input), 0);
        assert!(map.segment_base(SegmentKind::Scratch) >= 3 * map.segment_size);
    }

    #[test]
    fn json_round_trip_and_validation() {
        let arch = ArchConfig::paper_default().with_macros_per_group(4);
        let text = arch.to_json();
        let back = ArchConfig::from_json(&text).unwrap();
        assert_eq!(back, arch);

        assert!(matches!(ArchConfig::from_json("{not json"), Err(ArchError::ParseConfig { .. })));

        let mut broken = arch;
        broken.system.chip.core_count = 0;
        assert!(ArchConfig::from_json(&broken.to_json()).is_err());
    }

    #[test]
    fn single_chip_systems_keep_the_historical_serialized_form() {
        // A plain single-chip configuration must serialize exactly as the
        // pre-system-level engine did: a top-level `chip` object and no
        // `system` key, so content hashes of cached evaluations for all
        // historical configurations are stable.
        let arch = ArchConfig::paper_default();
        let text = arch.to_json();
        assert!(text.contains("\"chip\""));
        assert!(!text.contains("\"system\""));
        assert!(!text.contains("chip_count"));

        // Multi-chip (or custom-interconnect) systems use the new shape …
        let multi = arch.with_chip_count(2);
        let text = multi.to_json();
        assert!(text.contains("\"system\""));
        assert_eq!(ArchConfig::from_json(&text).unwrap(), multi);

        // … and each chip count serializes distinctly.
        assert_ne!(arch.to_json(), arch.with_chip_count(2).to_json());
        assert_ne!(arch.with_chip_count(2).to_json(), arch.with_chip_count(4).to_json());
    }

    #[test]
    fn legacy_config_files_parse_as_single_chip() {
        let legacy = "{\"chip\": {\"core_count\": 64, \"mesh\": {\"width\": 8, \"height\": 8},\
            \"noc_flit_bytes\": 8, \"noc_hop_latency\": 1, \"global_memory\":\
            {\"size_bytes\": 16777216, \"bandwidth_bytes_per_cycle\": 128,\
            \"access_latency\": 20}, \"frequency_mhz\": 1000},\
            \"core\": CORE}"
            .replace("CORE", &serde_json::to_string(&CoreConfig::paper_default()).unwrap());
        let arch = ArchConfig::from_json(&legacy).unwrap();
        assert_eq!(arch, ArchConfig::paper_default());
        assert_eq!(arch.system.chip_count, 1);
    }

    #[test]
    fn dse_builder_setters_change_only_their_field() {
        let base = ArchConfig::paper_default();
        let swept = base.with_local_memory_kib(256).with_frequency_mhz(800);
        assert_eq!(swept.core.local_memory.size_bytes, 256 * 1024);
        assert_eq!(swept.chip().frequency_mhz, 800);
        assert_eq!(swept.chip().core_count, base.chip().core_count);
        assert!(swept.validate().is_ok());
        // Capacities that break the segment invariant are caught by
        // validation rather than silently accepted.
        assert!(base.with_local_memory_bytes(1022).validate().is_err());
    }

    #[test]
    fn compile_fingerprint_collides_exactly_on_timing_only_fields() {
        let base = ArchConfig::paper_default();
        // Two frequency-only variants collide on the fingerprint (the
        // trace/compile share-key contract).
        assert_eq!(
            base.with_frequency_mhz(500).compile_fingerprint(),
            base.with_frequency_mhz(1500).compile_fingerprint()
        );
        // The other timing-only fields collide too, alone and combined.
        assert_eq!(base.compile_fingerprint(), base.with_memory_port(27).compile_fingerprint());
        let mut slow_mesh = base;
        slow_mesh.system.chip.noc_hop_latency = 4;
        assert_eq!(base.compile_fingerprint(), slow_mesh.compile_fingerprint());
        assert_eq!(
            base.compile_fingerprint(),
            base.with_frequency_mhz(250).with_memory_port(63).compile_fingerprint()
        );
        // On one chip the (never exercised) interconnect is timing-inert.
        assert_eq!(
            base.compile_fingerprint(),
            base.with_interchip_link_bytes(64).compile_fingerprint()
        );

        // Compile-affecting fields separate.
        assert_ne!(base.compile_fingerprint(), base.with_macros_per_group(4).compile_fingerprint());
        assert_ne!(base.compile_fingerprint(), base.with_flit_bytes(16).compile_fingerprint());
        assert_ne!(base.compile_fingerprint(), base.with_core_count(16).compile_fingerprint());
        assert_ne!(base.compile_fingerprint(), base.with_chip_count(2).compile_fingerprint());
        assert_ne!(
            base.compile_fingerprint(),
            base.with_local_memory_kib(256).compile_fingerprint()
        );
        // With several chips the interconnect feeds the partition search,
        // so it stays in the fingerprint.
        let multi = base.with_chip_count(2);
        assert_ne!(
            multi.compile_fingerprint(),
            multi.with_interchip_link_bytes(64).compile_fingerprint()
        );
        assert_ne!(
            multi.compile_fingerprint(),
            multi.with_interchip_topology(InterChipTopology::Ring).compile_fingerprint()
        );
        // Timing-only fields still collide on multi-chip systems.
        assert_eq!(
            multi.compile_fingerprint(),
            multi.with_frequency_mhz(500).compile_fingerprint()
        );
    }

    #[test]
    fn smaller_core_count_reduces_capacity() {
        let small = ArchConfig::paper_default().with_core_count(16);
        assert!(
            small.chip_weight_capacity_bytes()
                < ArchConfig::paper_default().chip_weight_capacity_bytes()
        );
        assert!(small.validate().is_ok());
    }
}
