//! Unit-level abstraction: CIM macros, elements, macro groups and the
//! auxiliary vector / scalar compute units.

use serde::{Deserialize, Serialize};

use crate::ArchError;

/// Geometry of one digital CIM macro: a modified SRAM array of
/// `rows × cols` bit-cells with embedded multiplier logic and an adder
/// tree (Table I default: 512 × 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacroConfig {
    /// Number of word-line rows (input-vector length per operation).
    pub rows: u32,
    /// Number of bit-line columns.
    pub cols: u32,
}

impl MacroConfig {
    /// Table I default geometry (512 × 64 bit-cells).
    pub fn paper_default() -> Self {
        MacroConfig { rows: 512, cols: 64 }
    }

    /// Number of bit-cells in the macro.
    pub fn cells(&self) -> u64 {
        u64::from(self.rows) * u64::from(self.cols)
    }
}

impl Default for MacroConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Geometry of one CIM element: the group of bit-cells that shares one
/// multiplier / shift-and-add column group (Table I default: 32 × 8).
///
/// The element's column width equals the weight precision in bits, so a
/// macro with 64 columns and 8-bit elements exposes `64 / 8 = 8` INT8
/// output channels per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ElementConfig {
    /// Rows sharing one multiplier (adder-tree leaf fan-in).
    pub rows: u32,
    /// Columns per element; equals the weight precision in bits.
    pub cols: u32,
}

impl ElementConfig {
    /// Table I default geometry (32 × 8).
    pub fn paper_default() -> Self {
        ElementConfig { rows: 32, cols: 8 }
    }
}

impl Default for ElementConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the per-core CIM compute unit.
///
/// The unit contains `macro_groups` macro groups (MGs) of
/// `macros_per_group` macros each. Weights inside an MG are organized
/// along the output-channel dimension so that one input broadcast produces
/// `output_channels_per_group()` INT32 partial sums per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CimUnitConfig {
    /// Number of macro groups in the unit (Table I: 16).
    pub macro_groups: u32,
    /// Number of macros per macro group (Table I: 8; swept 4–16 in Fig. 6).
    pub macros_per_group: u32,
    /// Macro geometry.
    pub macro_geometry: MacroConfig,
    /// Element geometry.
    pub element_geometry: ElementConfig,
    /// Activation precision in bits (INT8 in all paper experiments).
    pub input_bits: u32,
    /// Weight precision in bits (INT8 in all paper experiments).
    pub weight_bits: u32,
}

impl CimUnitConfig {
    /// Table I default CIM unit: 16 MGs × 8 macros of 512×64 cells.
    pub fn paper_default() -> Self {
        CimUnitConfig {
            macro_groups: 16,
            macros_per_group: 8,
            macro_geometry: MacroConfig::paper_default(),
            element_geometry: ElementConfig::paper_default(),
            input_bits: 8,
            weight_bits: 8,
        }
    }

    /// Returns a copy with a different number of macros per group (the
    /// Fig. 6 "MG size" sweep parameter).
    pub fn with_macros_per_group(mut self, macros_per_group: u32) -> Self {
        self.macros_per_group = macros_per_group;
        self
    }

    /// Total number of macros in the unit.
    pub fn total_macros(&self) -> u32 {
        self.macro_groups * self.macros_per_group
    }

    /// INT-weight output channels produced by one macro per operation.
    pub fn output_channels_per_macro(&self) -> u32 {
        self.macro_geometry.cols / self.weight_bits.max(1)
    }

    /// INT-weight output channels produced by one macro group per operation.
    pub fn output_channels_per_group(&self) -> u32 {
        self.output_channels_per_macro() * self.macros_per_group
    }

    /// Input rows activated per operation (the reduction dimension tile).
    pub fn rows_per_operation(&self) -> u32 {
        self.macro_geometry.rows
    }

    /// Weight bytes held by a single macro (equals the bit-cell count
    /// divided by eight: every bit-cell stores one weight bit).
    pub fn weight_bytes_per_macro(&self) -> u64 {
        self.macro_geometry.cells() / 8
    }

    /// Weight storage capacity of one macro group in bytes.
    pub fn weight_bytes_per_group(&self) -> u64 {
        u64::from(self.macros_per_group)
            * u64::from(self.macro_geometry.rows)
            * u64::from(self.output_channels_per_macro())
    }

    /// Weight storage capacity of the whole unit in bytes (INT8 weights).
    pub fn weight_capacity_bytes(&self) -> u64 {
        u64::from(self.macro_groups) * self.weight_bytes_per_group()
    }

    /// Multiply-accumulate operations performed by one macro-group
    /// operation that activates `rows` input rows.
    pub fn macs_per_group_operation(&self, rows: u32) -> u64 {
        u64::from(rows.min(self.rows_per_operation())) * u64::from(self.output_channels_per_group())
    }

    /// Latency in cycles of one in-situ MVM operation activating `rows`
    /// rows of a macro group.
    ///
    /// Digital CIM computes bit-serially over the activation bits. The
    /// rows of one element share a single multiplier / shift-and-add
    /// column, so the element serializes over its `element_rows` rows;
    /// all elements of the macro group operate in parallel and reduce
    /// through a pipelined adder tree of depth
    /// `log2(rows / element_rows)`.
    pub fn mvm_latency_cycles(&self, rows: u32) -> u64 {
        let rows = rows.clamp(1, self.rows_per_operation());
        let leaves = (rows / self.element_geometry.rows.max(1)).max(1);
        let tree_depth = 64 - u64::from(leaves.leading_zeros());
        self.mvm_issue_cycles(rows) + tree_depth + 1
    }

    /// Cycles during which the macro group is busy issuing one MVM that
    /// activates `rows` rows (bit phases × serialized element rows).
    pub fn mvm_issue_cycles(&self, rows: u32) -> u64 {
        let rows = rows.clamp(1, self.rows_per_operation());
        let row_steps = u64::from(rows.min(self.element_geometry.rows.max(1)));
        u64::from(self.input_bits.max(1)) * row_steps
    }

    /// Initiation interval of back-to-back full-height MVMs on the same
    /// macro group: a new operation can start once every bit phase of
    /// every serialized element row has issued (the adder tree is
    /// pipelined behind it).
    pub fn mvm_initiation_interval(&self) -> u64 {
        self.mvm_issue_cycles(self.rows_per_operation())
    }

    /// Cycles needed to program `rows` weight rows into one macro group.
    ///
    /// Weight loading is a plain SRAM write of `output channels` bytes per
    /// row, performed one row per cycle per macro (macros in a group load
    /// in parallel).
    pub fn weight_load_cycles(&self, rows: u32) -> u64 {
        u64::from(rows.clamp(1, self.rows_per_operation()))
    }

    /// Validates unit-level invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.macro_groups == 0 {
            return Err(ArchError::invalid("cim_unit.macro_groups", "must be positive"));
        }
        if self.macros_per_group == 0 {
            return Err(ArchError::invalid("cim_unit.macros_per_group", "must be positive"));
        }
        if self.macro_geometry.rows == 0 || self.macro_geometry.cols == 0 {
            return Err(ArchError::invalid(
                "cim_unit.macro_geometry",
                "rows and cols must be positive",
            ));
        }
        if self.element_geometry.rows == 0 || self.element_geometry.cols == 0 {
            return Err(ArchError::invalid(
                "cim_unit.element_geometry",
                "rows and cols must be positive",
            ));
        }
        if !self.macro_geometry.rows.is_multiple_of(self.element_geometry.rows) {
            return Err(ArchError::invalid(
                "cim_unit.element_geometry.rows",
                "element rows must divide macro rows",
            ));
        }
        if !self.macro_geometry.cols.is_multiple_of(self.element_geometry.cols) {
            return Err(ArchError::invalid(
                "cim_unit.element_geometry.cols",
                "element cols must divide macro cols",
            ));
        }
        if self.weight_bits == 0 || self.input_bits == 0 {
            return Err(ArchError::invalid("cim_unit.precision", "precisions must be positive"));
        }
        if !self.macro_geometry.cols.is_multiple_of(self.weight_bits) {
            return Err(ArchError::invalid(
                "cim_unit.weight_bits",
                "weight bits must divide macro columns",
            ));
        }
        if self.element_geometry.cols != self.weight_bits {
            return Err(ArchError::invalid(
                "cim_unit.element_geometry.cols",
                "element columns must equal the weight precision",
            ));
        }
        Ok(())
    }
}

impl Default for CimUnitConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the element-wise vector compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorUnitConfig {
    /// Number of INT8 lanes processed per cycle.
    pub lanes: u32,
    /// Pipeline depth (latency of the first result).
    pub pipeline_depth: u32,
}

impl VectorUnitConfig {
    /// Default vector unit: 32 lanes, 4-stage pipeline.
    pub fn paper_default() -> Self {
        VectorUnitConfig { lanes: 32, pipeline_depth: 4 }
    }

    /// Cycles to process `elems` elements.
    pub fn cycles_for(&self, elems: u64) -> u64 {
        if elems == 0 {
            return 0;
        }
        elems.div_ceil(u64::from(self.lanes.max(1)))
            + u64::from(self.pipeline_depth.saturating_sub(1))
    }

    /// Validates vector-unit invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.lanes == 0 {
            return Err(ArchError::invalid("vector_unit.lanes", "must be positive"));
        }
        if self.pipeline_depth == 0 {
            return Err(ArchError::invalid("vector_unit.pipeline_depth", "must be positive"));
        }
        Ok(())
    }
}

impl Default for VectorUnitConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the scalar compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScalarUnitConfig {
    /// Latency of an ALU operation in cycles.
    pub alu_latency: u32,
    /// Latency of a multiply/divide in cycles.
    pub muldiv_latency: u32,
}

impl ScalarUnitConfig {
    /// Default scalar unit: single-cycle ALU, 3-cycle multiply/divide.
    pub fn paper_default() -> Self {
        ScalarUnitConfig { alu_latency: 1, muldiv_latency: 3 }
    }

    /// Validates scalar-unit invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.alu_latency == 0 || self.muldiv_latency == 0 {
            return Err(ArchError::invalid("scalar_unit", "latencies must be positive"));
        }
        Ok(())
    }
}

impl Default for ScalarUnitConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_capacity_matches_table_i() {
        let unit = CimUnitConfig::paper_default();
        assert_eq!(unit.total_macros(), 128);
        assert_eq!(unit.output_channels_per_macro(), 8);
        assert_eq!(unit.output_channels_per_group(), 64);
        // 512 rows × 64 output channels per MG = 32 KiB, × 16 MGs = 512 KiB.
        assert_eq!(unit.weight_bytes_per_group(), 32 * 1024);
        assert_eq!(unit.weight_capacity_bytes(), 512 * 1024);
    }

    #[test]
    fn mvm_latency_grows_with_rows_and_is_at_least_bit_serial() {
        let unit = CimUnitConfig::paper_default();
        let short = unit.mvm_latency_cycles(32);
        let full = unit.mvm_latency_cycles(512);
        assert!(full > short);
        assert!(short >= u64::from(unit.input_bits));
        // 8 bit phases × 32 serialized element rows.
        assert_eq!(unit.mvm_initiation_interval(), 256);
        assert_eq!(unit.mvm_issue_cycles(16), 8 * 16);
    }

    #[test]
    fn mvm_latency_clamps_row_overflow() {
        let unit = CimUnitConfig::paper_default();
        assert_eq!(unit.mvm_latency_cycles(4096), unit.mvm_latency_cycles(512));
        assert_eq!(unit.mvm_latency_cycles(0), unit.mvm_latency_cycles(1));
    }

    #[test]
    fn macs_per_operation_scales_with_group_size() {
        let small = CimUnitConfig::paper_default().with_macros_per_group(4);
        let large = CimUnitConfig::paper_default().with_macros_per_group(16);
        assert_eq!(large.macs_per_group_operation(512), 4 * small.macs_per_group_operation(512));
    }

    #[test]
    fn validation_rejects_inconsistent_geometry() {
        let mut bad = CimUnitConfig::paper_default();
        bad.element_geometry.rows = 33;
        assert!(bad.validate().is_err());

        let mut bad = CimUnitConfig::paper_default();
        bad.weight_bits = 5;
        assert!(bad.validate().is_err());

        let mut bad = CimUnitConfig::paper_default();
        bad.macro_groups = 0;
        assert!(bad.validate().is_err());

        assert!(CimUnitConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn vector_unit_cycles() {
        let v = VectorUnitConfig::paper_default();
        assert_eq!(v.cycles_for(0), 0);
        assert_eq!(v.cycles_for(1), 1 + 3);
        assert_eq!(v.cycles_for(64), 2 + 3);
        assert!(VectorUnitConfig { lanes: 0, pipeline_depth: 1 }.validate().is_err());
    }

    #[test]
    fn scalar_unit_validation() {
        assert!(ScalarUnitConfig::paper_default().validate().is_ok());
        assert!(ScalarUnitConfig { alu_latency: 0, muldiv_latency: 1 }.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let unit = CimUnitConfig::paper_default();
        let json = serde_json::to_string(&unit).unwrap();
        let back: CimUnitConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, unit);
    }
}
