//! Chip-level abstraction: the multi-core organization, the NoC and the
//! global memory.

use serde::{Content, Deserialize, Serialize};

use crate::memory::GlobalMemoryConfig;
use crate::ArchError;

/// Dimensions of the 2-D mesh NoC connecting the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MeshDimensions {
    /// Number of mesh columns.
    pub width: u32,
    /// Number of mesh rows.
    pub height: u32,
}

impl MeshDimensions {
    /// Creates mesh dimensions.
    pub fn new(width: u32, height: u32) -> Self {
        MeshDimensions { width, height }
    }

    /// Number of router positions in the mesh.
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Returns the `(x, y)` coordinate of a core identifier (row-major).
    ///
    /// Zero-dimension meshes are rejected by [`ChipConfig::validate`]
    /// (and therefore `ArchConfig::validate`) before any coordinate
    /// arithmetic runs, so no silent clamping happens here.
    pub fn coordinates(&self, core: u32) -> (u32, u32) {
        (core % self.width, core / self.width)
    }

    /// Manhattan hop distance between two cores under XY routing.
    pub fn hops(&self, from: u32, to: u32) -> u32 {
        let (fx, fy) = self.coordinates(from);
        let (tx, ty) = self.coordinates(to);
        fx.abs_diff(tx) + fy.abs_diff(ty)
    }
}

/// Chip-level hardware description (Table I defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChipConfig {
    /// Number of cores on the chip (Table I: 64).
    pub core_count: u32,
    /// Mesh organization of the cores (8 × 8 for 64 cores).
    pub mesh: MeshDimensions,
    /// NoC flit size in bytes — the link bandwidth per cycle (Table I: 8 B).
    pub noc_flit_bytes: u32,
    /// Per-hop router latency in cycles.
    pub noc_hop_latency: u32,
    /// Global memory shared by all cores.
    pub global_memory: GlobalMemoryConfig,
    /// Clock frequency in MHz used to convert cycles into seconds.
    pub frequency_mhz: u32,
    /// Mesh node the global-memory port (and the off-chip gateway) is
    /// attached to. Historically hardcoded to node 0 inside the
    /// simulator; now part of the configuration and validated against
    /// the mesh extent.
    pub memory_port: u32,
}

impl ChipConfig {
    /// Table I default chip: 64 cores on an 8×8 mesh, 8-byte flits, 16 MB
    /// global memory, 1 GHz clock.
    pub fn paper_default() -> Self {
        ChipConfig {
            core_count: 64,
            mesh: MeshDimensions::new(8, 8),
            noc_flit_bytes: 8,
            noc_hop_latency: 1,
            global_memory: GlobalMemoryConfig::paper_default(),
            frequency_mhz: 1000,
            memory_port: 0,
        }
    }

    /// Returns a copy with the global-memory port at a different mesh
    /// node.
    pub fn with_memory_port(mut self, node: u32) -> Self {
        self.memory_port = node;
        self
    }

    /// Returns a copy with a different NoC flit size (the Fig. 6 link
    /// bandwidth sweep parameter).
    pub fn with_flit_bytes(mut self, flit_bytes: u32) -> Self {
        self.noc_flit_bytes = flit_bytes;
        self
    }

    /// Returns a copy with a different core count, adjusting the mesh to
    /// the squarest factorization.
    pub fn with_core_count(mut self, core_count: u32) -> Self {
        self.core_count = core_count;
        self.mesh = squarest_mesh(core_count);
        self
    }

    /// Duration of one clock cycle in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / (f64::from(self.frequency_mhz.max(1)) * 1.0e6)
    }

    /// Number of flits required to move `bytes` over one NoC link.
    pub fn flits_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(u64::from(self.noc_flit_bytes.max(1)))
    }

    /// Validates chip-level invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.core_count == 0 {
            return Err(ArchError::invalid("chip.core_count", "must be positive"));
        }
        if self.mesh.width == 0 || self.mesh.height == 0 {
            return Err(ArchError::invalid(
                "chip.mesh",
                format!("mesh of {}x{} has a zero dimension", self.mesh.width, self.mesh.height),
            ));
        }
        if self.mesh.nodes() < self.core_count {
            return Err(ArchError::invalid(
                "chip.mesh",
                format!(
                    "mesh of {}x{} cannot place {} cores",
                    self.mesh.width, self.mesh.height, self.core_count
                ),
            ));
        }
        if self.noc_flit_bytes == 0 {
            return Err(ArchError::invalid("chip.noc_flit_bytes", "must be positive"));
        }
        if self.frequency_mhz == 0 {
            return Err(ArchError::invalid("chip.frequency_mhz", "must be positive"));
        }
        if self.memory_port >= self.mesh.nodes() {
            return Err(ArchError::invalid(
                "chip.memory_port",
                format!(
                    "node {} is outside the {}x{} mesh",
                    self.memory_port, self.mesh.width, self.mesh.height
                ),
            ));
        }
        self.global_memory.validate()
    }
}

// Manual serde: `memory_port` is emitted only when it differs from the
// historical hardwired node 0, so the serialized form — and therefore
// the content hash the evaluation cache keys on — of every pre-existing
// configuration is byte-identical to what older engines produced.
// Deserialization accepts files that omit the field.
impl Serialize for ChipConfig {
    fn serialize(&self) -> Content {
        let mut map = vec![
            ("core_count".to_owned(), Serialize::serialize(&self.core_count)),
            ("mesh".to_owned(), Serialize::serialize(&self.mesh)),
            ("noc_flit_bytes".to_owned(), Serialize::serialize(&self.noc_flit_bytes)),
            ("noc_hop_latency".to_owned(), Serialize::serialize(&self.noc_hop_latency)),
            ("global_memory".to_owned(), Serialize::serialize(&self.global_memory)),
            ("frequency_mhz".to_owned(), Serialize::serialize(&self.frequency_mhz)),
        ];
        if self.memory_port != 0 {
            map.push(("memory_port".to_owned(), Serialize::serialize(&self.memory_port)));
        }
        Content::Map(map)
    }
}

impl Deserialize for ChipConfig {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for ChipConfig"))?;
        let required = |name: &str| {
            map.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::new(format!("missing field `{name}` in ChipConfig")))
        };
        Ok(ChipConfig {
            core_count: Deserialize::deserialize(required("core_count")?)?,
            mesh: Deserialize::deserialize(required("mesh")?)?,
            noc_flit_bytes: Deserialize::deserialize(required("noc_flit_bytes")?)?,
            noc_hop_latency: Deserialize::deserialize(required("noc_hop_latency")?)?,
            global_memory: Deserialize::deserialize(required("global_memory")?)?,
            frequency_mhz: Deserialize::deserialize(required("frequency_mhz")?)?,
            memory_port: match map.iter().find(|(k, _)| k == "memory_port") {
                Some((_, v)) => Deserialize::deserialize(v)?,
                None => 0,
            },
        })
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Returns the most square mesh that can hold `cores` nodes.
fn squarest_mesh(cores: u32) -> MeshDimensions {
    if cores == 0 {
        return MeshDimensions::new(1, 1);
    }
    let mut best = MeshDimensions::new(cores, 1);
    let mut w = 1;
    while w * w <= cores {
        if cores.is_multiple_of(w) {
            best = MeshDimensions::new(cores / w, w);
        }
        w += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chip_matches_table_i() {
        let chip = ChipConfig::paper_default();
        assert_eq!(chip.core_count, 64);
        assert_eq!(chip.noc_flit_bytes, 8);
        assert_eq!(chip.mesh.nodes(), 64);
        assert!(chip.validate().is_ok());
    }

    #[test]
    fn mesh_coordinates_and_hops() {
        let mesh = MeshDimensions::new(8, 8);
        assert_eq!(mesh.coordinates(0), (0, 0));
        assert_eq!(mesh.coordinates(9), (1, 1));
        assert_eq!(mesh.hops(0, 9), 2);
        assert_eq!(mesh.hops(7, 56), 14);
        assert_eq!(mesh.hops(5, 5), 0);
    }

    #[test]
    fn flit_count_rounds_up() {
        let chip = ChipConfig::paper_default();
        assert_eq!(chip.flits_for(0), 0);
        assert_eq!(chip.flits_for(1), 1);
        assert_eq!(chip.flits_for(8), 1);
        assert_eq!(chip.flits_for(9), 2);
        let wide = chip.with_flit_bytes(16);
        assert_eq!(wide.flits_for(9), 1);
    }

    #[test]
    fn with_core_count_builds_square_mesh() {
        let chip = ChipConfig::paper_default().with_core_count(16);
        assert_eq!(chip.mesh, MeshDimensions::new(4, 4));
        let chip = ChipConfig::paper_default().with_core_count(12);
        assert_eq!(chip.mesh.nodes(), 12);
        assert!(chip.validate().is_ok());
    }

    #[test]
    fn invalid_chips_are_rejected() {
        let mut chip = ChipConfig::paper_default();
        chip.mesh = MeshDimensions::new(4, 4);
        assert!(chip.validate().is_err());
        let mut chip = ChipConfig::paper_default();
        chip.noc_flit_bytes = 0;
        assert!(chip.validate().is_err());
        let mut chip = ChipConfig::paper_default();
        chip.core_count = 0;
        assert!(chip.validate().is_err());
    }

    #[test]
    fn cycle_seconds_from_frequency() {
        let chip = ChipConfig::paper_default();
        assert!((chip.cycle_seconds() - 1.0e-9).abs() < 1e-15);
    }

    #[test]
    fn serde_round_trip() {
        let chip = ChipConfig::paper_default();
        let text = serde_json::to_string(&chip).unwrap();
        assert!(
            !text.contains("memory_port"),
            "port node 0 keeps the historical serialized form: {text}"
        );
        let back: ChipConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, chip);

        let moved = chip.with_memory_port(27);
        let text = serde_json::to_string(&moved).unwrap();
        assert!(text.contains("memory_port"));
        let back: ChipConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, moved);
    }

    #[test]
    fn zero_dimension_meshes_are_rejected_by_validation() {
        for mesh in [MeshDimensions::new(0, 8), MeshDimensions::new(8, 0)] {
            let mut chip = ChipConfig::paper_default();
            chip.mesh = mesh;
            let error = chip.validate().unwrap_err();
            assert!(error.to_string().contains("zero dimension"), "{error}");
        }
    }

    #[test]
    fn memory_port_must_be_a_mesh_node() {
        let chip = ChipConfig::paper_default().with_memory_port(63);
        assert!(chip.validate().is_ok());
        let chip = ChipConfig::paper_default().with_memory_port(64);
        assert!(chip.validate().is_err());
    }
}
