//! Core-level abstraction: the organization of hardware resources inside
//! one CIMFlow core.

use serde::{Deserialize, Serialize};

use crate::memory::LocalMemoryConfig;
use crate::unit::{CimUnitConfig, ScalarUnitConfig, VectorUnitConfig};
use crate::ArchError;

/// Register-file sizing of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegisterFileConfig {
    /// Number of general-purpose registers (instruction-addressable).
    pub general: u32,
    /// Number of special-purpose registers.
    pub special: u32,
}

impl RegisterFileConfig {
    /// Default register file: 32 general + 6 special registers.
    pub fn paper_default() -> Self {
        RegisterFileConfig { general: 32, special: 6 }
    }

    /// Validates register-file invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.general == 0 {
            return Err(ArchError::invalid("register_file.general", "must be positive"));
        }
        if self.general > 32 {
            return Err(ArchError::invalid(
                "register_file.general",
                "the 5-bit operand fields address at most 32 registers",
            ));
        }
        Ok(())
    }
}

impl Default for RegisterFileConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Core-level hardware description.
///
/// Each core is "a basic unit of program execution with its own
/// instruction control flow" (paper Sec. III-B): it owns an instruction
/// memory, a register file, a CIM compute unit, a vector unit, a scalar
/// unit, a transfer unit and a segmented local memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreConfig {
    /// The in-memory compute unit.
    pub cim_unit: CimUnitConfig,
    /// The element-wise vector unit.
    pub vector_unit: VectorUnitConfig,
    /// The scalar ALU.
    pub scalar_unit: ScalarUnitConfig,
    /// The register file.
    pub register_file: RegisterFileConfig,
    /// The segmented local memory.
    pub local_memory: LocalMemoryConfig,
    /// Instruction-memory capacity in instructions.
    pub instruction_memory_entries: u32,
}

impl CoreConfig {
    /// Table I default core.
    pub fn paper_default() -> Self {
        CoreConfig {
            cim_unit: CimUnitConfig::paper_default(),
            vector_unit: VectorUnitConfig::paper_default(),
            scalar_unit: ScalarUnitConfig::paper_default(),
            register_file: RegisterFileConfig::paper_default(),
            local_memory: LocalMemoryConfig::paper_default(),
            instruction_memory_entries: 64 * 1024,
        }
    }

    /// Weight capacity of the core's CIM arrays in bytes.
    pub fn weight_capacity_bytes(&self) -> u64 {
        self.cim_unit.weight_capacity_bytes()
    }

    /// Peak multiply-accumulate throughput of the core in MACs per cycle,
    /// assuming every macro group issues back-to-back full-height MVMs.
    pub fn peak_macs_per_cycle(&self) -> f64 {
        let unit = &self.cim_unit;
        let macs = unit.macs_per_group_operation(unit.rows_per_operation()) as f64
            * f64::from(unit.macro_groups);
        macs / unit.mvm_initiation_interval() as f64
    }

    /// Validates the core and all nested units.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        self.cim_unit.validate()?;
        self.vector_unit.validate()?;
        self.scalar_unit.validate()?;
        self.register_file.validate()?;
        self.local_memory.validate()?;
        if self.instruction_memory_entries == 0 {
            return Err(ArchError::invalid("core.instruction_memory_entries", "must be positive"));
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_core_is_valid() {
        assert!(CoreConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn weight_capacity_matches_cim_unit() {
        let core = CoreConfig::paper_default();
        assert_eq!(core.weight_capacity_bytes(), core.cim_unit.weight_capacity_bytes());
    }

    #[test]
    fn peak_throughput_is_positive_and_scales_with_mg_size() {
        let small = CoreConfig {
            cim_unit: CimUnitConfig::paper_default().with_macros_per_group(4),
            ..CoreConfig::paper_default()
        };
        let large = CoreConfig {
            cim_unit: CimUnitConfig::paper_default().with_macros_per_group(16),
            ..CoreConfig::paper_default()
        };
        assert!(small.peak_macs_per_cycle() > 0.0);
        assert!(large.peak_macs_per_cycle() > small.peak_macs_per_cycle());
    }

    #[test]
    fn register_file_limits() {
        assert!(RegisterFileConfig { general: 33, special: 6 }.validate().is_err());
        assert!(RegisterFileConfig { general: 0, special: 6 }.validate().is_err());
        assert!(RegisterFileConfig::paper_default().validate().is_ok());
    }

    #[test]
    fn nested_invalid_unit_is_reported() {
        let mut core = CoreConfig::paper_default();
        core.cim_unit.macro_groups = 0;
        assert!(core.validate().is_err());
        let mut core = CoreConfig::paper_default();
        core.instruction_memory_entries = 0;
        assert!(core.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let core = CoreConfig::paper_default();
        let back: CoreConfig =
            serde_json::from_str(&serde_json::to_string(&core).unwrap()).unwrap();
        assert_eq!(back, core);
    }
}
