//! # cimflow-arch
//!
//! Hierarchical hardware abstraction for the CIMFlow framework,
//! reproducing the chip / core / unit hierarchy of Sec. III-B and the
//! default architecture parameters of Table I of the CIMFlow paper
//! (DAC 2025).
//!
//! The abstraction has four levels:
//!
//! * **System level** ([`SystemConfig`]) — how many chips the platform
//!   integrates and the inter-chip interconnect ([`InterChipConfig`])
//!   between them; `chip_count == 1` is the paper's platform.
//! * **Chip level** ([`ChipConfig`]) — number of cores, 2-D mesh NoC
//!   organization, flit size (link bandwidth per cycle), global memory
//!   and its port node.
//! * **Core level** ([`CoreConfig`]) — the CIM compute unit, the vector and
//!   scalar units, the register file, instruction memory and segmented
//!   local memory.
//! * **Unit level** ([`CimUnitConfig`], [`MacroConfig`], [`ElementConfig`])
//!   — macro groups, macro geometry (512×64 bit-cells by default), element
//!   geometry (32×8) and the bit-serial MAC timing model.
//!
//! An [`ArchConfig`] bundles all levels, is (de)serializable with
//! serde (the paper's "architecture configuration file" user input), can be
//! validated against structural invariants, and exposes the derived
//! quantities (weight capacity, peak throughput, address map) that the
//! compiler and simulator need.
//!
//! # Example
//!
//! ```
//! use cimflow_arch::ArchConfig;
//!
//! let arch = ArchConfig::paper_default();
//! assert_eq!(arch.chip().core_count, 64);
//! assert_eq!(arch.system.chip_count, 1);
//! // 16 MGs × 8 macros × 512 rows × 8 INT8 channels per macro = 512 KiB.
//! assert_eq!(arch.core.cim_unit.weight_capacity_bytes(), 512 * 1024);
//! arch.validate().expect("the paper default is self-consistent");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod config;
mod core;
mod error;
mod memory;
mod system;
mod unit;

pub use chip::{ChipConfig, MeshDimensions};
pub use config::{AddressMap, ArchConfig};
pub use core::{CoreConfig, RegisterFileConfig};
pub use error::ArchError;
pub use memory::{GlobalMemoryConfig, LocalMemoryConfig, SegmentKind};
pub use system::{InterChipConfig, InterChipTopology, SystemConfig};
pub use unit::{CimUnitConfig, ElementConfig, MacroConfig, ScalarUnitConfig, VectorUnitConfig};
