//! Memory-hierarchy abstraction: segmented local memory and global memory
//! in a unified address space.

use serde::{Deserialize, Serialize};

use crate::ArchError;

/// Roles of the local-memory segments.
///
/// The paper divides local memory into segments "to efficiently handle the
/// input and output of DNN layers"; this enum names those roles so the
/// compiler can plan placements symbolically before address assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Incoming activation tiles for the layer currently executing.
    Input,
    /// Produced activation tiles waiting to be consumed or shipped out.
    Output,
    /// Staging area for weight tiles before they are programmed into MGs.
    Weight,
    /// INT32 accumulator tiles and other scratch data.
    Scratch,
}

impl SegmentKind {
    /// All segment kinds in address-map order.
    pub const ALL: [SegmentKind; 4] =
        [SegmentKind::Input, SegmentKind::Output, SegmentKind::Weight, SegmentKind::Scratch];
}

/// Configuration of a core's local memory (Table I default: 512 KB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LocalMemoryConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of equally sized segments (one per [`SegmentKind`]).
    pub segments: u32,
    /// Read/write bandwidth in bytes per cycle.
    pub bandwidth_bytes_per_cycle: u32,
    /// Access latency in cycles.
    pub access_latency: u32,
}

impl LocalMemoryConfig {
    /// Table I default local memory: 512 KB, four segments, 64 B/cycle.
    pub fn paper_default() -> Self {
        LocalMemoryConfig {
            size_bytes: 512 * 1024,
            segments: 4,
            bandwidth_bytes_per_cycle: 64,
            access_latency: 2,
        }
    }

    /// Size of one segment in bytes.
    pub fn segment_bytes(&self) -> u64 {
        self.size_bytes / u64::from(self.segments.max(1))
    }

    /// Cycles to transfer `bytes` to or from local memory.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(u64::from(self.bandwidth_bytes_per_cycle.max(1)))
            + u64::from(self.access_latency)
    }

    /// Validates local-memory invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.size_bytes == 0 {
            return Err(ArchError::invalid("local_memory.size_bytes", "must be positive"));
        }
        if self.segments == 0 {
            return Err(ArchError::invalid("local_memory.segments", "must be positive"));
        }
        if !self.size_bytes.is_multiple_of(u64::from(self.segments)) {
            return Err(ArchError::invalid(
                "local_memory.segments",
                "segment count must divide the capacity",
            ));
        }
        if self.bandwidth_bytes_per_cycle == 0 {
            return Err(ArchError::invalid(
                "local_memory.bandwidth_bytes_per_cycle",
                "must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for LocalMemoryConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Configuration of the chip-level global memory (Table I default: 16 MB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalMemoryConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Peak bandwidth in bytes per cycle shared by all cores.
    pub bandwidth_bytes_per_cycle: u32,
    /// Access latency in cycles (queueing excluded).
    pub access_latency: u32,
}

impl GlobalMemoryConfig {
    /// Table I default global memory: 16 MB, 128 B/cycle, 20-cycle latency.
    pub fn paper_default() -> Self {
        GlobalMemoryConfig {
            size_bytes: 16 * 1024 * 1024,
            bandwidth_bytes_per_cycle: 128,
            access_latency: 20,
        }
    }

    /// Cycles occupied on the global-memory port by a `bytes` transfer.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(u64::from(self.bandwidth_bytes_per_cycle.max(1)))
            + u64::from(self.access_latency)
    }

    /// Validates global-memory invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.size_bytes == 0 {
            return Err(ArchError::invalid("global_memory.size_bytes", "must be positive"));
        }
        if self.bandwidth_bytes_per_cycle == 0 {
            return Err(ArchError::invalid(
                "global_memory.bandwidth_bytes_per_cycle",
                "must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for GlobalMemoryConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_memory_defaults_match_table_i() {
        let m = LocalMemoryConfig::paper_default();
        assert_eq!(m.size_bytes, 512 * 1024);
        assert_eq!(m.segment_bytes(), 128 * 1024);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn local_transfer_cycles_scale_with_bytes() {
        let m = LocalMemoryConfig::paper_default();
        assert_eq!(m.transfer_cycles(0), 0);
        assert_eq!(m.transfer_cycles(1), 1 + 2);
        assert_eq!(m.transfer_cycles(128), 2 + 2);
        assert!(m.transfer_cycles(10_000) > m.transfer_cycles(1_000));
    }

    #[test]
    fn global_memory_defaults_match_table_i() {
        let g = GlobalMemoryConfig::paper_default();
        assert_eq!(g.size_bytes, 16 * 1024 * 1024);
        assert!(g.validate().is_ok());
        assert_eq!(g.transfer_cycles(0), 0);
        assert_eq!(g.transfer_cycles(256), 2 + 20);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut m = LocalMemoryConfig::paper_default();
        m.segments = 3; // does not divide 512 KiB evenly? 512KiB/3 is not integral
        assert!(m.validate().is_err());
        m.segments = 0;
        assert!(m.validate().is_err());
        let mut g = GlobalMemoryConfig::paper_default();
        g.bandwidth_bytes_per_cycle = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn segment_kinds_are_exhaustive_and_ordered() {
        assert_eq!(SegmentKind::ALL.len(), 4);
        assert!(SegmentKind::Input < SegmentKind::Scratch);
    }

    #[test]
    fn serde_round_trip() {
        let m = LocalMemoryConfig::paper_default();
        let back: LocalMemoryConfig =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
