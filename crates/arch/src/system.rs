//! System-level abstraction: how many chips the platform integrates and
//! how they are interconnected.
//!
//! The paper's evaluation stops at one 64-core chip; the system level
//! scales past a single chip's weight capacity and MAC throughput by
//! replicating the chip and connecting the replicas through a package- or
//! board-level interconnect. A [`SystemConfig`] bundles the per-chip
//! description with the chip count and the [`InterChipConfig`]; an
//! [`ArchConfig`](crate::ArchConfig) carries it as its top level.

use serde::{Content, Deserialize, Serialize};

use crate::chip::ChipConfig;
use crate::ArchError;

/// Topology of the chip-to-chip interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterChipTopology {
    /// Every chip pair is connected by a dedicated full-duplex link
    /// (package-level point-to-point fabric); any transfer is one hop.
    PointToPoint,
    /// Chips form a ring; a transfer traverses `min(|i-j|, n-|i-j|)`
    /// links and queues behind other traffic on each of them.
    Ring,
}

/// Configuration of the inter-chip interconnect.
///
/// Links are flit-serialized exactly like the on-chip mesh, just with a
/// wider flit and a much larger per-hop latency: a transfer of `bytes`
/// occupies every traversed link for `ceil(bytes / link_bytes_per_cycle)`
/// cycles after a `link_latency_cycles` head-of-line delay per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct InterChipConfig {
    /// Link topology.
    pub topology: InterChipTopology,
    /// Link bandwidth in bytes per core-clock cycle (the inter-chip
    /// "flit" size; default 32 B ≈ a 256-bit SerDes lane bundle).
    pub link_bytes_per_cycle: u32,
    /// Head latency of one link traversal in core-clock cycles
    /// (serialization/deserialization plus time of flight).
    pub link_latency_cycles: u32,
}

impl InterChipConfig {
    /// Default interconnect: point-to-point links, 32 B/cycle,
    /// 64-cycle hop latency.
    pub fn paper_default() -> Self {
        InterChipConfig {
            topology: InterChipTopology::PointToPoint,
            link_bytes_per_cycle: 32,
            link_latency_cycles: 64,
        }
    }

    /// Number of link-serialization flits needed to carry `bytes`.
    pub fn flits_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(u64::from(self.link_bytes_per_cycle.max(1)))
        }
    }

    /// Validates interconnect invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.link_bytes_per_cycle == 0 {
            return Err(ArchError::invalid(
                "system.interconnect.link_bytes_per_cycle",
                "must be positive",
            ));
        }
        Ok(())
    }
}

impl Default for InterChipConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The system level of the architecture: one chip description, how many
/// copies of it the platform integrates, and the interconnect between
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SystemConfig {
    /// The (homogeneous) chip replicated across the system.
    pub chip: ChipConfig,
    /// Number of chips (1 = the paper's single-chip platform).
    pub chip_count: u32,
    /// Chip-to-chip interconnect.
    pub interconnect: InterChipConfig,
}

impl SystemConfig {
    /// A single-chip system around `chip` with the default interconnect
    /// (which is never exercised at `chip_count == 1`).
    pub fn single_chip(chip: ChipConfig) -> Self {
        SystemConfig { chip, chip_count: 1, interconnect: InterChipConfig::paper_default() }
    }

    /// Whether this is the plain single-chip system with the default
    /// interconnect — the configuration whose serialized form (and hence
    /// content hash) must stay identical to the historical chip-level
    /// format.
    pub fn is_single_chip_default(&self) -> bool {
        self.chip_count == 1 && self.interconnect == InterChipConfig::paper_default()
    }

    /// Total cores across all chips.
    pub fn total_cores(&self) -> u32 {
        self.chip_count * self.chip.core_count
    }

    /// Validates system-level invariants (and the chip's).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.chip_count == 0 {
            return Err(ArchError::invalid("system.chip_count", "must be positive"));
        }
        self.interconnect.validate()?;
        self.chip.validate()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::single_chip(ChipConfig::paper_default())
    }
}

// Manual deserialization so that configuration files may omit any
// system-level field: an absent `chip_count` means 1 and an absent
// `interconnect` (or interconnect sub-field) means the default — the
// single-chip files of the paper's era keep parsing unchanged.

fn field<'a>(map: &'a [(String, Content)], name: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

impl Deserialize for InterChipConfig {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map = content
            .as_map()
            .ok_or_else(|| serde::Error::new("expected map for InterChipConfig"))?;
        let default = InterChipConfig::paper_default();
        Ok(InterChipConfig {
            topology: match field(map, "topology") {
                Some(v) => topology_from_content(v)?,
                None => default.topology,
            },
            link_bytes_per_cycle: match field(map, "link_bytes_per_cycle") {
                Some(v) => Deserialize::deserialize(v)?,
                None => default.link_bytes_per_cycle,
            },
            link_latency_cycles: match field(map, "link_latency_cycles") {
                Some(v) => Deserialize::deserialize(v)?,
                None => default.link_latency_cycles,
            },
        })
    }
}

impl Deserialize for SystemConfig {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for SystemConfig"))?;
        let chip = field(map, "chip")
            .ok_or_else(|| serde::Error::new("missing field `chip` in SystemConfig"))?;
        Ok(SystemConfig {
            chip: Deserialize::deserialize(chip)?,
            chip_count: match field(map, "chip_count") {
                Some(v) => Deserialize::deserialize(v)?,
                None => 1,
            },
            interconnect: match field(map, "interconnect") {
                Some(v) => Deserialize::deserialize(v)?,
                None => InterChipConfig::paper_default(),
            },
        })
    }
}

/// Accept both the tagged enum spelling (`{"PointToPoint": null}`-style)
/// and the plain string a hand-written config file would use.
pub(crate) fn topology_from_content(content: &Content) -> Result<InterChipTopology, serde::Error> {
    if let Some(text) = content.as_str() {
        return match text {
            "PointToPoint" | "point_to_point" => Ok(InterChipTopology::PointToPoint),
            "Ring" | "ring" => Ok(InterChipTopology::Ring),
            other => Err(serde::Error::new(format!("unknown inter-chip topology `{other}`"))),
        };
    }
    InterChipTopology::deserialize(content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_system_is_single_chip_and_valid() {
        let system = SystemConfig::default();
        assert_eq!(system.chip_count, 1);
        assert!(system.is_single_chip_default());
        assert_eq!(system.total_cores(), 64);
        assert!(system.validate().is_ok());
    }

    #[test]
    fn interconnect_flits_round_up() {
        let link = InterChipConfig::paper_default();
        assert_eq!(link.flits_for(0), 0);
        assert_eq!(link.flits_for(1), 1);
        assert_eq!(link.flits_for(32), 1);
        assert_eq!(link.flits_for(33), 2);
    }

    #[test]
    fn invalid_systems_are_rejected() {
        let system = SystemConfig { chip_count: 0, ..SystemConfig::default() };
        assert!(system.validate().is_err());
        let mut system = SystemConfig::default();
        system.interconnect.link_bytes_per_cycle = 0;
        assert!(system.validate().is_err());
    }

    #[test]
    fn serde_round_trip_and_string_topologies() {
        let system = SystemConfig { chip_count: 4, ..SystemConfig::default() };
        let back: SystemConfig =
            serde_json::from_str(&serde_json::to_string(&system).unwrap()).unwrap();
        assert_eq!(back, system);
        assert_eq!(
            topology_from_content(&Content::Str("ring".into())).unwrap(),
            InterChipTopology::Ring
        );
        assert!(topology_from_content(&Content::Str("torus".into())).is_err());
    }

    #[test]
    fn omitted_system_fields_default() {
        // `chip` itself stays required: an empty chip map is an error.
        assert!(serde_json::from_str::<SystemConfig>("{\"chip\": {}}").is_err());

        let text = format!(
            "{{\"chip\": {}, \"chip_count\": 2, \"interconnect\": {{\"topology\": \"ring\"}}}}",
            serde_json::to_string(&ChipConfig::paper_default()).unwrap()
        );
        let system: SystemConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(system.chip_count, 2);
        assert_eq!(system.interconnect.topology, InterChipTopology::Ring);
        assert_eq!(
            system.interconnect.link_bytes_per_cycle,
            InterChipConfig::paper_default().link_bytes_per_cycle,
            "omitted link fields default"
        );
    }
}
