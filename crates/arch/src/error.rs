use std::error::Error;
use std::fmt;

/// Errors raised while constructing, validating or loading architecture
/// configurations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchError {
    /// A structural invariant of the configuration does not hold.
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `core.cim_unit.macro_rows`).
        field: String,
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A configuration file could not be parsed.
    ParseConfig {
        /// Underlying parser message.
        reason: String,
    },
}

impl ArchError {
    /// Convenience constructor for invariant violations.
    pub fn invalid(field: impl Into<String>, reason: impl Into<String>) -> Self {
        ArchError::InvalidConfig { field: field.into(), reason: reason.into() }
    }
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidConfig { field, reason } => {
                write!(f, "invalid architecture configuration at `{field}`: {reason}")
            }
            ArchError::ParseConfig { reason } => {
                write!(f, "failed to parse architecture configuration: {reason}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_reason() {
        let e = ArchError::invalid("chip.core_count", "must be positive");
        let msg = e.to_string();
        assert!(msg.contains("chip.core_count"));
        assert!(msg.contains("must be positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
