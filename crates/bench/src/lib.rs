//! Shared helpers for the experiment-reproduction bench targets.
//!
//! Every figure and table of the paper's evaluation section has a
//! `harness = false` bench target in `benches/` that regenerates the
//! corresponding rows/series (`cargo bench -p cimflow-bench --bench fig5`
//! etc.). EXPERIMENTS.md records the mapping and the measured outcomes.

use cimflow::{CimFlow, CimFlowError, Model, Strategy};

/// Input resolution used by the experiment harnesses.
///
/// The paper evaluates the ImageNet geometry (224 px); the reproduction
/// defaults to 64 px so that a full figure regenerates in seconds on a
/// laptop while the graph structures — and therefore every compiler
/// decision — stay identical. Override with the `CIMFLOW_RESOLUTION`
/// environment variable for full-resolution runs.
pub fn resolution() -> u32 {
    std::env::var("CIMFLOW_RESOLUTION").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Location of the on-disk evaluation cache shared by the figure
/// harnesses (`fig6`, `fig7`), so points appearing in several figures are
/// evaluated once per machine rather than once per figure.
///
/// Defaults to `target/cimflow-dse-cache.json` under the **workspace**
/// root (bench binaries run with the package directory as their working
/// directory, so a relative path would silently land in
/// `crates/bench/`); override with the `CIMFLOW_DSE_CACHE` environment
/// variable (an empty value keeps the default).
pub fn dse_cache_path() -> std::path::PathBuf {
    match std::env::var("CIMFLOW_DSE_CACHE") {
        Ok(path) if !path.is_empty() => std::path::PathBuf::from(path),
        _ => {
            // crates/bench -> workspace root.
            let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("bench crate lives two levels below the workspace root");
            workspace.join("target").join("cimflow-dse-cache.json")
        }
    }
}

/// A single measured data point of an experiment.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Model name.
    pub model: String,
    /// Strategy name.
    pub strategy: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Energy in millijoules.
    pub energy_mj: f64,
    /// Throughput in TOPS.
    pub tops: f64,
    /// Local-memory share of the total energy.
    pub local_memory_share: f64,
    /// Compute share of the total energy.
    pub compute_share: f64,
    /// NoC share of the total energy.
    pub noc_share: f64,
}

/// Compiles and simulates one model with one strategy on a workflow.
///
/// # Errors
///
/// Propagates compilation and simulation failures.
pub fn measure(
    flow: &CimFlow,
    model: &Model,
    strategy: Strategy,
) -> Result<Measurement, CimFlowError> {
    let evaluation = flow.evaluate(model, strategy)?;
    let sim = &evaluation.simulation;
    let total = sim.energy.total_pj().max(f64::MIN_POSITIVE);
    Ok(Measurement {
        model: model.name.clone(),
        strategy: strategy.to_string(),
        cycles: sim.total_cycles,
        energy_mj: sim.energy_mj(),
        tops: sim.throughput_tops(),
        local_memory_share: sim.energy.local_memory_pj / total,
        compute_share: sim.energy.compute_pj / total,
        noc_share: sim.energy.noc_pj / total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow::models;

    #[test]
    fn resolution_defaults_to_sixty_four() {
        assert_eq!(resolution(), 64);
    }

    #[test]
    fn cache_path_has_a_default() {
        assert!(dse_cache_path().to_string_lossy().contains("cimflow-dse-cache"));
    }

    #[test]
    fn measurement_shares_sum_below_one() {
        let flow = CimFlow::with_default_arch();
        let m = measure(&flow, &models::mobilenet_v2(32), Strategy::GenericMapping).unwrap();
        assert!(m.cycles > 0);
        assert!(m.energy_mj > 0.0);
        let sum = m.local_memory_share + m.compute_share + m.noc_share;
        assert!(sum > 0.0 && sum <= 1.0);
    }
}
