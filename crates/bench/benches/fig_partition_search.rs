//! Joint hierarchical partition search vs the sequential pass order —
//! the search-layer experiment behind the compiler's `SearchMode`: at
//! 1/2/4/8 chips, compare the sequential pipeline (contiguous DP split,
//! one global strategy) against the joint search (candidate splits ×
//! per-chip stage partition × per-chip strategy, scored by the estimated
//! end-to-end pipeline interval), and quantify what the simulator's
//! tile-streaming hand-off wins over transfer-at-retirement.
//!
//! The sweep runs on the `cimflow-dse` engine through the `search_modes`
//! axis (distinct cache keys per mode), sharing the on-disk evaluation
//! cache with the other figure harnesses.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_partition_search`.

use cimflow::compiler::{compile, CompileOptions};
use cimflow::sim::{HandoffMode, SimOptions, Simulator};
use cimflow::{ArchConfig, SearchMode, Strategy};
use cimflow_bench::{dse_cache_path, resolution};
use cimflow_dse::{EvalCache, Executor, SweepSpec};

const CHIP_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    let resolution = resolution();
    let spec = SweepSpec::new()
        .named("fig_partition_search")
        .with_base(ArchConfig::paper_default())
        .with_model("vgg19", resolution)
        .with_model("resnet18", resolution)
        .with_strategies(&[Strategy::DpOptimized])
        .with_search_modes(&[SearchMode::Sequential, SearchMode::Joint])
        .with_chip_counts(&CHIP_COUNTS);

    let cache_path = dse_cache_path();
    let cache = EvalCache::load(&cache_path).unwrap_or_default();
    let executor = Executor::new();
    let started = std::time::Instant::now();
    let outcomes =
        executor.run_spec(&spec, &cache).expect("fig_partition_search sweep spec is valid");
    let elapsed = started.elapsed();

    println!("=== Joint partition search vs sequential (DP strategy, resolution {resolution}) ===");
    println!(
        "engine: {} points on {} worker(s) in {elapsed:.2?}, cache {} hit(s) / {} miss(es)",
        outcomes.len(),
        executor.workers(),
        cache.stats().hits,
        cache.stats().misses
    );

    let sim_of = |model: &str, search: SearchMode, chips: u64| {
        outcomes
            .iter()
            .find(|o| {
                o.point.model.name == model
                    && o.point.search == search
                    && o.point.chip_count == chips
            })
            .and_then(|o| o.evaluation())
            .unwrap_or_else(|| panic!("{model} {search} @{chips} point failed"))
    };

    for model in ["vgg19", "resnet18"] {
        println!("\n--- {model} ---");
        println!(
            "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "chips", "search", "intvl cyc", "cycles", "overlap", "stalls", "cands"
        );
        for chips in CHIP_COUNTS.map(u64::from) {
            for search in [SearchMode::Sequential, SearchMode::Joint] {
                let evaluation = sim_of(model, search, chips);
                let sim = &evaluation.simulation;
                println!(
                    "{:>6} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10}",
                    chips,
                    search.name(),
                    sim.pipeline_interval_cycles(),
                    sim.total_cycles,
                    sim.total_overlap_cycles(),
                    sim.chip_stall_cycles.iter().sum::<u64>(),
                    evaluation.compilation.search_candidates,
                );
            }
        }

        // Shape checks backing the search-layer claims. The estimates are
        // recompiled here (compilation is cheap next to simulation and the
        // cached Evaluation does not embed the SystemPlan).
        let model_obj = cimflow::models::by_name(model, resolution).expect("zoo model");
        for chips in CHIP_COUNTS {
            let arch = ArchConfig::paper_default().with_chip_count(chips);
            let sequential = cimflow::compiler::compile_with_options(
                &model_obj,
                &arch,
                CompileOptions {
                    strategy: Strategy::DpOptimized,
                    search: SearchMode::Sequential,
                    ..CompileOptions::default()
                },
            )
            .expect("sequential compiles");
            let joint = cimflow::compiler::compile_with_options(
                &model_obj,
                &arch,
                CompileOptions {
                    strategy: Strategy::DpOptimized,
                    search: SearchMode::Joint,
                    ..CompileOptions::default()
                },
            )
            .expect("joint compiles");
            assert!(
                joint.system.estimated_interval_cycles
                    <= sequential.system.estimated_interval_cycles,
                "{model}@{chips}: joint estimate must never be worse \
                 ({} !<= {})",
                joint.system.estimated_interval_cycles,
                sequential.system.estimated_interval_cycles
            );
            println!(
                "est @{chips}: sequential {} -> joint {} cycles ({} candidate(s) explored)",
                sequential.system.estimated_interval_cycles,
                joint.system.estimated_interval_cycles,
                joint.system.explored_candidates
            );
        }

        // Pipelining still wins: at >= 2 chips the steady-state interval
        // stays below the single-chip run for both modes.
        let single = sim_of(model, SearchMode::Sequential, 1).simulation.clone();
        for chips in &CHIP_COUNTS[1..] {
            for search in [SearchMode::Sequential, SearchMode::Joint] {
                let sim = &sim_of(model, search, u64::from(*chips)).simulation;
                assert!(
                    sim.pipeline_interval_cycles() < single.pipeline_interval_cycles(),
                    "{model}@{chips} {search}: the pipeline interval must beat one chip"
                );
            }
        }
    }

    // Tile-streaming vs transfer-at-retirement on the weight-heavy model:
    // the streamed hand-off overlaps chips within one inference, cutting
    // the per-inference latency and never worsening the steady-state
    // interval.
    println!("\n--- tile streaming vs transfer-at-retirement (vgg19) ---");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "chips", "retire cyc", "stream cyc", "speedup", "overlap", "intvl delta"
    );
    let vgg = cimflow::models::vgg19(resolution);
    for chips in &CHIP_COUNTS[1..] {
        let arch = ArchConfig::paper_default().with_chip_count(*chips);
        let compiled = compile(&vgg, &arch, Strategy::DpOptimized).expect("vgg19 compiles");
        let stream = Simulator::new(&compiled).run().expect("streaming run");
        let retire = Simulator::with_options(
            &compiled,
            SimOptions { handoff: HandoffMode::AtRetirement, ..SimOptions::default() },
        )
        .run()
        .expect("retirement run");
        assert!(
            stream.total_cycles < retire.total_cycles,
            "vgg19@{chips}: streaming must cut the per-inference latency \
             ({} !< {})",
            stream.total_cycles,
            retire.total_cycles
        );
        assert!(stream.total_overlap_cycles() > 0, "vgg19@{chips}: chips must overlap");
        assert!(
            stream.pipeline_interval_cycles() <= retire.pipeline_interval_cycles(),
            "vgg19@{chips}: streaming must not worsen the steady-state interval"
        );
        println!(
            "{:>6} {:>14} {:>14} {:>11.3}x {:>12} {:>12}",
            chips,
            retire.total_cycles,
            stream.total_cycles,
            retire.total_cycles as f64 / stream.total_cycles as f64,
            stream.total_overlap_cycles(),
            retire.pipeline_interval_cycles() as i128 - stream.pipeline_interval_cycles() as i128,
        );
    }

    if let Err(e) = cache.save(&cache_path) {
        eprintln!("warning: could not persist the evaluation cache: {e}");
    } else {
        println!("\ncache: {} entries -> {}", cache.len(), cache_path.display());
    }
}
