//! Trace-replay throughput (BENCH_TRACE_REPLAY): timing-only design
//! points per second of the record-once / replay-many path against the
//! full per-point compile + simulate pipeline, on the same point family.
//!
//! The family is a frequency × memory-port grid over one compiled
//! program — exactly the shape the DSE trace store exploits: every point
//! shares the compile fingerprint, so the interpreter's per-point
//! compile + simulate is pure overhead the replay path pays once.
//! Replays are verified bit-exact against the interpreter per point
//! before any rate is reported.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_trace_replay`.

use std::time::Instant;

use cimflow::compiler::compile;
use cimflow::sim::{ReplayEngine, SimOptions, Simulator};
use cimflow::{models, ArchConfig, Strategy};
use cimflow_bench::resolution;

const FREQUENCIES: [u32; 6] = [400, 600, 800, 1000, 1200, 1600];
const PORTS: [u32; 4] = [0, 13, 27, 41];

fn main() {
    let resolution = resolution();
    let model = models::mobilenet_v2(resolution);
    let base = ArchConfig::paper_default();
    let points: Vec<(ArchConfig, SimOptions)> = FREQUENCIES
        .iter()
        .flat_map(|&frequency| {
            PORTS.iter().map(move |&port| {
                (
                    ArchConfig::paper_default()
                        .with_frequency_mhz(frequency)
                        .with_memory_port(port),
                    SimOptions::default(),
                )
            })
        })
        .collect();

    println!(
        "=== Trace-replay throughput (mobilenetv2@{resolution}, {} timing-only points) ===",
        points.len()
    );

    // Baseline: the full pipeline per point, what a timing sweep costs
    // without the trace store (the eval cache cannot help — every point
    // is a distinct architecture).
    let started = Instant::now();
    let baseline: Vec<_> = points
        .iter()
        .map(|(arch, options)| {
            let compiled = compile(&model, arch, Strategy::DpOptimized).expect("compiles");
            Simulator::with_options(&compiled, *options).run().expect("simulates")
        })
        .collect();
    let interpret_elapsed = started.elapsed();
    let interpret_rate = points.len() as f64 / interpret_elapsed.as_secs_f64();

    // Replay path: one compile + record, then batched replay.
    let started = Instant::now();
    let compiled = compile(&model, &base, Strategy::DpOptimized).expect("compiles");
    let (trace, _) = Simulator::record(&compiled).expect("records");
    let record_elapsed = started.elapsed();
    let started = Instant::now();
    let replayed = ReplayEngine::new(&trace).replay_batch(&points);
    let replay_elapsed = started.elapsed();
    // Amortized rate charges the compile + record run to the batch.
    let replay_rate = points.len() as f64 / (record_elapsed + replay_elapsed).as_secs_f64();

    // Bit-exactness gate: a fast wrong answer is worthless.
    for (index, (report, fresh)) in replayed.iter().zip(&baseline).enumerate() {
        let report = report.as_ref().expect("every timing-only point replays");
        assert_eq!(report, fresh, "point {index} must replay bit-exactly");
    }

    println!("{:>28} {:>10} {:>12}", "path", "elapsed", "points/s");
    println!(
        "{:>28} {:>10.2?} {:>12.1}",
        "compile+simulate per point", interpret_elapsed, interpret_rate
    );
    println!(
        "{:>28} {:>10.2?} {:>12.1}",
        "record once + replay",
        record_elapsed + replay_elapsed,
        replay_rate
    );
    let speedup = replay_rate / interpret_rate;
    println!("\nspeedup: {speedup:.1}x (recording run amortized into the replay rate)");
    assert!(
        speedup >= 5.0,
        "trace replay must be at least 5x the interpreter on timing-only sweeps, got {speedup:.1}x"
    );
}
