//! Serving throughput — the first service-trajectory benchmark
//! (BENCH_SERVING): end-to-end points/second of the `EvalService`
//! request/response core under 1/2/4 concurrent clients, against the
//! blocking `Executor` running the same total work, on the same worker
//! pool size and a cold cache each time.
//!
//! Each client submits a disjoint 6-point sweep (2 strategies × 3
//! macro-group sizes, at a client-distinct flit size), so total work
//! scales with the client count and no cross-client cache coalescing
//! flatters the numbers.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_serving`.

use std::sync::Arc;
use std::time::Instant;

use cimflow::Strategy;
use cimflow_bench::resolution;
use cimflow_dse::{EvalCache, EvalService, Executor, Priority, ServiceConfig, SweepSpec};

const WORKERS: usize = 4;
const CLIENTS: [usize; 3] = [1, 2, 4];
/// Client-distinct flit sizes keep every client's grid disjoint.
const FLITS: [u32; 4] = [8, 16, 32, 64];

fn client_spec(client: usize, resolution: u32) -> SweepSpec {
    SweepSpec::new()
        .named("fig_serving")
        .with_model("mobilenetv2", resolution)
        .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized])
        .with_mg_sizes(&[4, 8, 16])
        .with_flit_sizes(&[FLITS[client]])
}

fn main() {
    let resolution = resolution();
    println!(
        "=== Serving throughput (mobilenetv2@{resolution}, {WORKERS} workers, cold cache) ==="
    );
    println!(
        "{:>18} {:>8} {:>10} {:>12} {:>14}",
        "configuration", "points", "elapsed", "points/s", "vs executor"
    );

    for clients in CLIENTS {
        let specs: Vec<SweepSpec> =
            (0..clients).map(|client| client_spec(client, resolution)).collect();
        let total: usize = specs.iter().map(SweepSpec::point_count).sum();

        // Blocking baseline: one Executor runs every client's points
        // back-to-back on the same worker count.
        let cache = EvalCache::new();
        let executor = Executor::with_workers(WORKERS);
        let started = Instant::now();
        for spec in &specs {
            let outcomes = executor.run_spec(spec, &cache).expect("valid spec");
            assert!(outcomes.iter().all(|o| o.result.is_ok()));
        }
        let executor_elapsed = started.elapsed();
        let executor_rate = total as f64 / executor_elapsed.as_secs_f64();

        // The service: one pool, `clients` threads submitting and
        // waiting concurrently.
        let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(WORKERS)));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for (client, spec) in specs.iter().enumerate() {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let batch = service
                        .submit_sweep_as(&format!("client-{client}"), Priority::Normal, spec)
                        .expect("admitted");
                    let outcomes = batch.wait();
                    assert!(outcomes.iter().all(|o| o.result.is_ok()));
                });
            }
        });
        let service_elapsed = started.elapsed();
        let service_rate = total as f64 / service_elapsed.as_secs_f64();

        println!(
            "{:>16}x {:>8} {:>10.2?} {:>12.3} {:>13.2}x",
            clients,
            total,
            service_elapsed,
            service_rate,
            service_rate / executor_rate
        );
        assert_eq!(service.stats().completed as usize, total);
        assert_eq!(service.cache().stats().misses as usize, total, "disjoint grids stay cold");
    }

    println!(
        "\nThe service matches the blocking executor within noise at every client\n\
         count (same pool, same pipeline) while adding non-blocking submission,\n\
         admission control and per-tenant quotas; concurrent clients share one\n\
         warm pool instead of spawning their own."
    );
}
