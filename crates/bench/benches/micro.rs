//! Criterion micro-benchmarks of the framework components: ISA
//! encode/decode, graph construction and condensation, dependency-closure
//! enumeration + DP partitioning, NoC transfers and a full
//! compile-and-simulate run of a compact model.
//!
//! These are ablation/overhead benches supporting the design decisions
//! called out in DESIGN.md (bitmask closure enumeration, cost-model-driven
//! greedy duplication); they do not correspond to a paper figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cimflow::compiler::{compile, CondensedGraph, Strategy};
use cimflow::isa::{decode, encode, GReg, Instruction};
use cimflow::noc::{Mesh, NocConfig};
use cimflow::sim::Simulator;
use cimflow::{models, ArchConfig};

fn bench_isa(c: &mut Criterion) {
    let inst = Instruction::CimMvm {
        input: GReg::new(7).expect("valid register"),
        rows: GReg::new(10).expect("valid register"),
        output: GReg::new(9).expect("valid register"),
        mg: 3,
    };
    c.bench_function("isa/encode_decode_round_trip", |b| {
        b.iter(|| {
            let word = encode(black_box(&inst)).expect("encodable");
            black_box(decode(word).expect("decodable"))
        })
    });
}

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("nn/build_resnet18_graph", |b| {
        b.iter(|| black_box(models::resnet18(black_box(64))))
    });
    let model = models::efficientnet_b0(64);
    c.bench_function("compiler/condense_efficientnet_b0", |b| {
        b.iter(|| {
            black_box(CondensedGraph::from_graph(black_box(&model.graph)).expect("condensable"))
        })
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let arch = ArchConfig::paper_default();
    let model = models::mobilenet_v2(64);
    c.bench_function("compiler/dp_compile_mobilenet_v2", |b| {
        b.iter(|| {
            black_box(compile(black_box(&model), &arch, Strategy::DpOptimized).expect("compilable"))
        })
    });
    c.bench_function("compiler/generic_compile_mobilenet_v2", |b| {
        b.iter(|| {
            black_box(
                compile(black_box(&model), &arch, Strategy::GenericMapping).expect("compilable"),
            )
        })
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("noc/mesh_transfer_8x8", |b| {
        b.iter_batched(
            || Mesh::new(NocConfig::new(8, 8, 8)),
            |mut mesh| {
                for i in 0..64u32 {
                    black_box(mesh.transfer(i % 64, (i * 7 + 3) % 64, 256, u64::from(i)));
                }
                black_box(mesh.stats().flit_hops)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let arch = ArchConfig::paper_default();
    let model = models::mobilenet_v2(32);
    let compiled = compile(&model, &arch, Strategy::DpOptimized).expect("compilable");
    c.bench_function("sim/simulate_mobilenet_v2_32px", |b| {
        b.iter(|| black_box(Simulator::new(black_box(&compiled)).run().expect("simulates")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_isa, bench_frontend, bench_partitioning, bench_noc, bench_end_to_end
}
criterion_main!(benches);
