//! Fig. 6 — energy consumption breakdown and throughput across
//! architectures with different macro-group sizes and NoC link bandwidths,
//! for ResNet18 (compute intensive) and EfficientNetB0 (compact), compiled
//! with the generic mapping strategy.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig6`.

use cimflow::dse::sweep;
use cimflow::{models, ArchConfig, Strategy};
use cimflow_bench::resolution;

fn main() {
    let base = ArchConfig::paper_default();
    let resolution = resolution();
    let mg_sizes = [4u32, 8, 12, 16];
    let flit_sizes = [8u32, 16];

    println!("=== Fig. 6: MG size and NoC bandwidth exploration (generic mapping, resolution {resolution}) ===");
    for model in [models::resnet18(resolution), models::efficientnet_b0(resolution)] {
        println!("\n--- {} ---", model.name);
        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "flit", "MG", "TOPS", "energy mJ", "local mem", "compute", "NoC"
        );
        let points = sweep(&base, &model, &mg_sizes, &flit_sizes, Strategy::GenericMapping)
            .unwrap_or_else(|e| panic!("{}: sweep failed: {e}", model.name));
        for p in &points {
            let sim = &p.evaluation.simulation;
            let total = sim.energy.total_pj().max(f64::MIN_POSITIVE);
            println!(
                "{:>4} B {:>6} {:>12.3} {:>12.3} {:>11.1}% {:>11.1}% {:>11.1}%",
                p.flit_bytes,
                p.mg_size,
                p.throughput_tops(),
                p.energy_mj(),
                sim.energy.local_memory_pj / total * 100.0,
                sim.energy.compute_pj / total * 100.0,
                sim.energy.noc_pj / total * 100.0,
            );
        }
        // Shape checks corresponding to the paper's observations.
        let tops = |mg: u32, flit: u32| {
            points
                .iter()
                .find(|p| p.mg_size == mg && p.flit_bytes == flit)
                .map(|p| p.throughput_tops())
                .unwrap_or(0.0)
        };
        println!(
            "MG scaling (4 -> 16 macros, 8 B flit): {:.3} -> {:.3} TOPS ({:+.1}%)",
            tops(4, 8),
            tops(16, 8),
            (tops(16, 8) / tops(4, 8).max(1e-12) - 1.0) * 100.0
        );
        println!(
            "flit scaling (8 -> 16 B, MG 16): {:.3} -> {:.3} TOPS ({:+.1}%)",
            tops(16, 8),
            tops(16, 16),
            (tops(16, 16) / tops(16, 8).max(1e-12) - 1.0) * 100.0
        );
        let max_noc_share = points
            .iter()
            .map(|p| p.evaluation.simulation.energy.noc_share())
            .fold(0.0f64, f64::max);
        println!("largest NoC energy share across configurations: {:.1}%", max_noc_share * 100.0);
    }
}
