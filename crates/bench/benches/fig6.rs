//! Fig. 6 — energy consumption breakdown and throughput across
//! architectures with different macro-group sizes and NoC link bandwidths,
//! for ResNet18 (compute intensive) and EfficientNetB0 (compact), compiled
//! with the generic mapping strategy.
//!
//! The sweep runs on the `cimflow-dse` parallel engine with the
//! evaluation cache shared on disk across the figure harnesses (see
//! [`cimflow_bench::dse_cache_path`]): Fig. 7 re-uses every generic point
//! computed here without recompiling.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig6`.

use cimflow::{ArchConfig, Strategy};
use cimflow_bench::{dse_cache_path, resolution};
use cimflow_dse::{DseOutcome, EvalCache, Executor, SweepSpec};

fn main() {
    let resolution = resolution();
    let spec = SweepSpec::new()
        .named("fig6")
        .with_base(ArchConfig::paper_default())
        .with_model("resnet18", resolution)
        .with_model("efficientnetb0", resolution)
        .with_strategies(&[Strategy::GenericMapping])
        .with_mg_sizes(&[4, 8, 12, 16])
        .with_flit_sizes(&[8, 16]);

    let cache_path = dse_cache_path();
    let cache = EvalCache::load(&cache_path).unwrap_or_default();
    let executor = Executor::new();
    let started = std::time::Instant::now();
    let outcomes = executor.run_spec(&spec, &cache).expect("fig6 sweep spec is valid");
    let elapsed = started.elapsed();

    println!(
        "=== Fig. 6: MG size and NoC bandwidth exploration (generic mapping, resolution {resolution}) ==="
    );
    println!(
        "engine: {} points on {} worker(s) in {elapsed:.2?}, cache {} hit(s) / {} miss(es)",
        outcomes.len(),
        executor.workers(),
        cache.stats().hits,
        cache.stats().misses
    );

    for model in ["resnet18", "efficientnetb0"] {
        let points: Vec<&DseOutcome> =
            outcomes.iter().filter(|o| o.point.model.name == model).collect();
        println!("\n--- {model} ---");
        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "flit", "MG", "TOPS", "energy mJ", "local mem", "compute", "NoC"
        );
        for outcome in &points {
            let evaluation = outcome
                .evaluation()
                .unwrap_or_else(|| panic!("{}: point failed", outcome.point.label()));
            let sim = &evaluation.simulation;
            let total = sim.energy.total_pj().max(f64::MIN_POSITIVE);
            println!(
                "{:>4} B {:>6} {:>12.3} {:>12.3} {:>11.1}% {:>11.1}% {:>11.1}%",
                outcome.point.flit_bytes,
                outcome.point.mg_size,
                sim.throughput_tops(),
                sim.energy_mj(),
                sim.energy.local_memory_pj / total * 100.0,
                sim.energy.compute_pj / total * 100.0,
                sim.energy.noc_pj / total * 100.0,
            );
        }
        // Shape checks corresponding to the paper's observations.
        let tops = |mg: u64, flit: u64| {
            points
                .iter()
                .find(|o| o.point.mg_size == mg && o.point.flit_bytes == flit)
                .and_then(|o| o.evaluation())
                .map(|e| e.simulation.throughput_tops())
                .unwrap_or(0.0)
        };
        println!(
            "MG scaling (4 -> 16 macros, 8 B flit): {:.3} -> {:.3} TOPS ({:+.1}%)",
            tops(4, 8),
            tops(16, 8),
            (tops(16, 8) / tops(4, 8).max(1e-12) - 1.0) * 100.0
        );
        println!(
            "flit scaling (8 -> 16 B, MG 16): {:.3} -> {:.3} TOPS ({:+.1}%)",
            tops(16, 8),
            tops(16, 16),
            (tops(16, 16) / tops(16, 8).max(1e-12) - 1.0) * 100.0
        );
        let max_noc_share = points
            .iter()
            .filter_map(|o| o.evaluation())
            .map(|e| e.simulation.energy.noc_share())
            .fold(0.0f64, f64::max);
        println!("largest NoC energy share across configurations: {:.1}%", max_noc_share * 100.0);
    }

    if let Err(e) = cache.save(&cache_path) {
        eprintln!("warning: could not persist the evaluation cache: {e}");
    } else {
        println!(
            "\npersisted {} cached evaluation(s) -> {} (shared with fig7)",
            cache.len(),
            cache_path.display()
        );
    }
}
