//! Online inference traffic — the serving-mode trajectory benchmark
//! (BENCH_TRAFFIC): deterministic co-located serving of the
//! mobilenetv2 + resnet18 pair on a 4-chip system across the offered
//! rate ladder, from idle to overload.
//!
//! Every line is derived from one fixed-seed Poisson workload, so the
//! whole **stdout** table is bit-reproducible run to run — the CI gate
//! runs this bench twice and diffs the two outputs. Host-dependent
//! wall-clock numbers (the trajectory metric: simulated requests per
//! host second) go to **stderr**, deliberately outside the diff.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_traffic`.

use std::time::Instant;

use cimflow::compiler::compile;
use cimflow::sim::{SimOptions, Simulator};
use cimflow::{models, ArchConfig, ServeModel, Strategy, WorkloadSpec};
use cimflow_bench::resolution;

const CHIPS: u32 = 4;
const REQUESTS: u64 = 256;
const RATES: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

fn main() {
    let resolution = resolution();
    let arch = ArchConfig::paper_default().with_chip_count(CHIPS);
    let mobilenet = compile(&models::mobilenet_v2(resolution), &arch, Strategy::DpOptimized)
        .expect("mobilenetv2 compiles");
    let resnet = compile(&models::resnet18(resolution), &arch, Strategy::DpOptimized)
        .expect("resnet18 compiles");
    let served = [
        ServeModel::compiled("mobilenetv2", &mobilenet),
        ServeModel::compiled("resnet18", &resnet),
    ];
    let workload = WorkloadSpec { requests: REQUESTS, ..WorkloadSpec::default() };

    println!(
        "=== BENCH_TRAFFIC: co-located serving, mobilenetv2 + resnet18 on {CHIPS} chips \
         ({REQUESTS} requests, seed {}) ===",
        workload.seed
    );
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>11} {:>8} {:>10}",
        "offered qps", "p50 us", "p99 us", "goodput qps", "mean batch", "backlog", "energy mJ"
    );
    let mut total_requests = 0u64;
    let started = Instant::now();
    for offered_qps in RATES {
        let rate_start = Instant::now();
        let report = Simulator::serve(&served, &workload, offered_qps, SimOptions::default())
            .expect("the workload serves");
        let host = rate_start.elapsed().as_secs_f64();
        total_requests += report.requests;
        println!(
            "{:>12} {:>12.1} {:>12.1} {:>14.1} {:>11.2} {:>8} {:>10.3}",
            offered_qps,
            report.p50_latency_us(),
            report.p99_latency_us(),
            report.goodput_qps,
            report.mean_batch,
            report.peak_queue_depth,
            report.energy_mj
        );
        eprintln!(
            "  [host] {offered_qps} qps: {:.0} simulated requests per host second",
            report.requests as f64 / host.max(1e-9)
        );
        if offered_qps == RATES[RATES.len() - 1] {
            println!(
                "{:>12} goodput pinned at {:.1} qps (pipeline bound {:.1} qps)",
                "saturation:", report.goodput_qps, report.saturation_qps
            );
        }
    }
    eprintln!(
        "  [host] served {total_requests} requests across {} rates in {:.2?}",
        RATES.len(),
        started.elapsed()
    );
}
