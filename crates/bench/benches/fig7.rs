//! Fig. 7 — the software/hardware design space categorized by macro-group
//! size: energy versus throughput for the generic and the DP-optimized
//! mapping across MG sizes and NoC flit sizes, for ResNet18 and
//! EfficientNetB0.
//!
//! The sweep runs on the `cimflow-dse` parallel engine and shares its
//! on-disk evaluation cache with Fig. 6: every generic-mapping point of
//! this figure also appears there, so a `fig6` run followed by `fig7`
//! serves half of this grid from the cache. The engine's Pareto
//! extraction prints the (cycles, energy) frontier the paper's scatter
//! plot visualizes.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig7`.

use cimflow::{ArchConfig, Strategy};
use cimflow_bench::{dse_cache_path, resolution};
use cimflow_dse::{analysis, DseOutcome, EvalCache, Executor, SweepSpec};

fn main() {
    let resolution = resolution();
    let spec = SweepSpec::new()
        .named("fig7")
        .with_base(ArchConfig::paper_default())
        .with_model("resnet18", resolution)
        .with_model("efficientnetb0", resolution)
        .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized])
        .with_mg_sizes(&[4, 8, 12, 16])
        .with_flit_sizes(&[8, 16]);

    let cache_path = dse_cache_path();
    let cache = EvalCache::load(&cache_path).unwrap_or_default();
    let executor = Executor::new();
    let started = std::time::Instant::now();
    let outcomes = executor.run_spec(&spec, &cache).expect("fig7 sweep spec is valid");
    let elapsed = started.elapsed();

    println!("=== Fig. 7: software/hardware design space (resolution {resolution}) ===");
    println!(
        "engine: {} points on {} worker(s) in {elapsed:.2?}, cache {} hit(s) / {} miss(es)",
        outcomes.len(),
        executor.workers(),
        cache.stats().hits,
        cache.stats().misses
    );

    for model in ["resnet18", "efficientnetb0"] {
        let points: Vec<&DseOutcome> =
            outcomes.iter().filter(|o| o.point.model.name == model).collect();
        println!("\n--- {model} ---");
        println!(
            "{:>12} {:>6} {:>6} {:>14} {:>14}",
            "mapping", "MG", "flit", "throughput TOPS", "energy mJ"
        );
        for outcome in &points {
            let evaluation = outcome
                .evaluation()
                .unwrap_or_else(|| panic!("{}: point failed", outcome.point.label()));
            println!(
                "{:>12} {:>6} {:>4} B {:>14.3} {:>14.3}",
                outcome.point.strategy.to_string(),
                outcome.point.mg_size,
                outcome.point.flit_bytes,
                evaluation.simulation.throughput_tops(),
                evaluation.simulation.energy_mj()
            );
        }

        // Shape check: for every hardware configuration the optimized
        // mapping should dominate (or match) the generic mapping envelope.
        let find = |strategy: Strategy, mg: u64, flit: u64| {
            points
                .iter()
                .find(|o| {
                    o.point.strategy == strategy
                        && o.point.mg_size == mg
                        && o.point.flit_bytes == flit
                })
                .and_then(|o| o.evaluation())
        };
        let mut dominated = 0usize;
        let mut total = 0usize;
        for &mg in &[4u64, 8, 12, 16] {
            for &flit in &[8u64, 16] {
                if let (Some(generic), Some(dp)) = (
                    find(Strategy::GenericMapping, mg, flit),
                    find(Strategy::DpOptimized, mg, flit),
                ) {
                    total += 1;
                    if dp.simulation.throughput_tops()
                        >= generic.simulation.throughput_tops() * 0.99
                    {
                        dominated += 1;
                    }
                }
            }
        }
        println!("optimized mapping matches or beats generic mapping in {dominated}/{total} configurations");

        // The engine's frontier extraction over this model's points.
        let model_outcomes: Vec<DseOutcome> = points.iter().map(|&o| o.clone()).collect();
        let frontier = analysis::pareto_frontier(&model_outcomes);
        println!("(cycles, energy) Pareto frontier: {} of {} points", frontier.len(), points.len());
        for index in frontier {
            let outcome = &model_outcomes[index];
            if let Some(evaluation) = outcome.evaluation() {
                println!(
                    "  {:>12} MG {:>2} flit {:>2} B: {:>12} cycles {:>10.3} mJ",
                    outcome.point.strategy.to_string(),
                    outcome.point.mg_size,
                    outcome.point.flit_bytes,
                    evaluation.simulation.total_cycles,
                    evaluation.simulation.energy_mj()
                );
            }
        }
    }

    if let Err(e) = cache.save(&cache_path) {
        eprintln!("warning: could not persist the evaluation cache: {e}");
    } else {
        println!(
            "\npersisted {} cached evaluation(s) -> {} (shared with fig6)",
            cache.len(),
            cache_path.display()
        );
    }
}
