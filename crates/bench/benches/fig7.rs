//! Fig. 7 — the software/hardware design space categorized by macro-group
//! size: energy versus throughput for the generic and the DP-optimized
//! mapping across MG sizes and NoC flit sizes, for ResNet18 and
//! EfficientNetB0.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig7`.

use cimflow::dse::sweep_strategies;
use cimflow::{models, ArchConfig, Strategy};
use cimflow_bench::resolution;

fn main() {
    let base = ArchConfig::paper_default();
    let resolution = resolution();
    let mg_sizes = [4u32, 8, 12, 16];
    let flit_sizes = [8u32, 16];
    let strategies = [Strategy::GenericMapping, Strategy::DpOptimized];

    println!("=== Fig. 7: software/hardware design space (resolution {resolution}) ===");
    for model in [models::resnet18(resolution), models::efficientnet_b0(resolution)] {
        println!("\n--- {} ---", model.name);
        println!(
            "{:>12} {:>6} {:>6} {:>14} {:>14}",
            "mapping", "MG", "flit", "throughput TOPS", "energy mJ"
        );
        let points = sweep_strategies(&base, &model, &mg_sizes, &flit_sizes, &strategies)
            .unwrap_or_else(|e| panic!("{}: sweep failed: {e}", model.name));
        for p in &points {
            println!(
                "{:>12} {:>6} {:>4} B {:>14.3} {:>14.3}",
                p.strategy.to_string(),
                p.mg_size,
                p.flit_bytes,
                p.throughput_tops(),
                p.energy_mj()
            );
        }
        // Shape check: for every hardware configuration the optimized
        // mapping should dominate (or match) the generic mapping envelope.
        let mut dominated = 0usize;
        let mut total = 0usize;
        for &mg in &mg_sizes {
            for &flit in &flit_sizes {
                let generic = points
                    .iter()
                    .find(|p| p.strategy == Strategy::GenericMapping && p.mg_size == mg && p.flit_bytes == flit);
                let dp = points
                    .iter()
                    .find(|p| p.strategy == Strategy::DpOptimized && p.mg_size == mg && p.flit_bytes == flit);
                if let (Some(generic), Some(dp)) = (generic, dp) {
                    total += 1;
                    if dp.throughput_tops() >= generic.throughput_tops() * 0.99 {
                        dominated += 1;
                    }
                }
            }
        }
        println!("optimized mapping matches or beats generic mapping in {dominated}/{total} configurations");
    }
}
