//! Multi-chip scaling curve — the scale-out experiment past the paper's
//! single 64-core chip: per-inference latency, steady-state pipelined
//! throughput, energy and inter-chip traffic across 1/2/4/8 chips for a
//! weight-heavy model (VGG19, which exceeds one chip's CIM capacity) and
//! a compact one (ResNet18).
//!
//! The sweep runs on the `cimflow-dse` parallel engine through the
//! `chip_counts` axis, sharing the on-disk evaluation cache with the
//! other figure harnesses.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_multichip`.

use cimflow::{ArchConfig, Strategy};
use cimflow_bench::{dse_cache_path, resolution};
use cimflow_dse::{DseOutcome, EvalCache, Executor, SweepSpec};

const CHIP_COUNTS: [u32; 4] = [1, 2, 4, 8];

fn main() {
    let resolution = resolution();
    let spec = SweepSpec::new()
        .named("fig_multichip")
        .with_base(ArchConfig::paper_default())
        .with_model("vgg19", resolution)
        .with_model("resnet18", resolution)
        .with_strategies(&[Strategy::DpOptimized])
        .with_chip_counts(&CHIP_COUNTS);

    let cache_path = dse_cache_path();
    let cache = EvalCache::load(&cache_path).unwrap_or_default();
    let executor = Executor::new();
    let started = std::time::Instant::now();
    let outcomes = executor.run_spec(&spec, &cache).expect("fig_multichip sweep spec is valid");
    let elapsed = started.elapsed();

    println!("=== Multi-chip scaling (DP-optimized, resolution {resolution}) ===");
    println!(
        "engine: {} points on {} worker(s) in {elapsed:.2?}, cache {} hit(s) / {} miss(es)",
        outcomes.len(),
        executor.workers(),
        cache.stats().hits,
        cache.stats().misses
    );

    let single_chip_capacity = ArchConfig::paper_default().chip_weight_capacity_bytes();
    for model in ["vgg19", "resnet18"] {
        let points: Vec<&DseOutcome> =
            outcomes.iter().filter(|o| o.point.model.name == model).collect();
        println!("\n--- {model} ---");
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14}",
            "chips", "cycles", "intvl cyc", "TOPS", "pipe TOPS", "energy mJ", "inter-chip KiB"
        );
        for outcome in &points {
            let evaluation = outcome
                .evaluation()
                .unwrap_or_else(|| panic!("{}: point failed", outcome.point.label()));
            let sim = &evaluation.simulation;
            println!(
                "{:>6} {:>12} {:>12} {:>12.3} {:>12.3} {:>12.3} {:>14}",
                outcome.point.chip_count,
                sim.total_cycles,
                sim.pipeline_interval_cycles(),
                sim.throughput_tops(),
                sim.pipelined_throughput_tops(),
                sim.energy_mj(),
                sim.interchip.bytes / 1024,
            );
        }

        // Shape checks backing the scale-out claims.
        let sim_at = |chips: u64| {
            points
                .iter()
                .find(|o| o.point.chip_count == chips)
                .and_then(|o| o.evaluation())
                .map(|e| e.simulation.clone())
                .expect("every chip count evaluated")
        };
        let single = sim_at(1);
        let mut previous_interval = single.pipeline_interval_cycles();
        for chips in &CHIP_COUNTS[1..] {
            let sim = sim_at(u64::from(*chips));
            let interval = sim.pipeline_interval_cycles();
            assert!(
                interval < previous_interval,
                "{model}: the pipeline bottleneck must shrink with every added chip \
                 ({chips} chips: {interval} !< {previous_interval})"
            );
            previous_interval = interval;
            assert!(sim.interchip.bytes > 0, "{model}: cut activations cross the fabric");
            assert!(
                sim.total_cycles as f64 <= single.total_cycles as f64 * 1.2,
                "{model}: per-inference latency stays near the single-chip run"
            );
        }
        let eight = sim_at(8);
        assert!(
            eight.pipelined_throughput_tops() >= 2.0 * single.pipelined_throughput_tops(),
            "{model}: 8 chips must at least double the steady-state rate"
        );
        println!(
            "shape ok: interval {} -> {} cycles (x{:.2} pipelined throughput at 8 chips)",
            single.pipeline_interval_cycles(),
            eight.pipeline_interval_cycles(),
            eight.pipelined_throughput_tops() / single.pipelined_throughput_tops()
        );
    }

    // The headline capability: VGG19's weights exceed one chip's CIM
    // arrays, yet every multi-chip point compiled and simulated above.
    let vgg_weights = cimflow::models::vgg19(resolution).graph.stats().total_weight_bytes;
    assert!(vgg_weights > single_chip_capacity, "vgg19 must overflow one chip's arrays");
    println!(
        "\nvgg19 ({} MiB of weights) exceeds one chip's {} MiB CIM capacity; \
         served at every chip count.",
        vgg_weights >> 20,
        single_chip_capacity >> 20
    );

    if let Err(e) = cache.save(&cache_path) {
        eprintln!("warning: could not persist the evaluation cache: {e}");
    } else {
        println!("cache: {} entries -> {}", cache.len(), cache_path.display());
    }
}
