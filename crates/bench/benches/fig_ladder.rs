//! Calibrated fidelity ladder vs fixed-split successive halving — the
//! experiment behind the `FidelityLadder` scheduler: on the fig_explore
//! design space and at the same 25% evaluation budget, successive
//! halving that *adapts* its scouting share to the measured per-model
//! rank fidelity of the coarse proxy must match or beat the historical
//! fixed half-budget split on per-model frontier hypervolume — while the
//! default evolutionary search keeps its ≥ 90% acceptance bar.
//!
//! The bench prints a `BENCH_LADDER` trajectory per arm (points
//! evaluated vs frontier-quality after each generation), the final
//! per-rung evaluation split, and the measured Kendall-tau rank
//! fidelities the adaptive arm calibrated online. The exhaustive
//! baseline shares the on-disk evaluation cache with the other figure
//! harnesses.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_ladder`.

use std::collections::BTreeMap;

use cimflow::Strategy;
use cimflow_bench::{dse_cache_path, resolution};
use cimflow_dse::{
    analysis, explore, EvalCache, EvalService, Executor, ExploreAlgorithm, ExploreReport,
    ExploreSpec, ServiceConfig, SweepSpec,
};

/// The fixed seed of the headline run (every arm's trajectory is fully
/// deterministic given the spec, so these numbers are reproducible).
const SEED: u64 = 20;

/// Worst per-model hypervolume ratio of a report against the grid.
fn worst_ratio(
    report: &ExploreReport,
    grid_volume: &BTreeMap<String, f64>,
    references: &BTreeMap<String, (u64, f64)>,
) -> f64 {
    let volumes = analysis::hypervolume_by_model(&report.outcomes, references);
    let mut worst = f64::INFINITY;
    for (model, &grid_hv) in grid_volume {
        let ratio = if grid_hv > 0.0 { volumes[model] / grid_hv } else { 1.0 };
        worst = worst.min(ratio);
    }
    worst
}

fn print_arm(
    name: &str,
    report: &ExploreReport,
    grid_volume: &BTreeMap<String, f64>,
    references: &BTreeMap<String, (u64, f64)>,
) {
    println!("\n--- {name} ---");
    println!(
        "{} of {} budget used: {} full-fidelity point(s), {} coarse, scout share {:.2}{}",
        report.budget_used,
        report.budget,
        report.evaluated,
        report.coarse_evaluated,
        report.scout_share,
        if report.stalled { " (stopped early: hypervolume stalled)" } else { "" }
    );
    let split: Vec<String> =
        report.rung_evaluated.iter().map(|(rung, count)| format!("{rung}={count}")).collect();
    println!("rung split: {}", if split.is_empty() { "none".to_owned() } else { split.join(" ") });
    if !report.rank_fidelity.is_empty() {
        let taus: Vec<String> =
            report.rank_fidelity.iter().map(|(key, tau)| format!("{key}={tau:.3}")).collect();
        println!("rank fidelity: {}", taus.join(" "));
    }

    // Points-evaluated vs frontier-quality trajectory, one row per
    // generation, over the full-fidelity outcome prefix.
    println!("BENCH_LADDER {:>6} {:>8} {:>10} {:>14}", "gen", "evals", "frontier", "hv vs grid");
    let mut prefix = 0;
    let mut evals = 0;
    for generation in &report.generations {
        prefix += generation.submitted - generation.coarse;
        evals += generation.submitted;
        let volumes = analysis::hypervolume_by_model(&report.outcomes[..prefix], references);
        let ratios: Vec<f64> = grid_volume
            .iter()
            .map(|(model, &grid)| if grid > 0.0 { volumes[model] / grid } else { 1.0 })
            .collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        println!(
            "BENCH_LADDER {:>6} {:>8} {:>10} {:>13.1}%",
            generation.index,
            evals,
            generation.frontier_points,
            100.0 * mean
        );
    }

    let volumes = analysis::hypervolume_by_model(&report.outcomes, references);
    for (model, &grid_hv) in grid_volume {
        let ratio = if grid_hv > 0.0 { volumes[model] / grid_hv } else { 1.0 };
        println!(
            "{model:>16}: {:>5.1}% of the grid frontier hypervolume, {} frontier point(s)",
            ratio * 100.0,
            report.frontier.get(model).map_or(0, Vec::len),
        );
    }
}

fn main() {
    let resolution = resolution();
    let space = SweepSpec::new()
        .named("fig_ladder")
        .with_model("vgg19", resolution)
        .with_model("resnet18", resolution)
        .with_strategies(&[Strategy::DpOptimized])
        .with_chip_counts(&[1, 2, 4, 8])
        .with_mg_sizes(&[2, 4, 8])
        .with_flit_sizes(&[8, 16, 32]);
    let grid_points = space.point_count();
    let budget = (grid_points / 4) as u64;

    println!("=== Calibrated fidelity ladder vs fixed-split halving (resolution {resolution}) ===");
    println!(
        "space: {grid_points} points (2 models x 4 chip counts x 3 MG x 3 flit); \
         budget {budget} (25%), seed {SEED}"
    );

    let cache_path = dse_cache_path();
    let cache = EvalCache::load(&cache_path).unwrap_or_default();
    let started = std::time::Instant::now();
    let grid = Executor::new().run_spec(&space, &cache).expect("fig_ladder space is valid");
    println!(
        "exhaustive grid: {} evaluations in {:.2?} ({} cache hit(s))",
        grid.len(),
        started.elapsed(),
        cache.stats().hits
    );
    let references = analysis::reference_points(&grid, 1.01);
    let grid_volume = analysis::hypervolume_by_model(&grid, &references);

    // Arm 1: historical fixed-split successive halving — the scouting
    // share is pinned to the half-budget cap no matter what the coarse
    // proxy misranks.
    let fixed_spec = ExploreSpec::new(space.clone())
        .with_budget(budget)
        .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
        .with_seed(SEED)
        .with_scout_share(Some(0.5));
    let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
    let fixed = explore(&fixed_spec, &service).expect("fixed-split halving runs");
    print_arm(
        "fixed-split successive halving (scout share pinned at 0.50)",
        &fixed,
        &grid_volume,
        &references,
    );

    // Arm 2: the calibrated ladder — same algorithm, same budget, same
    // seed, but the scouting share follows the online Kendall-tau rank
    // fidelity measured per (model, rung).
    let ladder_spec = ExploreSpec::new(space.clone())
        .with_budget(budget)
        .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
        .with_seed(SEED);
    let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
    let ladder = explore(&ladder_spec, &service).expect("ladder-scheduled halving runs");
    print_arm(
        "calibrated ladder successive halving (adaptive scout share)",
        &ladder,
        &grid_volume,
        &references,
    );

    // Arm 3: the default evolutionary search, which carries the ≥ 90%
    // acceptance bar of fig_explore and must stay there under the
    // ladder refactor.
    let evo_spec = ExploreSpec::new(space.clone())
        .with_budget(budget)
        .with_algorithm(ExploreAlgorithm::Evolutionary)
        .with_seed(SEED);
    let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
    let evolutionary = explore(&evo_spec, &service).expect("evolutionary search runs");
    print_arm("evolutionary (default ladder)", &evolutionary, &grid_volume, &references);

    let fixed_worst = worst_ratio(&fixed, &grid_volume, &references);
    let ladder_worst = worst_ratio(&ladder, &grid_volume, &references);
    let evo_worst = worst_ratio(&evolutionary, &grid_volume, &references);
    println!(
        "\nworst per-model hv ratio: fixed-split {:.1}% | calibrated ladder {:.1}% | \
         evolutionary {:.1}%",
        fixed_worst * 100.0,
        ladder_worst * 100.0,
        evo_worst * 100.0
    );

    for (name, report) in [("fixed", &fixed), ("ladder", &ladder), ("evolutionary", &evolutionary)]
    {
        assert!(
            report.budget_used * 4 <= grid_points as u64,
            "{name}: budget {} must stay within 25% of the {grid_points}-point grid",
            report.budget_used
        );
    }

    // The gate: at equal budget, scheduling over the calibrated ladder
    // must never do worse than the historical fixed split (ties are
    // fine — on spaces where the proxy ranks perfectly both arms spend
    // identically).
    assert!(
        ladder_worst >= fixed_worst - 1e-9,
        "calibrated ladder fell below fixed-split halving: {:.1}% < {:.1}%",
        ladder_worst * 100.0,
        fixed_worst * 100.0
    );
    assert!(
        evo_worst >= 0.90,
        "evolutionary: per-model frontier hypervolume fell to {:.1}% of the grid's (floor 90%)",
        evo_worst * 100.0
    );

    if let Err(e) = cache.save(&cache_path) {
        eprintln!("warning: could not persist the evaluation cache: {e}");
    } else {
        println!("\ncache: {} entries -> {}", cache.len(), cache_path.display());
    }
}
