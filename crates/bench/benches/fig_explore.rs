//! Adaptive exploration vs the exhaustive grid — the experiment behind
//! the `cimflow-dse explore` engine: on the multi-chip design space
//! (models × chip counts × MG sizes × flit sizes), the Pareto-guided
//! explorers must recover ≥ 90% of the exhaustive grid's per-model
//! (cycles, energy) frontier hypervolume while submitting ≤ 25% of the
//! grid's evaluations — deterministically, from a fixed seed.
//!
//! The bench prints the per-generation points-evaluated-vs-frontier-
//! quality trajectory for both algorithms, plus the per-model end-state
//! ratio against the grid. The exhaustive baseline shares the on-disk
//! evaluation cache with the other figure harnesses.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_explore`.

use std::collections::BTreeMap;

use cimflow::Strategy;
use cimflow_bench::{dse_cache_path, resolution};
use cimflow_dse::{
    analysis, explore, EvalCache, EvalService, Executor, ExploreAlgorithm, ExploreSpec,
    ServiceConfig, SweepSpec,
};

/// The fixed seed of the headline run (the trajectory is fully
/// deterministic given the spec, so these numbers are reproducible).
const SEED: u64 = 20;

fn mean_ratio(volumes: &BTreeMap<String, f64>, baseline: &BTreeMap<String, f64>) -> f64 {
    let ratios: Vec<f64> = baseline
        .iter()
        .map(|(model, &grid)| if grid > 0.0 { volumes[model] / grid } else { 1.0 })
        .collect();
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

fn main() {
    let resolution = resolution();
    let space = SweepSpec::new()
        .named("fig_explore")
        .with_model("vgg19", resolution)
        .with_model("resnet18", resolution)
        .with_strategies(&[Strategy::DpOptimized])
        .with_chip_counts(&[1, 2, 4, 8])
        .with_mg_sizes(&[2, 4, 8])
        .with_flit_sizes(&[8, 16, 32]);
    let grid_points = space.point_count();
    let budget = (grid_points / 4) as u64;

    println!("=== Adaptive exploration vs the exhaustive grid (resolution {resolution}) ===");
    println!(
        "space: {grid_points} points (2 models x 4 chip counts x 3 MG x 3 flit); \
         budget {budget} (25%), seed {SEED}"
    );

    let cache_path = dse_cache_path();
    let cache = EvalCache::load(&cache_path).unwrap_or_default();
    let started = std::time::Instant::now();
    let grid = Executor::new().run_spec(&space, &cache).expect("fig_explore space is valid");
    println!(
        "exhaustive grid: {} evaluations in {:.2?} ({} cache hit(s))",
        grid.len(),
        started.elapsed(),
        cache.stats().hits
    );

    // One reference point per model — weakly worse than every grid
    // point — shared by all hypervolume comparisons.
    let references = analysis::reference_points(&grid, 1.01);
    let grid_volume = analysis::hypervolume_by_model(&grid, &references);

    for algorithm in [ExploreAlgorithm::Evolutionary, ExploreAlgorithm::SuccessiveHalving] {
        let spec = ExploreSpec::new(space.clone())
            .with_budget(budget)
            .with_algorithm(algorithm)
            .with_seed(SEED);
        let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
        let started = std::time::Instant::now();
        let report = explore(&spec, &service).expect("exploration runs");
        let elapsed = started.elapsed();

        println!("\n--- {algorithm} ---");
        println!(
            "{} of {} budget used in {elapsed:.2?}: {} full-fidelity point(s), {} coarse",
            report.budget_used, report.budget, report.evaluated, report.coarse_evaluated
        );
        // Points-evaluated vs frontier-quality trajectory: hypervolume
        // ratio of the outcome prefix recorded after each generation.
        println!("{:>6} {:>12} {:>10} {:>14}", "gen", "evals", "frontier", "hv vs grid");
        let mut prefix = 0;
        let mut evals = 0;
        for generation in &report.generations {
            prefix += generation.submitted - generation.coarse;
            evals += generation.submitted;
            let volumes = analysis::hypervolume_by_model(&report.outcomes[..prefix], &references);
            println!(
                "{:>6} {:>12} {:>10} {:>13.1}%",
                generation.index,
                evals,
                generation.frontier_points,
                100.0 * mean_ratio(&volumes, &grid_volume)
            );
        }

        let volumes = analysis::hypervolume_by_model(&report.outcomes, &references);
        let mut worst = f64::INFINITY;
        for (model, &grid_hv) in &grid_volume {
            let ratio = if grid_hv > 0.0 { volumes[model] / grid_hv } else { 1.0 };
            worst = worst.min(ratio);
            println!(
                "{model:>16}: {:>5.1}% of the grid frontier hypervolume, \
                 {} frontier point(s) vs {}",
                ratio * 100.0,
                report.frontier.get(model).map_or(0, Vec::len),
                analysis::pareto_frontier_by_model(&grid)[model].len()
            );
        }

        // The acceptance bar — >= 90% of the exhaustive frontier at
        // <= 25% of its evaluations, per model, from the fixed seed —
        // is carried by the evolutionary search. Successive halving
        // pays for its coarse scouting in budget and inherits the
        // fidelity proxy's noise (e.g. resnet18's best MG size flips
        // between 32 px and 64 px), so it is held to a sanity floor and
        // reported as the multi-fidelity comparison.
        assert!(
            report.budget_used * 4 <= grid_points as u64,
            "{algorithm}: budget {} must stay within 25% of the {grid_points}-point grid",
            report.budget_used
        );
        let floor = match algorithm {
            ExploreAlgorithm::Evolutionary => 0.90,
            ExploreAlgorithm::SuccessiveHalving => 0.50,
        };
        assert!(
            worst >= floor,
            "{algorithm}: per-model frontier hypervolume fell to {:.1}% of the grid's \
             (floor {:.0}%)",
            worst * 100.0,
            floor * 100.0
        );
    }

    if let Err(e) = cache.save(&cache_path) {
        eprintln!("warning: could not persist the evaluation cache: {e}");
    } else {
        println!("\ncache: {} entries -> {}", cache.len(), cache_path.display());
    }
}
