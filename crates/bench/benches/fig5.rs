//! Fig. 5 — normalized speed and energy of the three compilation
//! strategies (generic mapping, operator duplication, DP-based
//! optimization) across the four benchmark DNNs.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig5`. The paper reports
//! up to 2.8× speedup and 61.7% energy reduction for the DP-based
//! approach; the reproduction checks the *shape* (DP ≥ duplication ≥
//! generic, largest gains on the compact models), not the absolute
//! factors, since the substrate is a calibrated simulator rather than the
//! authors' testbed (see EXPERIMENTS.md).

use cimflow::{models, CimFlow, Strategy};
use cimflow_bench::{measure, resolution};

fn main() {
    let flow = CimFlow::with_default_arch();
    let resolution = resolution();
    println!("=== Fig. 5: compilation strategy comparison (input resolution {resolution}) ===");
    println!(
        "{:<16} {:>13} {:>14} {:>18} {:>18}",
        "model", "strategy", "cycles", "normalized speed", "normalized energy"
    );

    let mut best_speedup: f64 = 0.0;
    let mut best_energy_saving: f64 = 0.0;
    for model in models::benchmark_suite(resolution) {
        let baseline = measure(&flow, &model, Strategy::GenericMapping)
            .unwrap_or_else(|e| panic!("{}: generic mapping failed: {e}", model.name));
        for strategy in Strategy::ALL {
            let m = measure(&flow, &model, strategy)
                .unwrap_or_else(|e| panic!("{}: {strategy} failed: {e}", model.name));
            let speed = baseline.cycles as f64 / m.cycles as f64;
            let energy = m.energy_mj / baseline.energy_mj;
            if strategy == Strategy::DpOptimized {
                best_speedup = best_speedup.max(speed);
                best_energy_saving = best_energy_saving.max(1.0 - energy);
            }
            println!(
                "{:<16} {:>13} {:>14} {:>17.2}x {:>17.2}x",
                m.model, m.strategy, m.cycles, speed, energy
            );
        }
        println!();
    }
    println!(
        "headline: DP-based optimization reaches {best_speedup:.2}x speedup and {:.1}% energy reduction \
         over generic mapping (paper: up to 2.8x and 61.7%)",
        best_energy_saving * 100.0
    );
}
