//! Table I — architecture parameters of the default architecture.
//!
//! Prints the default configuration exactly as the paper tabulates it,
//! together with the derived capacities the rest of the evaluation relies
//! on. Run with `cargo bench -p cimflow-bench --bench table1`.

use cimflow::ArchConfig;

fn main() {
    let arch = ArchConfig::paper_default();
    arch.validate().expect("the paper default architecture is self-consistent");

    println!("=== Table I: architecture parameters of the default architecture ===");
    println!("{:<28} {:>12}", "Chip level", "");
    println!("{:<28} {:>12}", "  Core num.", arch.chip().core_count);
    println!("{:<28} {:>9} B", "  NoC flit size", arch.chip().noc_flit_bytes);
    println!("{:<28} {:>9} MB", "  Global mem.", arch.chip().global_memory.size_bytes >> 20);
    println!("{:<28} {:>12}", "Core level", "");
    println!("{:<28} {:>7} # MG", "  CIM comp. unit", arch.core.cim_unit.macro_groups);
    println!("{:<28} {:>4} # macro", "  Macro group", arch.core.cim_unit.macros_per_group);
    println!("{:<28} {:>9} KB", "  Local mem.", arch.core.local_memory.size_bytes >> 10);
    println!("{:<28} {:>12}", "Unit level", "");
    println!(
        "{:<28} {:>9}x{}",
        "  Macro", arch.core.cim_unit.macro_geometry.rows, arch.core.cim_unit.macro_geometry.cols
    );
    println!(
        "{:<28} {:>10}x{}",
        "  Element",
        arch.core.cim_unit.element_geometry.rows,
        arch.core.cim_unit.element_geometry.cols
    );
    println!();
    println!("=== derived quantities ===");
    println!(
        "{:<28} {:>9} KB",
        "CIM weight capacity / core",
        arch.core.weight_capacity_bytes() >> 10
    );
    println!(
        "{:<28} {:>9} MB",
        "CIM weight capacity / chip",
        arch.chip_weight_capacity_bytes() >> 20
    );
    println!("{:<28} {:>9.1}", "peak INT8 TOPS", arch.peak_tops());
    println!("{:<28} {:>9} MHz", "clock", arch.chip().frequency_mhz);
}
