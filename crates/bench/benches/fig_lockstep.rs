//! Lockstep replay throughput (BENCH_LOCKSTEP): timing-only design
//! points per second of the K-lane lockstep walk against per-point
//! scalar replay and the full compile + simulate pipeline, on a 32-point
//! frequency × memory-port ladder over one compiled program.
//!
//! The ladder is the shape the lockstep engine is built for: every point
//! shares the compile fingerprint, frequency-only variants collapse onto
//! one cycle lane, and the surviving lanes (one per distinct port) walk
//! the trace's op stream **once** instead of once per point. All three
//! paths are verified bit-exact against each other per point before any
//! rate is reported.
//!
//! Run with `cargo bench -p cimflow-bench --bench fig_lockstep`.

use std::time::Instant;

use cimflow::compiler::compile;
use cimflow::sim::{ReplayEngine, SimOptions, Simulator};
use cimflow::{models, ArchConfig, Strategy};
use cimflow_bench::resolution;

const FREQUENCIES: [u32; 8] = [200, 400, 600, 800, 1000, 1200, 1400, 1600];
const PORTS: [u32; 4] = [0, 13, 27, 41];

fn main() {
    let resolution = resolution();
    let model = models::mobilenet_v2(resolution);
    let base = ArchConfig::paper_default();
    let points: Vec<(ArchConfig, SimOptions)> = FREQUENCIES
        .iter()
        .flat_map(|&frequency| {
            PORTS.iter().map(move |&port| {
                (
                    ArchConfig::paper_default()
                        .with_frequency_mhz(frequency)
                        .with_memory_port(port),
                    SimOptions::default(),
                )
            })
        })
        .collect();

    println!(
        "=== Lockstep replay throughput (mobilenetv2@{resolution}, {} timing-only points) ===",
        points.len()
    );

    // Baseline 1: the full pipeline per point (what the sweep costs with
    // neither the trace store nor the lockstep walk).
    let started = Instant::now();
    let interpreted: Vec<_> = points
        .iter()
        .map(|(arch, options)| {
            let compiled = compile(&model, arch, Strategy::DpOptimized).expect("compiles");
            Simulator::with_options(&compiled, *options).run().expect("simulates")
        })
        .collect();
    let interpret_elapsed = started.elapsed();
    let interpret_rate = points.len() as f64 / interpret_elapsed.as_secs_f64();

    // One shared compile + record for both replay paths (charged to
    // neither: the gate compares replay against replay).
    let compiled = compile(&model, &base, Strategy::DpOptimized).expect("compiles");
    let (trace, _) = Simulator::record(&compiled).expect("records");
    let engine = ReplayEngine::new(&trace);

    // Baseline 2: scalar replay, one full trace walk per point.
    let started = Instant::now();
    let scalar: Vec<_> = points
        .iter()
        .map(|(arch, options)| engine.replay(arch, *options).expect("replays"))
        .collect();
    let scalar_elapsed = started.elapsed();
    let scalar_rate = points.len() as f64 / scalar_elapsed.as_secs_f64();

    // Lockstep: one batched call; frequency dedup + multi-lane walk.
    let started = Instant::now();
    let (lockstep, stats) = engine.replay_batch_stats(&points);
    let lockstep_elapsed = started.elapsed();
    let lockstep_rate = points.len() as f64 / lockstep_elapsed.as_secs_f64();

    // Bit-exactness gate: a fast wrong answer is worthless.
    for (index, report) in lockstep.iter().enumerate() {
        let report = report.as_ref().expect("every timing-only point replays");
        assert_eq!(report, &scalar[index], "point {index}: lockstep == scalar replay");
        assert_eq!(report, &interpreted[index], "point {index}: lockstep == interpreter");
    }
    assert_eq!(stats.batches, 1, "one chunk covers the ladder");
    assert_eq!(stats.lanes as usize, PORTS.len(), "frequencies collapse onto port lanes");

    println!("{:>28} {:>10} {:>12}", "path", "elapsed", "points/s");
    println!(
        "{:>28} {:>10.2?} {:>12.1}",
        "compile+simulate per point", interpret_elapsed, interpret_rate
    );
    println!("{:>28} {:>10.2?} {:>12.1}", "scalar replay per point", scalar_elapsed, scalar_rate);
    println!("{:>28} {:>10.2?} {:>12.1}", "lockstep batch", lockstep_elapsed, lockstep_rate);
    println!(
        "\nlanes: {} over {} points ({} fallback), speedup over scalar replay: {:.1}x",
        stats.lanes,
        points.len(),
        stats.fallback_lanes,
        lockstep_rate / scalar_rate
    );
    let speedup = lockstep_rate / scalar_rate;
    assert!(
        speedup >= 3.0,
        "lockstep must be at least 3x per-point replay on timing-only ladders, got {speedup:.1}x"
    );
}
