//! Cross-crate acceptance tests of the online-inference traffic path:
//! deterministic workload generation (`cimflow-traffic`), the
//! simulator's serving mode, and the DSE layer's offered-QPS axis with
//! its `{p99_latency_us, energy}` Pareto objective.
//!
//! The load-dependence properties here are the serving-mode analogue of
//! the replay bit-exactness suite: an idle server must report exactly
//! the single-inference latency, tail latency must never improve when
//! the offered rate rises, and goodput must plateau at the pipeline's
//! saturation rate instead of growing without bound.

use cimflow::compiler::compile;
use cimflow::dse_engine::{analysis, export, EvalCache, Executor, SweepSpec, TrafficSpec};
use cimflow::sim::{ServingReport, SimOptions, Simulator};
use cimflow::{models, ArchConfig, ServeModel, Strategy, WorkloadSpec};

/// Serves the default Poisson workload for one compiled model at the
/// given offered rate.
fn serve_at(offered_qps: u64, requests: u64) -> ServingReport {
    let arch = ArchConfig::paper_default();
    let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::GenericMapping).unwrap();
    let workload = WorkloadSpec { requests, ..WorkloadSpec::default() };
    Simulator::serve(
        &[ServeModel::compiled("mobilenetv2@32", &compiled)],
        &workload,
        offered_qps,
        SimOptions::default(),
    )
    .unwrap()
}

/// Acceptance: at a trickle of traffic every request finds the system
/// idle, so per-request latency is bit-consistent with the offline
/// single-inference `SimReport` — not approximately, exactly.
#[test]
fn idle_serving_latency_is_bit_consistent_with_the_single_inference_report() {
    let arch = ArchConfig::paper_default();
    let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::GenericMapping).unwrap();
    let single = Simulator::new(&compiled).run().unwrap();
    let report = serve_at(2, 16);
    assert_eq!(
        report.latency.min, single.total_cycles,
        "idle serving latency must equal the offline SimReport cycle count exactly"
    );
    assert_eq!(report.latency.max, single.total_cycles);
    assert_eq!(report.latency.p50, report.latency.p99);
    assert_eq!(report.per_model[0].single.total_cycles, single.total_cycles);
    assert_eq!(report.requests, 16);
}

/// Property: the 99th-percentile latency is monotone non-decreasing in
/// the offered rate. Queueing and batching can only delay a request —
/// raising the arrival rate over the same workload must never make the
/// tail faster.
#[test]
fn p99_latency_is_monotone_in_the_offered_rate() {
    let rates = [50u64, 500, 5_000, 50_000, 500_000];
    let p99s: Vec<u64> = rates.iter().map(|&qps| serve_at(qps, 64).latency.p99).collect();
    for pair in p99s.windows(2) {
        assert!(
            pair[0] <= pair[1],
            "p99 must be monotone non-decreasing in offered QPS: {p99s:?} for rates {rates:?}"
        );
    }
    // The sweep actually exercises load: the overloaded tail must be
    // strictly worse than the idle tail, not a constant sequence.
    assert!(p99s[0] < p99s[p99s.len() - 1], "the rate sweep never left the idle regime: {p99s:?}");
}

/// Property: goodput tracks the offered rate while under saturation and
/// plateaus at the pipeline-bound saturation rate once the queue is the
/// bottleneck — offering twice the traffic must not mint throughput.
#[test]
fn goodput_plateaus_at_the_pipeline_saturation_rate() {
    let saturated = serve_at(5_000_000, 64);
    assert!(saturated.saturation_qps > 0.0);
    let error = (saturated.goodput_qps - saturated.saturation_qps).abs();
    assert!(
        error <= 0.20 * saturated.saturation_qps,
        "overloaded goodput {:.1} qps must plateau at the saturation rate {:.1} qps",
        saturated.goodput_qps,
        saturated.saturation_qps
    );
    let doubled = serve_at(10_000_000, 64);
    let drift = (doubled.goodput_qps - saturated.goodput_qps).abs();
    assert!(
        drift <= 0.10 * saturated.goodput_qps,
        "doubling an already-saturating rate must not change goodput: {:.1} vs {:.1}",
        saturated.goodput_qps,
        doubled.goodput_qps
    );
    // Below saturation the server keeps up and goodput is rate-bound,
    // pinned well under the plateau.
    let light = serve_at(100, 64);
    assert!(light.goodput_qps < saturated.goodput_qps);
}

/// Acceptance: two models co-located on a 4-chip system, swept over the
/// offered-QPS axis, export a non-degenerate `{p99_latency_us, energy}`
/// Pareto frontier — serving metrics fill for every point, both models
/// appear in the per-model frontier, and the tail latency genuinely
/// varies along the rate axis.
#[test]
fn colocated_qps_sweep_exports_a_nondegenerate_p99_energy_frontier() {
    let spec = SweepSpec::new()
        .with_model("mobilenetv2", 32)
        .with_model("resnet18", 32)
        .with_strategies(&[Strategy::GenericMapping])
        .with_chip_counts(&[4])
        .with_traffic(
            TrafficSpec::new(&[200, 20_000, 2_000_000])
                .with_workload(WorkloadSpec { requests: 32, ..WorkloadSpec::default() })
                .colocated(),
        );
    let cache = EvalCache::new();
    let outcomes = Executor::sequential().run_spec(&spec, &cache).unwrap();
    assert_eq!(outcomes.len(), 6, "2 models x 3 offered rates");
    for outcome in &outcomes {
        let serving = outcome
            .evaluation()
            .and_then(|e| e.serving.as_ref())
            .unwrap_or_else(|| panic!("point {:?} must carry serving metrics", outcome.point));
        assert_eq!(serving.offered_qps, outcome.point.offered_qps);
        assert_eq!(serving.colocated, 2, "both models share the 4-chip system");
        assert!(serving.p99_latency_us > 0.0);
        assert!(serving.energy_mj.is_finite() && serving.energy_mj > 0.0);
    }

    let frontier = analysis::pareto_frontier_with(&outcomes, analysis::Objective::P99Latency);
    assert!(!frontier.is_empty());
    let by_model =
        analysis::pareto_frontier_by_model_with(&outcomes, analysis::Objective::P99Latency);
    assert_eq!(by_model.len(), 2, "each co-located model owns a frontier");

    // Non-degenerate: the rate axis must spread the tail — per model, the
    // swept points cover more than one distinct p99 value.
    for model in ["mobilenetv2", "resnet18"] {
        let mut p99s: Vec<u64> = outcomes
            .iter()
            .filter(|o| o.point.model.name == model)
            .filter_map(|o| o.evaluation()?.serving.as_ref())
            .map(|s| s.p99_latency_ns())
            .collect();
        p99s.sort_unstable();
        p99s.dedup();
        assert!(p99s.len() >= 2, "{model}: p99 must vary along the QPS axis, got {p99s:?}");
    }

    // The exporter agrees with the analysis layer: serving columns fill
    // and at least one row per model is flagged on the p99 frontier.
    let rows = export::rows(&outcomes);
    for model in ["mobilenetv2", "resnet18"] {
        assert!(
            rows.iter().any(|r| r.model == model && r.pareto_p99),
            "{model} must have a p99-frontier row"
        );
    }
    let csv = export::to_csv(&outcomes);
    assert!(csv.lines().next().unwrap().contains("p99_latency_us"));
}
