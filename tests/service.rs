//! Cross-crate integration tests of the service-oriented evaluation API:
//! concurrent multi-tenant use of one long-lived `EvalService` — shared
//! cache hits across overlapping sweeps, quota isolation between
//! tenants, and cancellation that leaves no poisoned result slots.

use std::sync::Arc;

use cimflow::Strategy;
use cimflow_serve::{
    EvalRequest, EvalService, JobStatus, Priority, Rejected, ServiceConfig, SweepSpec,
};

fn sweep(mg_sizes: &[u32]) -> SweepSpec {
    SweepSpec::new()
        .with_model("mobilenetv2", 32)
        .with_strategies(&[Strategy::GenericMapping])
        .with_mg_sizes(mg_sizes)
}

#[test]
fn concurrent_overlapping_sweeps_share_cache_hits_without_deadlock() {
    let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(4)));
    // Two tenants, three points each, overlapping in mg=8 and mg=16:
    // 4 unique points, 2 duplicates.
    let specs = [("alice", sweep(&[4, 8, 16])), ("bob", sweep(&[8, 16, 32]))];
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|(tenant, spec)| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    service
                        .submit_sweep_as(tenant, Priority::Normal, spec)
                        .expect("admitted")
                        .wait()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    for (outcomes, (_, spec)) in outcomes.iter().zip(&specs) {
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let mg: Vec<u64> = outcomes.iter().map(|o| o.point.mg_size).collect();
        assert_eq!(mg, spec.mg_sizes.iter().map(|&m| u64::from(m)).collect::<Vec<_>>());
    }
    // The overlap evaluated once: in-flight coalescing plus the shared
    // cache mean 4 misses and 2 hits, in whichever thread won the race.
    let stats = service.cache().stats();
    assert_eq!(stats.misses, 4, "each unique point compiles exactly once");
    assert_eq!(stats.hits, 2, "duplicate points are shared, not re-run");
    assert_eq!(service.stats().completed, 6);
}

#[test]
fn quota_limited_tenant_backs_off_while_another_flows() {
    // One worker and a quota of 2 in-flight points per tenant. The first
    // submission occupies the worker long enough (a real evaluation) for
    // the rest of the test to observe queued state deterministically via
    // admission accounting (quota counts queued + running).
    let service = EvalService::new(ServiceConfig::new().with_workers(1).with_tenant_quota(2));
    let a1 = service
        .submit(EvalRequest::new("mobilenetv2", 32, Strategy::GenericMapping).with_tenant("a"))
        .expect("first point admitted");
    let a2 = service
        .submit(EvalRequest::new("resnet18", 32, Strategy::GenericMapping).with_tenant("a"))
        .expect("second point admitted");
    // Tenant `a` is now at quota until a point completes; its excess
    // submissions bounce with backpressure. If a point of `a` finished
    // in between (capacity lawfully freed), the admitted probe itself
    // re-occupies the seat — holding it (instead of waiting it out)
    // rebuilds quota pressure, so a rejection arrives after at most two
    // consecutive admissions and the loop cannot spin on a warm cache.
    let mut rejections = 0;
    let mut reclaimed = Vec::new();
    loop {
        match service
            .submit(EvalRequest::new("vgg19", 32, Strategy::GenericMapping).with_tenant("a"))
        {
            Err(Rejected::QuotaExceeded { tenant, quota }) => {
                assert_eq!((tenant.as_str(), quota), ("a", 2));
                rejections += 1;
                break;
            }
            Ok(handle) => reclaimed.push(handle),
            Err(other) => panic!("unexpected rejection {other}"),
        }
    }
    assert!(rejections > 0, "tenant a hits its quota");
    // ...while tenant `b` keeps flowing through the same pool.
    let b = service
        .submit(EvalRequest::new("efficientnetb0", 32, Strategy::GenericMapping).with_tenant("b"))
        .expect("tenant b is admitted while a backs off");
    assert!(b.wait().result.is_ok());
    assert!(a1.wait().result.is_ok());
    assert!(a2.wait().result.is_ok());
    for handle in reclaimed {
        assert!(handle.wait().result.is_ok(), "reclaimed quota seats still evaluate");
    }
    // Completion releases quota: tenant `a` flows again.
    let a3 = service
        .submit(EvalRequest::new("resnet18", 32, Strategy::DpOptimized).with_tenant("a"))
        .expect("quota released on completion");
    assert!(a3.wait().result.is_ok());
    assert_eq!(service.stats().rejected, rejections);
}

#[test]
fn cancellation_under_concurrency_leaves_no_poisoned_slots() {
    let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(1)));
    // Pile up a batch behind the single worker, cancel it mid-flight from
    // another thread, and verify every slot resolves (outcome or
    // cancellation) — nothing hangs, nothing panics.
    let batch = service.submit_sweep(&sweep(&[2, 4, 8, 16, 32])).expect("admitted");
    let canceller = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            // Separate handles on new submissions still work during the
            // cancellation storm.
            let probe = service
                .submit(EvalRequest::new("resnet18", 32, Strategy::GenericMapping))
                .expect("admitted");
            probe.wait()
        })
    };
    let cancelled = batch.cancel();
    let outcomes = batch.wait();
    assert_eq!(outcomes.len(), 5);
    let finished = outcomes.iter().filter(|o| o.result.is_ok()).count();
    let killed = outcomes
        .iter()
        .filter(|o| matches!(o.result, Err(cimflow_serve::DseError::Cancelled)))
        .count();
    assert_eq!(finished + killed, 5, "every slot resolves to a result or a cancellation");
    assert_eq!(killed, cancelled, "cancel() reports exactly the killed slots");
    assert!(cancelled > 0, "with one worker, some of the five points were still queued");
    assert!(canceller.join().expect("no panics").result.is_ok());
    // The service stays healthy: a fresh submission completes.
    let after = service
        .submit(EvalRequest::new("mobilenetv2", 32, Strategy::DpOptimized))
        .expect("admitted after cancellations");
    assert!(after.wait().result.is_ok());
    assert_eq!(after.status(), JobStatus::Done);
}

#[test]
fn facade_re_exports_the_service_types() {
    // The `cimflow` facade exposes the service API directly.
    let service = cimflow::EvalService::new(cimflow::ServiceConfig::new().with_workers(2));
    let handle = service
        .submit(cimflow::EvalRequest::new("mobilenetv2", 32, Strategy::DpOptimized))
        .expect("admitted");
    let outcome = handle.wait();
    assert!(outcome.result.is_ok());
    // One pipeline: the blocking facade evaluation of the same point is
    // bit-identical with the service's.
    let flow = cimflow::CimFlow::with_default_arch();
    let blocking =
        flow.evaluate(&cimflow::models::mobilenet_v2(32), Strategy::DpOptimized).unwrap();
    assert_eq!(blocking.simulation.total_cycles, outcome.result.unwrap().simulation.total_cycles);
}
