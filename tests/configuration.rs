//! Integration tests of the user-facing configuration surfaces: the
//! architecture configuration file, the model description format and the
//! architectural sweep helpers.

use cimflow::dse;
use cimflow::{models, ArchConfig, CimFlow, Strategy};
use cimflow_nn::Graph;

#[test]
fn architecture_config_files_round_trip_and_drive_the_flow() {
    let arch = ArchConfig::paper_default().with_macros_per_group(4).with_flit_bytes(16);
    let text = arch.to_json();
    let parsed = ArchConfig::from_json(&text).expect("serialized configuration re-parses");
    assert_eq!(parsed, arch);

    let flow = CimFlow::new(parsed).unwrap();
    let evaluation = flow.evaluate(&models::mobilenet_v2(32), Strategy::GenericMapping).unwrap();
    assert!(evaluation.simulation.total_cycles > 0);
}

#[test]
fn model_descriptions_round_trip_through_json() {
    let model = models::resnet18(32);
    let text = model.graph.to_json();
    let parsed = Graph::from_json(&text).expect("model description re-parses");
    assert_eq!(parsed, model.graph);
    assert_eq!(parsed.stats().total_macs, model.graph.stats().total_macs);
}

#[test]
fn invalid_configurations_are_rejected_before_compilation() {
    let mut arch = ArchConfig::paper_default();
    arch.core.cim_unit.macro_groups = 0;
    assert!(CimFlow::new(arch).is_err());
    assert!(ArchConfig::from_json("{\"chip\": {}}").is_err());
}

#[test]
fn mg_size_sweep_changes_capacity_and_performance() {
    let base = ArchConfig::paper_default();
    let model = models::resnet18(32);
    let points = dse::sweep(&base, &model, &[4, 16], &[8], Strategy::GenericMapping)
        .expect("sweep succeeds");
    assert_eq!(points.len(), 2);
    let small = points.iter().find(|p| p.mg_size == 4).unwrap();
    let large = points.iter().find(|p| p.mg_size == 16).unwrap();
    // Compute-heavy ResNet18 gains throughput from larger macro groups.
    assert!(
        large.throughput_tops() >= small.throughput_tops() * 0.95,
        "MG 16 {:.3} TOPS vs MG 4 {:.3} TOPS",
        large.throughput_tops(),
        small.throughput_tops()
    );
}

#[test]
fn oversized_models_report_capacity_errors_on_tiny_chips() {
    let tiny = ArchConfig::paper_default().with_core_count(1);
    let flow = CimFlow::new(tiny).unwrap();
    let result = flow.compile(&models::vgg19(224), Strategy::DpOptimized);
    assert!(result.is_err(), "143 MB of VGG19 weights cannot fit one core");
}
