//! Cross-crate acceptance tests of the adaptive Pareto-guided
//! exploration engine: full-budget equivalence with the exhaustive grid
//! frontier (including as a property over randomized small spaces), and
//! journal-backed resumption submitting no duplicate evaluations.

use std::collections::BTreeMap;
use std::sync::Arc;

use cimflow::Strategy;
use cimflow_dse::{
    analysis, explore, explore_journaled, EvalCache, EvalService, Executor, ExploreAlgorithm,
    ExploreSpec, ServiceConfig, SweepJournal, SweepSpec,
};

/// Per-model frontier objective sets of a batch of outcomes.
fn frontier_objectives(outcomes: &[cimflow_dse::DseOutcome]) -> BTreeMap<String, Vec<(u64, f64)>> {
    analysis::pareto_frontier_by_model(outcomes)
        .into_iter()
        .map(|(model, frontier)| {
            let objectives = frontier
                .into_iter()
                .filter_map(|index| outcomes[index].evaluation())
                .map(|e| (e.simulation.total_cycles, e.simulation.energy_mj()))
                .collect();
            (model, objectives)
        })
        .collect()
}

fn small_space() -> SweepSpec {
    SweepSpec::new()
        .named("explore-acceptance")
        .with_model("mobilenetv2", 32)
        .with_model("resnet18", 32)
        .with_strategies(&[Strategy::GenericMapping])
        .with_mg_sizes(&[4, 8])
        .with_flit_sizes(&[8, 16])
}

/// With the full grid as budget, both algorithms must exhaust the space
/// and therefore reproduce the exhaustive grid frontier exactly. (At
/// 32 px with the default search mode every point is its own coarse
/// projection, so successive halving pays one evaluation per point.)
#[test]
fn full_budget_exploration_equals_the_exhaustive_grid_frontier() {
    let space = small_space();
    let cache = EvalCache::new();
    let grid = Executor::new().run_spec(&space, &cache).unwrap();
    let expected = frontier_objectives(&grid);

    for algorithm in [ExploreAlgorithm::SuccessiveHalving, ExploreAlgorithm::Evolutionary] {
        let spec = ExploreSpec::new(space.clone())
            .with_budget(space.point_count() as u64)
            .with_algorithm(algorithm)
            .with_seed(42);
        let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
        let report = explore(&spec, &service).unwrap();
        assert_eq!(report.evaluated, space.point_count(), "{algorithm} exhausts the space");
        assert_eq!(
            frontier_objectives(&report.outcomes),
            expected,
            "{algorithm} with full budget must find the exact grid frontier"
        );
    }
}

/// The same equivalence as a property over randomized spaces, axis
/// subsets, algorithms and seeds (the vendored proptest stub runs a
/// deterministic fixed-seed generator).
mod properties {
    // `super::*` would glob-import `cimflow::Strategy` alongside the
    // proptest prelude's `Strategy` trait: name the test deps instead.
    use super::frontier_objectives;
    use cimflow_dse::{
        explore, EvalCache, EvalService, Executor, ExploreAlgorithm, ExploreSpec, ServiceConfig,
        SweepSpec,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn full_budget_matches_grid_frontier(
            mg_axis in 1usize..4,
            flit_axis in 1usize..3,
            halving in any::<bool>(),
            seed in 0u64..1024,
        ) {
            let mg_values = [4u32, 8, 16];
            let flit_values = [8u32, 16];
            let space = SweepSpec::new()
                .with_model("mobilenetv2", 32)
                .with_strategies(&[cimflow::Strategy::GenericMapping])
                .with_mg_sizes(&mg_values[..mg_axis])
                .with_flit_sizes(&flit_values[..flit_axis]);
            let cache = EvalCache::new();
            let grid = Executor::new().run_spec(&space, &cache).unwrap();
            let algorithm = if halving {
                ExploreAlgorithm::SuccessiveHalving
            } else {
                ExploreAlgorithm::Evolutionary
            };
            let spec = ExploreSpec::new(space.clone())
                .with_budget(space.point_count() as u64)
                .with_algorithm(algorithm)
                .with_seed(seed);
            let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
            let report = explore(&spec, &service).unwrap();
            prop_assert_eq!(report.evaluated, space.point_count());
            prop_assert_eq!(
                frontier_objectives(&report.outcomes),
                frontier_objectives(&grid)
            );
        }
    }
}

/// Regression for the resnet18 MG-axis misranking (EXPERIMENTS.md,
/// "Coarse-fidelity fidelity"): at 32 px the coarse proxy inverts part
/// of the macro-group ordering that full 64 px simulation reports. The
/// calibrated ladder must *measure* that low rank fidelity on the
/// (resnet18, coarse32) pair and shift the scouting share away from the
/// historical half — where fixed-split successive halving keeps the
/// half-budget cap no matter what the proxy misranks.
#[test]
fn calibrated_ladder_detects_the_resnet18_mg_misranking() {
    let space = SweepSpec::new()
        .named("resnet18-mg-regression")
        .with_model("resnet18", 64)
        .with_strategies(&[Strategy::DpOptimized])
        .with_mg_sizes(&[2, 4, 8, 16]);
    let spec = ExploreSpec::new(space)
        .with_budget(8)
        .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
        .with_seed(20);
    let service = EvalService::new(ServiceConfig::new());
    let report = explore(&spec, &service).unwrap();

    // Every MG point is scouted at 32 px and graduated at 64 px, so the
    // calibration has the full axis to rank.
    assert_eq!(report.evaluated, 4, "all four MG points graduate");
    let tau = report.rank_fidelity.get("resnet18/coarse32").copied().unwrap_or_else(|| {
        panic!("calibration must cover (resnet18, coarse32): {:?}", report.rank_fidelity)
    });
    assert!(
        tau < 1.0,
        "the 32 px proxy misranks the MG axis on resnet18, so measured rank fidelity \
         must be below perfect; got tau = {tau}"
    );
    assert!(
        (report.scout_share - 0.5).abs() > 1e-9,
        "the calibrated ladder shifts the budget split off the historical half \
         (tau = {tau}, share = {})",
        report.scout_share
    );

    // The fixed split measures the same misranking but is forbidden
    // from acting on it.
    let pinned = explore(&spec.clone().with_scout_share(Some(0.5)), &service).unwrap();
    assert_eq!(pinned.rank_fidelity.get("resnet18/coarse32"), Some(&tau));
    assert_eq!(pinned.scout_share, 0.5, "fixed-split SH never moves its budget split");
}

/// Resuming an exploration from its journal replays the identical
/// trajectory with zero duplicate evaluations: every point is served
/// from the journal (born terminal), the shared cache records no miss,
/// and the journal does not grow.
#[test]
fn journal_resumption_submits_no_duplicate_evaluations() {
    let dir = std::env::temp_dir().join("cimflow-explore-acceptance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.jsonl");
    std::fs::remove_file(&path).ok();

    let spec = ExploreSpec::new(small_space())
        .with_budget(6)
        .with_algorithm(ExploreAlgorithm::Evolutionary)
        .with_seed(7);

    let journal = Arc::new(SweepJournal::open(&path).unwrap());
    let service = EvalService::new(ServiceConfig::new());
    let cold = explore_journaled(&spec, &service, &journal).unwrap();
    assert!(cold.outcomes.iter().all(|o| !o.cached), "the cold run evaluates everything");
    let journaled = journal.len();
    assert_eq!(journaled, cold.evaluated);
    drop(service);

    // Fresh service, fresh (cold) cache: only the journal carries state.
    let journal = Arc::new(SweepJournal::open(&path).unwrap());
    let service = EvalService::new(ServiceConfig::new());
    let warm = explore_journaled(&spec, &service, &journal).unwrap();
    assert_eq!(
        cold.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
        warm.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
        "same spec + seed = same trajectory"
    );
    assert!(warm.outcomes.iter().all(|o| o.cached), "every point resumes from the journal");
    assert_eq!(service.cache().stats().misses, 0, "no duplicate evaluation was submitted");
    assert_eq!(journal.len(), journaled, "the journal did not grow on resume");
    assert_eq!(warm.budget_used, cold.budget_used, "the replayed trajectory is charged alike");

    // An *interrupted* run resumes and finishes the remainder: the same
    // spec with the full 8-point space as budget replays the journaled
    // prefix for free and pays only for the new points.
    let space_points = small_space().point_count() as u64;
    let journal = Arc::new(SweepJournal::open(&path).unwrap());
    let service = EvalService::new(ServiceConfig::new());
    let wider =
        explore_journaled(&spec.clone().with_budget(space_points), &service, &journal).unwrap();
    assert_eq!(wider.evaluated as u64, space_points);
    let replayed = wider.outcomes.iter().filter(|o| o.cached).count();
    assert_eq!(replayed, cold.evaluated, "the prefix replays from the journal");
    assert_eq!(
        service.cache().stats().misses,
        space_points - cold.evaluated as u64,
        "only the continuation evaluates"
    );
    std::fs::remove_file(&path).ok();
}
