//! Cross-crate integration tests of the `cimflow-dse` engine: the
//! acceptance scenario of the subsystem — a ≥3-axis × 2-model sweep
//! through the parallel executor that survives injected invalid
//! configurations, exports CSV/JSON, yields a non-empty Pareto frontier
//! and performs zero recompilations on a warm cache.

use cimflow::Strategy;
use cimflow_dse::{analysis, export, EvalCache, Executor, SweepSpec};

fn acceptance_spec() -> SweepSpec {
    // Three architecture axes (mg, flit, core count) × two models, with an
    // invalid macro-group size injected.
    SweepSpec::new()
        .named("acceptance")
        .with_model("mobilenetv2", 32)
        .with_model("efficientnetb0", 32)
        .with_strategies(&[Strategy::GenericMapping])
        .with_mg_sizes(&[0, 8])
        .with_flit_sizes(&[8, 16])
        .with_core_counts(&[16, 64])
}

#[test]
fn three_axis_sweep_survives_invalid_points_and_yields_a_frontier() {
    let spec = acceptance_spec();
    let cache = EvalCache::new();
    let outcomes = Executor::with_workers(4).run_spec(&spec, &cache).expect("spec is valid");
    assert_eq!(outcomes.len(), 2 * 2 * 2 * 2);

    let failed = outcomes.iter().filter(|o| o.result.is_err()).count();
    let succeeded = outcomes.len() - failed;
    assert_eq!(failed, 8, "every mg=0 point fails, reported per point");
    assert_eq!(succeeded, 8, "every valid point survives the injected failures");

    let frontier = analysis::pareto_frontier(&outcomes);
    assert!(!frontier.is_empty(), "a successful sweep has a non-empty Pareto frontier");
    for &index in &frontier {
        assert!(outcomes[index].result.is_ok());
    }
    let by_model = analysis::pareto_frontier_by_model(&outcomes);
    assert_eq!(by_model.len(), 2, "each model gets its own frontier");
    assert!(by_model.values().all(|f| !f.is_empty()));

    // CSV and JSON exports carry every point including the failed ones.
    let csv = export::to_csv(&outcomes);
    assert_eq!(csv.trim_end().lines().count(), outcomes.len() + 1);
    assert!(csv.contains(",error,"), "failed points are exported with their error");
    let json = export::to_json(&outcomes);
    let rows: serde_json::Value = serde_json::from_str(&json).expect("JSON export parses");
    assert_eq!(rows.as_seq().expect("array export").len(), outcomes.len());

    let best = analysis::best_per_model(&outcomes);
    assert_eq!(best.len(), 2, "one best configuration per model");
}

#[test]
fn warm_cache_rerun_performs_zero_recompilations() {
    let spec = acceptance_spec();
    let cache = EvalCache::new();
    let executor = Executor::with_workers(4);
    let cold = executor.run_spec(&spec, &cache).expect("spec is valid");
    let cold_misses = cache.stats().misses;
    let failed = cold.iter().filter(|o| o.result.is_err()).count() as u64;

    let warm = executor.run_spec(&spec, &cache).expect("spec is valid");
    // Failed points are never cached (they abort before compiling), so
    // only they may re-miss; every successful point is a warm hit — i.e.
    // the warm run performs zero recompilations.
    assert_eq!(cache.stats().misses, cold_misses + failed, "no successful point re-evaluates");
    assert_eq!(cache.stats().hits, (cold.len() as u64) - failed);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.point, w.point);
        if let (Some(c), Some(w)) = (c.evaluation(), w.evaluation()) {
            assert!(w.simulation == c.simulation, "cached results are bit-identical");
        }
    }
    assert!(warm.iter().all(|o| o.cached || o.result.is_err()));
}

#[test]
fn facade_sweep_helpers_run_on_the_engine_without_fail_fast() {
    // The historic cimflow::dse::sweep aborted on the first invalid
    // configuration; routed through the engine it reports per point.
    let base = cimflow::ArchConfig::paper_default();
    let model = cimflow::models::mobilenet_v2(32);
    let outcomes =
        cimflow::dse::sweep_outcomes(&base, &model, &[0, 8], &[8], Strategy::GenericMapping);
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes[0].result.is_err() && outcomes[1].result.is_ok());

    let points =
        cimflow::dse::sweep(&base, &model, &[0, 8], &[8], Strategy::GenericMapping).unwrap();
    assert_eq!(points.len(), 1);
}
