//! Cross-crate acceptance tests of the joint hierarchical partition
//! search: `SearchMode` through compile/evaluate, the tile-streaming
//! hand-off, and the search's interval estimator validated against the
//! cycle-level simulator.

use cimflow::compiler::{compile, compile_with_options, CompileOptions};
use cimflow::sim::{HandoffMode, SimOptions, Simulator};
use cimflow::{models, ArchConfig, SearchMode, Strategy};
use cimflow_dse::{evaluate_with_search, EvalCache, Executor, SweepSpec};

fn options(search: SearchMode) -> CompileOptions {
    CompileOptions { strategy: Strategy::DpOptimized, search, ..CompileOptions::default() }
}

/// The acceptance bar of the search mode itself: on the `fig_multichip`
/// grid (vgg19/resnet18 × 1/2/4/8 chips) the joint search never yields a
/// worse *estimated* pipeline interval than the sequential pipeline.
#[test]
fn joint_estimates_never_exceed_sequential_on_the_multichip_grid() {
    for model in [models::vgg19(32), models::resnet18(32)] {
        for chips in [1u32, 2, 4, 8] {
            let arch = ArchConfig::paper_default().with_chip_count(chips);
            let sequential = compile_with_options(&model, &arch, options(SearchMode::Sequential))
                .expect("sequential compiles");
            let joint = compile_with_options(&model, &arch, options(SearchMode::Joint))
                .expect("joint compiles");
            assert!(
                joint.system.estimated_interval_cycles
                    <= sequential.system.estimated_interval_cycles,
                "{}@{}: joint {} !<= sequential {}",
                model.name,
                chips,
                joint.system.estimated_interval_cycles,
                sequential.system.estimated_interval_cycles
            );
            assert!(joint.system.explored_candidates >= sequential.system.explored_candidates);
        }
    }
}

/// The estimator is validated against the simulator: across the chip-count
/// axis the estimated interval must *rank* configurations the way the
/// measured steady-state interval does (the cost model only ranks; the
/// authoritative numbers come from the simulator).
#[test]
fn interval_estimator_ranks_chip_counts_like_the_simulator() {
    let model = models::vgg19(32);
    let mut rows = Vec::new();
    for chips in [1u32, 2, 4] {
        let arch = ArchConfig::paper_default().with_chip_count(chips);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let simulated = Simulator::new(&compiled).run().unwrap();
        rows.push((
            chips,
            compiled.system.estimated_interval_cycles,
            simulated.pipeline_interval_cycles(),
        ));
    }
    for pair in rows.windows(2) {
        let ((a_chips, a_est, a_sim), (b_chips, b_est, b_sim)) = (pair[0], pair[1]);
        assert!(
            (a_est >= b_est) == (a_sim >= b_sim),
            "estimator and simulator disagree on {a_chips} vs {b_chips} chips: \
             est {a_est} vs {b_est}, sim {a_sim} vs {b_sim}"
        );
    }
    // And on this workload the joint search's estimated win at 2 chips is
    // confirmed by the measured interval.
    let arch = ArchConfig::paper_default().with_chip_count(2);
    let sequential = compile_with_options(&model, &arch, options(SearchMode::Sequential)).unwrap();
    let joint = compile_with_options(&model, &arch, options(SearchMode::Joint)).unwrap();
    let sim_seq = Simulator::new(&sequential).run().unwrap();
    let sim_joint = Simulator::new(&joint).run().unwrap();
    assert!(joint.system.estimated_interval_cycles < sequential.system.estimated_interval_cycles);
    assert!(
        sim_joint.pipeline_interval_cycles() <= sim_seq.pipeline_interval_cycles(),
        "the estimated improvement must not regress the measured interval \
         ({} !<= {})",
        sim_joint.pipeline_interval_cycles(),
        sim_seq.pipeline_interval_cycles()
    );
}

/// Tile streaming is the default hand-off and wins intra-inference
/// overlap over transfer-at-retirement without changing the work done.
#[test]
fn tile_streaming_reduces_latency_against_retirement_handoff() {
    let model = models::vgg19(32);
    let arch = ArchConfig::paper_default().with_chip_count(2);
    let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
    let stream = Simulator::new(&compiled).run().unwrap();
    let retire = Simulator::with_options(
        &compiled,
        SimOptions { handoff: HandoffMode::AtRetirement, ..SimOptions::default() },
    )
    .run()
    .unwrap();
    assert!(stream.total_cycles < retire.total_cycles);
    assert!(stream.total_overlap_cycles() > 0);
    assert_eq!(retire.total_overlap_cycles(), 0);
    assert!(stream.pipeline_interval_cycles() <= retire.pipeline_interval_cycles());
}

/// `chip_count = 1` with the default `Sequential` mode is the untouched
/// fast path: identical cycles and energy to the facade's historical
/// numbers, whatever the hand-off generalization did to multi-chip runs.
#[test]
fn sequential_single_chip_numbers_are_bit_exact() {
    let model = models::mobilenet_v2(32);
    let arch = ArchConfig::paper_default();
    let a =
        evaluate_with_search(&arch, &model, Strategy::DpOptimized, SearchMode::Sequential).unwrap();
    let b = cimflow_dse::evaluate(&arch, &model, Strategy::DpOptimized).unwrap();
    assert_eq!(a.simulation.total_cycles, b.simulation.total_cycles);
    assert!((a.simulation.energy.total_pj() - b.simulation.energy.total_pj()).abs() < 1e-9);
    assert_eq!(a.search, SearchMode::Sequential);
}

/// The search axis runs end-to-end through the DSE engine with distinct
/// cache slots per mode and the new exporter column.
#[test]
fn search_mode_sweeps_run_end_to_end_with_distinct_cache_keys() {
    let spec = SweepSpec::new()
        .named("search-axis")
        .with_model("resnet18", 32)
        .with_strategies(&[Strategy::DpOptimized])
        .with_search_modes(&[SearchMode::Sequential, SearchMode::Joint])
        .with_chip_counts(&[2]);
    let cache = EvalCache::new();
    let outcomes = Executor::with_workers(2).run_spec(&spec, &cache).unwrap();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
    assert_eq!(cache.len(), 2, "sequential and joint results occupy distinct slots");
    let csv = cimflow_dse::export::to_csv(&outcomes);
    assert!(csv.lines().next().unwrap().contains(",search,"));
    assert!(csv.contains(",dp,sequential,2,"));
    assert!(csv.contains(",dp,joint,2,"));
    // Joint's compile report records the explored pool.
    let joint = outcomes
        .iter()
        .find(|o| o.point.search == SearchMode::Joint)
        .and_then(|o| o.evaluation())
        .unwrap();
    assert!(joint.compilation.search_candidates > 1);
}
