//! Cross-crate observability integration: a metered service run feeds
//! one shared registry/tracer through the facade re-exports, and the
//! Chrome `trace_event` export — hand-built by `cimflow-obs` without a
//! JSON library — parses back through the workspace's serde_json and
//! stays coherent with the simulator's own report.

use cimflow::compiler::{compile_with_options, CompileOptions};
use cimflow::obs::MetricValue;
use cimflow::sim::{SimOptions, Simulator};
use cimflow::{models, ArchConfig, MetricsRegistry, Strategy, Tracer};
use cimflow_serve::{EvalService, Priority, ServiceConfig, SweepSpec};
use serde_json::Value;

/// Looks up a key in a JSON object node.
fn field<'a>(value: &'a Value, key: &str) -> &'a Value {
    value
        .as_map()
        .unwrap_or_else(|| panic!("expected an object around `{key}`"))
        .iter()
        .find_map(|(k, v)| (k == key).then_some(v))
        .unwrap_or_else(|| panic!("missing key `{key}`"))
}

fn as_u64(value: &Value) -> u64 {
    match value {
        Value::U64(v) => *v,
        other => panic!("expected an integer, got {other:?}"),
    }
}

#[test]
fn a_metered_service_run_feeds_the_registry_and_a_parseable_trace() {
    let registry = MetricsRegistry::new();
    let tracer = Tracer::new(4096);
    let service = EvalService::new(
        ServiceConfig::new()
            .with_workers(2)
            .with_metrics(registry.clone())
            .with_tracer(tracer.clone()),
    );
    let spec = SweepSpec::new()
        .with_model("mobilenetv2", 32)
        .with_strategies(&[Strategy::GenericMapping])
        .with_mg_sizes(&[4, 8]);
    let outcomes =
        service.submit_sweep_as("obs", Priority::Normal, &spec).expect("admitted").wait();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));

    // The service's instruments landed in the caller's registry.
    let snapshot = service.metrics_snapshot();
    assert_eq!(snapshot.get("service.evals_completed", &[]), Some(&MetricValue::Counter(2)));
    match snapshot.get("service.eval_latency_us", &[("tenant", "obs")]) {
        Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 2),
        other => panic!("expected a latency histogram, got {other:?}"),
    }
    let exposition = service.render_metrics();
    assert!(exposition.contains("service_evals_completed 2"));
    assert!(exposition.contains("service_eval_latency_us_count{tenant=\"obs\"} 2"));

    // The trace export round-trips through the JSON parser: two `eval`
    // spans in the `service` category plus thread-name metadata.
    let parsed: Value = serde_json::from_str(&tracer.to_chrome_json()).expect("valid JSON");
    let events = field(&parsed, "traceEvents").as_seq().expect("traceEvents is an array");
    let evals = events
        .iter()
        .filter(|e| {
            field(e, "ph").as_str() == Some("X")
                && field(e, "cat").as_str() == Some("service")
                && field(e, "name").as_str() == Some("eval")
        })
        .count();
    assert_eq!(evals, 2);
    assert!(events.iter().any(|e| field(e, "ph").as_str() == Some("M")
        && field(e, "name").as_str() == Some("thread_name")));
}

#[test]
fn a_profiled_two_chip_simulation_exports_a_coherent_chrome_timeline() {
    let model = models::vgg19(32);
    let arch = ArchConfig::paper_default().with_chip_count(2);
    let options = CompileOptions { strategy: Strategy::DpOptimized, ..CompileOptions::default() };
    let program = compile_with_options(&model, &arch, options).expect("compiles");

    let tracer = Tracer::new(1 << 16);
    let mut simulator =
        Simulator::with_options(&program, SimOptions { profile: true, ..SimOptions::default() });
    simulator.set_tracer(&tracer);
    let report = simulator.run().expect("simulates");

    let parsed: Value = serde_json::from_str(&tracer.to_chrome_json()).expect("valid JSON");
    let events = field(&parsed, "traceEvents").as_seq().expect("traceEvents is an array");

    // The cycle-domain chip-busy spans agree with the report exactly,
    // chip by chip.
    let mut busy = vec![0u64; report.chip_cycles.len()];
    for event in events {
        if field(event, "ph").as_str() == Some("X")
            && field(event, "cat").as_str() == Some("sim.chip")
        {
            let chip = as_u64(field(field(event, "args"), "chip")) as usize;
            busy[chip] += as_u64(field(event, "dur"));
        }
    }
    assert_eq!(busy, report.chip_cycles, "trace busy spans mirror the report");

    // Every event fits inside the simulated run.
    for event in events {
        if field(event, "ph").as_str() == Some("X") {
            let end = as_u64(field(event, "ts")) + as_u64(field(event, "dur"));
            assert!(end <= report.total_cycles, "event past the end of the run");
        }
    }
}
