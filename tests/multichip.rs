//! Cross-crate acceptance tests of the multi-chip system level: the
//! scale-out path from `SystemConfig` through chip partitioning,
//! per-chip compilation, the inter-chip fabric in the simulator, and the
//! chip-count sweep axis of the DSE engine.

use cimflow::{models, ArchConfig, CimFlow, SearchMode, Strategy};
use cimflow_dse::{export, CacheKey, EvalCache, Executor, SweepSpec};

/// The headline workload class the system level unlocks: a model whose
/// weights exceed one chip's CIM arrays compiles and simulates on two or
/// more chips.
#[test]
fn workloads_exceeding_one_chip_scale_out() {
    let model = models::vgg19(32);
    let single = ArchConfig::paper_default();
    assert!(
        model.graph.stats().total_weight_bytes > single.chip_weight_capacity_bytes(),
        "vgg19 must overflow one chip's arrays for this scenario"
    );
    for chips in [2u32, 4] {
        let arch = single.with_chip_count(chips);
        assert!(
            model.graph.stats().total_weight_bytes <= arch.system_weight_capacity_bytes()
                || chips == 2,
            "the system capacity grows with the chip count"
        );
        let flow = CimFlow::new(arch).unwrap();
        let compiled = flow.compile(&model, Strategy::DpOptimized).unwrap();
        assert_eq!(compiled.per_core.len(), (64 * chips) as usize);
        assert!(!compiled.system.transfers.is_empty());
        let evaluation = flow.evaluate(&model, Strategy::DpOptimized).unwrap();
        assert!(evaluation.simulation.total_cycles > 0);
        assert_eq!(evaluation.simulation.chip_count, chips);
        assert!(evaluation.simulation.energy.interchip_pj > 0.0);
        assert!(evaluation.simulation.interchip.packets > 0);
    }
}

/// `chip_count = 1` is the untouched fast path: explicitly wrapping the
/// paper architecture in a single-chip system reproduces the historical
/// results exactly, cycle for cycle and picojoule for picojoule.
#[test]
fn single_chip_systems_reproduce_the_historical_numbers() {
    let model = models::mobilenet_v2(32);
    let baseline = CimFlow::with_default_arch().evaluate(&model, Strategy::DpOptimized).unwrap();
    let explicit = ArchConfig::paper_default().with_chip_count(1);
    let wrapped = CimFlow::new(explicit).unwrap().evaluate(&model, Strategy::DpOptimized).unwrap();
    assert_eq!(wrapped.simulation.total_cycles, baseline.simulation.total_cycles);
    assert_eq!(wrapped.simulation.noc, baseline.simulation.noc);
    assert!(
        (wrapped.simulation.energy.total_pj() - baseline.simulation.energy.total_pj()).abs() < 1e-9
    );
    // And it hits the same cache slot as the historical configuration.
    assert_eq!(
        CacheKey::of(&explicit, &model, Strategy::DpOptimized, SearchMode::Sequential),
        CacheKey::of(
            &ArchConfig::paper_default(),
            &model,
            Strategy::DpOptimized,
            SearchMode::Sequential
        ),
    );
}

/// The chip-count axis runs end-to-end through the engine from the
/// shipped JSON spec: per-chip-count rows in both exporters and distinct
/// cache keys per chip count.
#[test]
fn multichip_sweep_spec_runs_end_to_end_with_distinct_cache_keys() {
    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("sweeps/multichip.json"),
    )
    .expect("shipped sweep spec is readable");
    let spec = SweepSpec::from_json(&text).unwrap();
    assert_eq!(spec.chip_counts, vec![1, 2, 4]);

    let cache = EvalCache::new();
    let outcomes = Executor::with_workers(2).run_spec(&spec, &cache).unwrap();
    assert_eq!(outcomes.len(), 2 * 3, "two models x three chip counts");
    assert!(outcomes.iter().all(|o| o.result.is_ok()), "every point evaluates");
    // Distinct cache keys per chip count: six points, six cache entries.
    assert_eq!(cache.len(), 6);

    // Per-chip-count rows in the CSV export …
    let csv = export::to_csv(&outcomes);
    let header = csv.lines().next().unwrap();
    assert!(header.contains("chip_count"));
    for chips in [1, 2, 4] {
        for model in ["vgg19", "resnet18"] {
            assert!(
                csv.lines().any(|l| l.contains(&format!("{model},32,dp,sequential,{chips},"))),
                "CSV misses the {model} x {chips}-chip row:\n{csv}"
            );
        }
    }
    // … and in the JSON export.
    let json: serde_json::Value = serde_json::from_str(&export::to_json(&outcomes)).unwrap();
    let rows = json.as_seq().expect("array of rows");
    assert_eq!(rows.len(), 6);
    let chip_counts: Vec<u64> = rows
        .iter()
        .map(|row| {
            row.as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "chip_count"))
                .and_then(|(_, v)| match v {
                    serde_json::Value::U64(n) => Some(*n),
                    _ => None,
                })
                .expect("chip_count column present")
        })
        .collect();
    for chips in [1u64, 2, 4] {
        assert_eq!(chip_counts.iter().filter(|c| **c == chips).count(), 2);
    }

    // Scaling sanity on the weight-heavy model: more chips, smaller
    // pipeline bottleneck.
    let vgg: Vec<_> = outcomes.iter().filter(|o| o.point.model.name == "vgg19").collect();
    let interval = |o: &&cimflow_dse::DseOutcome| {
        o.evaluation().unwrap().simulation.pipeline_interval_cycles()
    };
    assert!(interval(&vgg[2]) < interval(&vgg[0]));
}
