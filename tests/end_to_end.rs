//! End-to-end integration tests: every benchmark model compiles and
//! simulates with every strategy on the default architecture, and the
//! headline qualitative results of the paper hold.

use cimflow::{models, CimFlow, Strategy};

/// Reduced input resolution used throughout the integration tests; the
/// graph structures (and therefore the compiler decisions) are identical
/// to the 224-pixel models, only the spatial extents shrink.
const RESOLUTION: u32 = 32;

#[test]
fn every_model_compiles_and_simulates_with_every_strategy() {
    let flow = CimFlow::with_default_arch();
    for model in models::benchmark_suite(RESOLUTION) {
        for strategy in Strategy::ALL {
            let evaluation = flow
                .evaluate(&model, strategy)
                .unwrap_or_else(|e| panic!("{} with {strategy} failed: {e}", model.name));
            assert!(evaluation.simulation.total_cycles > 0);
            assert!(evaluation.simulation.energy.total_pj() > 0.0);
            assert!(evaluation.simulation.throughput_tops() > 0.0);
            assert!(evaluation.compilation.active_cores > 0);
            assert!(evaluation.stages >= 1);
        }
    }
}

#[test]
fn dp_optimization_never_loses_to_generic_mapping() {
    let flow = CimFlow::with_default_arch();
    for model in models::benchmark_suite(RESOLUTION) {
        let generic = flow.evaluate(&model, Strategy::GenericMapping).unwrap();
        let dp = flow.evaluate(&model, Strategy::DpOptimized).unwrap();
        let speedup = dp.speedup_over(&generic);
        assert!(
            speedup >= 0.99,
            "{}: DP-based optimization is slower than generic mapping ({speedup:.3}x)",
            model.name
        );
    }
}

#[test]
fn compact_models_benefit_most_from_dp_optimization() {
    // The paper highlights MobileNetV2 / EfficientNetB0 as the models
    // where the DP-based approach helps most, because their small weight
    // footprints leave many cores vacant for duplication.
    let flow = CimFlow::with_default_arch();
    let resnet_speedup = {
        let model = models::resnet18(RESOLUTION);
        let generic = flow.evaluate(&model, Strategy::GenericMapping).unwrap();
        flow.evaluate(&model, Strategy::DpOptimized).unwrap().speedup_over(&generic)
    };
    let mobilenet_speedup = {
        let model = models::mobilenet_v2(RESOLUTION);
        let generic = flow.evaluate(&model, Strategy::GenericMapping).unwrap();
        flow.evaluate(&model, Strategy::DpOptimized).unwrap().speedup_over(&generic)
    };
    assert!(mobilenet_speedup > 1.0);
    assert!(
        mobilenet_speedup >= resnet_speedup * 0.8,
        "compact model speedup {mobilenet_speedup:.2} should be comparable to or larger than {resnet_speedup:.2}"
    );
}

#[test]
fn simulation_results_are_deterministic_across_runs() {
    let flow = CimFlow::with_default_arch();
    let model = models::efficientnet_b0(RESOLUTION);
    let a = flow.evaluate(&model, Strategy::DpOptimized).unwrap();
    let b = flow.evaluate(&model, Strategy::DpOptimized).unwrap();
    assert_eq!(a.simulation.total_cycles, b.simulation.total_cycles);
    assert_eq!(a.simulation.noc, b.simulation.noc);
    assert!((a.simulation.energy.total_pj() - b.simulation.energy.total_pj()).abs() < 1e-6);
}

#[test]
fn utilization_and_energy_breakdown_are_physical() {
    let flow = CimFlow::with_default_arch();
    let evaluation = flow.evaluate(&models::resnet18(RESOLUTION), Strategy::DpOptimized).unwrap();
    let sim = &evaluation.simulation;
    for utilization in &sim.core_utilization {
        assert!((0.0..=1.0).contains(utilization));
    }
    assert!(sim.energy.compute_pj > 0.0);
    assert!(sim.energy.local_memory_pj > 0.0);
    assert!(sim.energy.noc_pj > 0.0);
    assert!(sim.energy.global_memory_pj > 0.0);
    assert!(sim.energy.noc_share() < 1.0);
    assert!(sim.cim_activity.operations > 0);
    assert!(sim.vector_activity.operations > 0);
}
