//! Cross-crate acceptance tests of the simulation trace IR and the
//! batched lockstep replay engine: replay must be **bit-exact** against
//! the full interpreter — same cycles, same energy, same per-unit
//! activity — for every seed model, chip count, hand-off mode and
//! timing-only re-timing. Replay is a performance path, never an
//! approximation: any case it cannot re-time exactly must fall back to
//! the interpreter, so an inexact report here is a correctness bug.

use cimflow::compiler::compile;
use cimflow::sim::{HandoffMode, ReplayEngine, SimOptions, Simulator};
use cimflow::{ArchConfig, Strategy};
use cimflow_nn::models;

const BOTH_HANDOFFS: [HandoffMode; 2] = [HandoffMode::AtRetirement, HandoffMode::TileStreaming];

/// The full seed matrix: every benchmark model at 1/2/4/8 chips, both
/// hand-off modes. One recording per (model, chip count) — the trace is
/// option-independent — replayed against a fresh interpreter run of the
/// same options.
#[test]
fn replay_is_bit_exact_for_all_seed_models_chip_counts_and_handoff_modes() {
    for model in models::benchmark_suite(32) {
        for chips in [1u32, 2, 4, 8] {
            let arch = ArchConfig::paper_default().with_chip_count(chips);
            let compiled = compile(&model, &arch, Strategy::DpOptimized)
                .unwrap_or_else(|e| panic!("{} @ {chips} chips compiles: {e}", model.name));
            let (trace, recorded_report) = Simulator::record(&compiled).unwrap();
            assert!(trace.is_compatible(&arch));
            for handoff in BOTH_HANDOFFS {
                let options = SimOptions { handoff, ..SimOptions::default() };
                let fresh = Simulator::with_options(&compiled, options).run().unwrap();
                let replayed = ReplayEngine::new(&trace).replay(&arch, options).unwrap();
                assert_eq!(
                    replayed, fresh,
                    "{} @ {chips} chips, {handoff:?}: replay must be bit-exact",
                    model.name
                );
                if handoff == SimOptions::default().handoff {
                    assert_eq!(recorded_report, fresh, "recording must not perturb the simulation");
                }
            }
        }
    }
}

/// Timing-only re-timings (frequency, memory-port placement) replay the
/// *original* trace bit-exactly against a from-scratch compile + simulate
/// of the re-timed architecture — the exact reuse the DSE trace store
/// performs.
#[test]
fn retimed_replays_match_from_scratch_pipelines() {
    let model = models::mobilenet_v2(32);
    for chips in [1u32, 2] {
        let base = ArchConfig::paper_default().with_chip_count(chips);
        let compiled = compile(&model, &base, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        for (frequency, port) in [(500u32, 27u32), (2000, 0), (800, 63)] {
            let retimed = base.with_frequency_mhz(frequency).with_memory_port(port);
            assert!(trace.is_compatible(&retimed), "timing-only fields keep the fingerprint");
            for handoff in BOTH_HANDOFFS {
                let options = SimOptions { handoff, ..SimOptions::default() };
                let replayed = ReplayEngine::new(&trace).replay(&retimed, options).unwrap();
                let fresh_compiled = compile(&model, &retimed, Strategy::DpOptimized).unwrap();
                let fresh = Simulator::with_options(&fresh_compiled, options).run().unwrap();
                assert_eq!(
                    replayed, fresh,
                    "{chips} chips @ {frequency} MHz, port {port}, {handoff:?}"
                );
            }
        }
    }
}

/// Compile-affecting changes must be refused, not approximated: the
/// engine returns a trace-mismatch error instead of re-timing a trace
/// that no longer describes the compiled program.
#[test]
fn compile_affecting_changes_are_refused_never_approximated() {
    let model = models::resnet18(32);
    let base = ArchConfig::paper_default();
    let compiled = compile(&model, &base, Strategy::DpOptimized).unwrap();
    let (trace, _) = Simulator::record(&compiled).unwrap();
    let options = SimOptions::default();
    for wrong in [
        base.with_flit_bytes(16),
        base.with_macros_per_group(4),
        base.with_chip_count(2),
        base.with_core_count(32),
    ] {
        assert!(!trace.is_compatible(&wrong));
        assert!(
            ReplayEngine::new(&trace).replay(&wrong, options).is_err(),
            "a compile-affecting change must fail replay"
        );
    }
    // Invalid architectures are rejected up front too.
    assert!(ReplayEngine::new(&trace).replay(&base.with_memory_port(64), options).is_err());
}

/// The same bit-exactness as a property over randomized timing-only
/// axes (the vendored proptest stub runs a deterministic fixed-seed
/// generator).
mod properties {
    // `super::*` would glob-import `cimflow::Strategy` alongside the
    // proptest prelude's `Strategy` trait: name the test deps instead.
    use cimflow::compiler::compile;
    use cimflow::sim::{HandoffMode, ReplayEngine, SimOptions, Simulator};
    use cimflow::ArchConfig;
    use cimflow_nn::models;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn random_retimings_replay_bit_exactly(
            frequency in 200u32..2000,
            port in 0u32..64,
            streaming in any::<bool>(),
        ) {
            let model = models::mobilenet_v2(32);
            let base = ArchConfig::paper_default().with_chip_count(2);
            let compiled = compile(&model, &base, cimflow::Strategy::DpOptimized).unwrap();
            let (trace, _) = Simulator::record(&compiled).unwrap();
            let retimed = base.with_frequency_mhz(frequency).with_memory_port(port);
            let options = SimOptions {
                handoff: if streaming {
                    HandoffMode::TileStreaming
                } else {
                    HandoffMode::AtRetirement
                },
                ..SimOptions::default()
            };
            let replayed = ReplayEngine::new(&trace).replay(&retimed, options).unwrap();
            let fresh_compiled = compile(&model, &retimed, cimflow::Strategy::DpOptimized).unwrap();
            let fresh = Simulator::with_options(&fresh_compiled, options).run().unwrap();
            prop_assert_eq!(replayed, fresh);
        }
    }
}
