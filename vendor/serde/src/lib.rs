//! Minimal offline stand-in for the `serde` crate.
//!
//! The build environment of this repository cannot reach crates.io, so the
//! real serde is unavailable. This vendored replacement keeps the parts of
//! the surface the CIMFlow workspace uses — `#[derive(Serialize,
//! Deserialize)]` plus `serde_json::{to_string, to_string_pretty,
//! from_str}` — while swapping serde's visitor machinery for a simple tree
//! data model ([`Content`]).
//!
//! Semantics intentionally mirror real serde where the workspace depends
//! on them: structs serialize as maps, newtype structs are transparent,
//! enums are externally tagged, unknown map keys are ignored, missing
//! fields are errors (except `Option`, which defaults to `None`).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form of any value: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (any integer that does not fit a `u64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered key/value map (keys are strings, like JSON objects).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Short name of the content kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the tree data model.
    fn serialize(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from the tree data model.
    fn deserialize(content: &Content) -> Result<Self, Error>;

    /// The value to use when a struct field of this type is missing.
    ///
    /// `None` means "missing field is an error" (the default, matching
    /// real serde); `Option<T>` overrides this to default to `None`.
    #[doc(hidden)]
    fn missing_field_value() -> Option<Self> {
        None
    }
}

// --------------------------------------------------------------------------
// Helpers used by the generated derive code
// --------------------------------------------------------------------------

/// Looks a struct field up in a serialized map (derive helper).
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    map: &[(String, Content)],
    name: &str,
    type_name: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize(v).map_err(|e| Error::new(format!("{type_name}.{name}: {e}")))
        }
        None => T::missing_field_value()
            .ok_or_else(|| Error::new(format!("missing field `{name}` in {type_name}"))),
    }
}

/// Asserts map-shaped content (derive helper).
#[doc(hidden)]
pub fn __expect_map<'c>(
    content: &'c Content,
    type_name: &str,
) -> Result<&'c [(String, Content)], Error> {
    content.as_map().ok_or_else(|| {
        Error::new(format!("expected map for {type_name}, found {}", content.kind_name()))
    })
}

/// Asserts sequence-shaped content of an exact length (derive helper).
#[doc(hidden)]
pub fn __expect_seq<'c>(
    content: &'c Content,
    len: usize,
    type_name: &str,
) -> Result<&'c [Content], Error> {
    let seq = content.as_seq().ok_or_else(|| {
        Error::new(format!("expected sequence for {type_name}, found {}", content.kind_name()))
    })?;
    if seq.len() != len {
        return Err(Error::new(format!(
            "expected {len} elements for {type_name}, found {}",
            seq.len()
        )));
    }
    Ok(seq)
}

/// Deserializes one element of an exact-length sequence (derive helper).
#[doc(hidden)]
pub fn __seq_element<T: Deserialize>(
    seq: &[Content],
    index: usize,
    type_name: &str,
) -> Result<T, Error> {
    T::deserialize(&seq[index]).map_err(|e| Error::new(format!("{type_name}[{index}]: {e}")))
}

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

// --------------------------------------------------------------------------
// Primitive impls
// --------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let value: i128 = match content {
                    Content::U64(v) => *v as i128,
                    Content::I64(v) => *v as i128,
                    _ => return Err(Error::new(format!(
                        "expected integer, found {}", content.kind_name()))),
                };
                <$t>::try_from(value).map_err(|_| Error::new(format!(
                    "integer {value} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let value: i128 = match content {
                    Content::U64(v) => *v as i128,
                    Content::I64(v) => *v as i128,
                    _ => return Err(Error::new(format!(
                        "expected integer, found {}", content.kind_name()))),
                };
                <$t>::try_from(value).map_err(|_| Error::new(format!(
                    "integer {value} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(f64::from(*self as $t) as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    _ => Err(Error::new(format!(
                        "expected number, found {}", content.kind_name()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::new(format!("expected bool, found {}", content.kind_name()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(Error::new(format!("expected string, found {}", content.kind_name()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            Some(v) => v.serialize(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn missing_field_value() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let seq = content.as_seq().ok_or_else(|| {
            Error::new(format!("expected sequence, found {}", content.kind_name()))
        })?;
        seq.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let map = content
            .as_map()
            .ok_or_else(|| Error::new(format!("expected map, found {}", content.kind_name())))?;
        map.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(entries.into_iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let map = content
            .as_map()
            .ok_or_else(|| Error::new(format!("expected map, found {}", content.kind_name())))?;
        map.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let seq = __expect_seq(content, LEN, "tuple")?;
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        let v: Vec<u64> = Deserialize::deserialize(&vec![1u64, 2, 3].serialize()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (u32, u32) = Deserialize::deserialize(&(4u32, 5u32).serialize()).unwrap();
        assert_eq!(t, (4, 5));
    }

    #[test]
    fn option_defaults_to_none_when_missing() {
        let empty: [(String, Content); 0] = [];
        let missing: Option<u32> = __field(&empty, "x", "T").unwrap();
        assert_eq!(missing, None);
        assert!(__field::<u32>(&empty, "x", "T").is_err());
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::deserialize(&Content::U64(300)).is_err());
        assert!(u32::deserialize(&Content::I64(-1)).is_err());
    }
}
