//! Minimal offline stand-in for `serde_derive`.
//!
//! The build environment of this repository has no access to crates.io, so
//! the real `serde`/`serde_derive` crates cannot be fetched. This crate
//! implements just enough of the `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` surface for the types used in the CIMFlow
//! workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtype structs serialize transparently),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde).
//!
//! Generics, lifetimes and `#[serde(...)]` attributes are intentionally
//! unsupported; the derive panics with a clear message if it meets them.
//! The generated code targets the data model of the sibling vendored
//! `serde` crate (`serde::Content`), not the real serde trait machinery.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    /// Tuple fields; the payload is the field count.
    Unnamed(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive generated invalid Deserialize impl")
}

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

fn skip_attributes_and_visibility(it: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The bracketed attribute body.
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive: expected attribute body, found {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                // Optional `pub(crate)` / `pub(super)` restriction.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => break,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
        }
    }
    match (kind.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())) }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::Struct { name, fields: Fields::Unnamed(split_top_level(g.stream()).len()) }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Item::Struct { name, fields: Fields::Unit }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Enum { name, variants: parse_variants(g.stream()) }
        }
        (kind, other) => panic!("serde_derive: unsupported item `{kind}` body: {other:?}"),
    }
}

/// Splits a token stream at top-level commas, tracking `<...>` depth so
/// that commas inside generic arguments (e.g. `BTreeMap<String, u64>`) do
/// not split. Commas inside `(...)`, `[...]`, `{...}` are already hidden
/// inside `TokenTree::Group`s.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut it = chunk.into_iter().peekable();
        skip_attributes_and_visibility(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        }
    }
    names
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream) {
        let mut it = chunk.into_iter().peekable();
        skip_attributes_and_visibility(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let fields = match it.next() {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Unnamed(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit discriminants are not supported (variant `{name}`)")
            }
            other => panic!("serde_derive: unsupported variant body for `{name}`: {other:?}"),
        };
        variants.push(Variant { name, fields });
    }
    variants
}

// --------------------------------------------------------------------------
// Code generation
// --------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                Fields::Unnamed(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Unnamed(n) => {
                    let mut elems = String::new();
                    for i in 0..*n {
                        let _ = write!(elems, "::serde::Serialize::serialize(&self.{i}),");
                    }
                    format!("::serde::Content::Seq(::std::vec![{elems}])")
                }
                Fields::Named(names) => {
                    let mut entries = String::new();
                    for f in names {
                        let _ = write!(
                            entries,
                            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f})),"
                        );
                    }
                    format!("::serde::Content::Map(::std::vec![{entries}])")
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Content {{ {body} }}\n}}\n"
            );
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vname} => ::serde::Content::Str(::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    Fields::Unnamed(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binds.join(", ");
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let elems: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{elems}])")
                        };
                        let _ = writeln!(
                            arms,
                            "{name}::{vname}({pat}) => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),"
                        );
                    }
                    Fields::Named(fields) => {
                        let pat = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({f})),"
                                )
                            })
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{vname} {{ {pat} }} => ::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Content::Map(::std::vec![{entries}]))]),"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\n    fn serialize(&self) -> ::serde::Content {{\n        #[allow(unreachable_patterns)]\n        match self {{\n{arms}        }}\n    }}\n}}\n"
            );
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Unnamed(1) => {
                    format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__c)?))")
                }
                Fields::Unnamed(n) => {
                    let mut elems = String::new();
                    for i in 0..*n {
                        let _ = write!(elems, "::serde::__seq_element(__s, {i}, \"{name}\")?,");
                    }
                    format!(
                        "let __s = ::serde::__expect_seq(__c, {n}, \"{name}\")?;\n        ::std::result::Result::Ok({name}({elems}))"
                    )
                }
                Fields::Named(names) => {
                    let mut inits = String::new();
                    for f in names {
                        let _ = write!(inits, "{f}: ::serde::__field(__m, \"{f}\", \"{name}\")?,");
                    }
                    format!(
                        "let __m = ::serde::__expect_map(__c, \"{name}\")?;\n        ::std::result::Result::Ok({name} {{ {inits} }})"
                    )
                }
            };
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n        {body}\n    }}\n}}\n"
            );
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    Fields::Unnamed(1) => {
                        let _ = writeln!(
                            tagged_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?)),"
                        );
                    }
                    Fields::Unnamed(n) => {
                        let mut elems = String::new();
                        for i in 0..*n {
                            let _ = write!(
                                elems,
                                "::serde::__seq_element(__s, {i}, \"{name}::{vname}\")?,"
                            );
                        }
                        let _ = writeln!(
                            tagged_arms,
                            "\"{vname}\" => {{ let __s = ::serde::__expect_seq(__inner, {n}, \"{name}::{vname}\")?; ::std::result::Result::Ok({name}::{vname}({elems})) }}"
                        );
                    }
                    Fields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let _ = write!(
                                inits,
                                "{f}: ::serde::__field(__vm, \"{f}\", \"{name}::{vname}\")?,"
                            );
                        }
                        let _ = writeln!(
                            tagged_arms,
                            "\"{vname}\" => {{ let __vm = ::serde::__expect_map(__inner, \"{name}::{vname}\")?; ::std::result::Result::Ok({name}::{vname} {{ {inits} }}) }}"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\n    fn deserialize(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{\n        match __c {{\n            ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}                __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n            }},\n            ::serde::Content::Map(__m) if __m.len() == 1 => {{\n                let (__tag, __inner) = &__m[0];\n                match __tag.as_str() {{\n{tagged_arms}                    __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n                }}\n            }}\n            __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"expected variant of {name}, found {{}}\", ::serde::Content::kind_name(__other)))),\n        }}\n    }}\n}}\n"
            );
        }
    }
    out
}
