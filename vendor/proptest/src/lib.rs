//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest used by the CIMFlow workspace: the [`Strategy`](strategy::Strategy)
//! trait with `prop_map`, range and `any::<T>()` strategies, tuple
//! composition, `Just`, `prop_oneof!`, `prop_compose!`, collection
//! strategies, and the `proptest!` test macro.
//!
//! Differences from real proptest, by design:
//!
//! * the generator is a fixed-seed deterministic PRNG, so runs are fully
//!   reproducible and there is no persistence file;
//! * there is **no shrinking** — a failing case panics with the plain
//!   assertion message;
//! * `prop_assert!`/`prop_assert_eq!` are aliases of `assert!`/`assert_eq!`.

/// Test-runner configuration types.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic fixed-seed PRNG (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator used by the `proptest!` macro.
        pub fn deterministic() -> Self {
            TestRng { state: 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Core strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed alternative strategies.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.arms.len() as u64) as usize;
            self.arms[index].generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        (unsigned: $($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.below(span) as $t)
                }
            }
        )*};
        (signed: $($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(unsigned: u8, u16, u32, u64, usize);
    impl_range_strategy!(signed: i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T` (real proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec` etc.).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of elements from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets with a target size drawn from a range.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `BTreeSet`s of elements from `element`.
    ///
    /// The set size may fall short of the drawn target when the element
    /// strategy produces duplicates (matching real proptest behaviour).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Asserts a condition inside a `proptest!` body (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { ::std::assert!($($tokens)*) };
}

/// Asserts equality inside a `proptest!` body (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { ::std::assert_eq!($($tokens)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()($($pat:pat in $strategy:expr),+ $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strategy,)+),
                move |($($pat,)+)| $body,
            )
        }
    };
}

/// Defines `#[test]` functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&($($strategy,)+), &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};

    /// Alias module so `prop::collection::vec(...)` works like in real
    /// proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u8..64), &mut rng);
            assert!((5..64).contains(&v));
            let s = Strategy::generate(&(-512i16..512), &mut rng);
            assert!((-512..512).contains(&s));
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    prop_compose! {
        fn arb_even()(x in 0u32..1000) -> u32 { x * 2 }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn composed_strategies_work(even in arb_even(), flag in any::<bool>(),
                                    xs in prop::collection::vec(0u8..10, 0..5)) {
            prop_assert!(even % 2 == 0);
            prop_assert!(xs.len() < 5);
            let _ = flag;
        }

        #[test]
        fn oneof_covers_all_arms(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assert!((1..5).contains(&v));
        }
    }
}
