//! Minimal offline stand-in for `serde_json`.
//!
//! Writes and parses JSON against the tree data model of the vendored
//! `serde` crate. Supports everything the CIMFlow workspace serializes:
//! objects, arrays, strings (with escapes), booleans, null, and numbers.
//! Integers round-trip exactly (they are never routed through `f64`);
//! floats are printed with Rust's shortest round-trip formatting.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A parsed JSON value (alias of the vendored serde data model).
pub type Value = Content;

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(value: serde::Error) -> Self {
        Error::new(value.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported data model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Never fails for the supported data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value into a JSON [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Reconstructs a typed value from a JSON [`Value`] tree.
///
/// # Errors
///
/// Returns an error if the tree does not match the target type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize(value)?)
}

/// Parses a typed value from JSON text.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_from_str(text)?;
    Ok(T::deserialize(&value)?)
}

fn parse_value_from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_whitespace(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_whitespace(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// --------------------------------------------------------------------------
// Writer
// --------------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            out.push_str(&v.to_string());
        }
        Content::I64(v) => {
            out.push_str(&v.to_string());
        }
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_f64(value: f64, out: &mut String) {
    if value.is_finite() {
        // Rust's Display produces the shortest string that round-trips.
        let text = value.to_string();
        out.push_str(&text);
        // "1" would re-parse as an integer; that is fine because numeric
        // deserialization accepts integers for floats.
    } else {
        // Non-finite floats are not representable in JSON; mirror
        // serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Content::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Content::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Content::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Content::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => {
            Err(Error::new(format!("unexpected character `{}` at byte {}", *c as char, *pos)))
        }
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid token at byte {}", *pos)))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Content::Map(entries));
    }
    loop {
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(Error::new(format!("expected object key at byte {}", *pos)));
        }
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(Error::new(format!("expected `:` at byte {}", *pos)));
        }
        *pos += 1;
        skip_whitespace(bytes, pos);
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Content::Map(entries));
            }
            _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Content::Seq(items));
    }
    loop {
        skip_whitespace(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Content::Seq(items));
            }
            _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    *pos += 1; // consume '"'
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by the writer;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar value.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if !is_float {
        if text.starts_with('-') {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Content::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Content::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u64>>(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for value in [0.1f64, 1.0, -3.25, 1e-9, 123456.789] {
            let text = to_string(&value).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), value, "text {text}");
        }
        let small = 0.1f32;
        let text = to_string(&small).unwrap();
        assert_eq!(from_str::<f32>(&text).unwrap(), small);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn large_integers_survive() {
        let big = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
        let neg = i64::MIN + 1;
        assert_eq!(from_str::<i64>(&to_string(&neg).unwrap()).unwrap(), neg);
    }
}
