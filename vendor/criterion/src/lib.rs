//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the subset used by the workspace micro-benchmarks:
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical analysis
//! it reports the mean and the minimum wall-clock time per iteration.

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for
/// compatibility; batches are always re-created per sample here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: setup output is cheap to build.
    SmallInput,
    /// Large input: setup output is expensive to build.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Measured per-sample durations.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let output = routine();
            self.durations.push(start.elapsed());
            drop(output);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let output = routine(input);
            self.durations.push(start.elapsed());
            drop(output);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, durations: Vec::new() };
        f(&mut bencher);
        report(name, &bencher.durations);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn report(name: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<44} mean {:>12} min {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        durations.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group (both criterion forms are accepted).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 16], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }
}
