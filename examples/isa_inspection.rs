//! Inspect the code the CIMFlow compiler generates: compile a small model
//! and disassemble the busiest core's program, then demonstrate the ISA
//! extension template.
//!
//! Run with `cargo run --release --example isa_inspection`.

use cimflow::isa::{
    asm, encode_program, ExecutionUnit, InstructionDescriptor, InstructionFormat, IsaExtension,
};
use cimflow::{models, CimFlow, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = CimFlow::with_default_arch();
    let compiled = flow.compile(&models::mobilenet_v2(32), Strategy::DpOptimized)?;

    // Find the core with the largest program and disassemble a window.
    let (core, program) = compiled
        .per_core
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.len())
        .expect("at least one core exists");
    println!("busiest core: {core} with {} static instructions", program.len());
    println!("instruction mix: {:?}", program.class_histogram());

    let text = asm::disassemble(program);
    println!("\nfirst 25 lines of the generated assembly:");
    for line in text.lines().take(25) {
        println!("  {line}");
    }

    let words = encode_program(program.instructions())?;
    println!("\nbinary encoding: {} words, first word = {:#010x}", words.len(), words[0]);

    // The instruction description template: register a custom operation
    // with its performance parameters, as Sec. III-B describes.
    let mut extension = IsaExtension::new();
    extension.register(
        InstructionDescriptor::new("vec_softmax", ExecutionUnit::Vector, InstructionFormat::Vector)
            .with_latency(24)
            .with_initiation_interval(2)
            .with_throughput(16)
            .with_energy_pj(14.5),
    )?;
    let softmax = extension.get("vec_softmax").expect("just registered");
    println!(
        "\nregistered custom op `{}`: {} cycles for 1024 elements, {:.1} pJ each",
        softmax.mnemonic(),
        softmax.cycles_for(1024),
        softmax.energy_pj()
    );
    Ok(())
}
