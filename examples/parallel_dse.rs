//! Parallel design-space exploration with the `cimflow-dse` engine: a
//! three-axis sweep (macro-group size × flit size × core count) over two
//! models, with an intentionally broken configuration mixed in, comparing
//! sequential and parallel execution and demonstrating warm-cache
//! re-runs.
//!
//! Run with `cargo run --release --example parallel_dse`.

use cimflow::Strategy;
use cimflow_dse::{analysis, export, EvalCache, Executor, SweepSpec};

fn main() -> Result<(), cimflow_dse::DseError> {
    // mg = 0 is deliberately invalid: the engine reports it per point
    // instead of aborting the sweep.
    let spec = SweepSpec::new()
        .named("parallel_dse example")
        .with_model("mobilenetv2", 32)
        .with_model("efficientnetb0", 32)
        .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized])
        .with_mg_sizes(&[0, 8, 16])
        .with_flit_sizes(&[8, 16])
        .with_core_counts(&[16, 64]);
    println!("sweep of {} points over 3 architecture axes x 2 models", spec.point_count());

    // Sequential baseline.
    let sequential_cache = EvalCache::new();
    let started = std::time::Instant::now();
    let baseline = Executor::sequential().run_spec(&spec, &sequential_cache)?;
    let sequential_time = started.elapsed();

    // Parallel run on a fresh cache (same work, fanned out).
    let cache = EvalCache::new();
    let workers = Executor::new().workers().max(4);
    let executor = Executor::with_workers(workers);
    let started = std::time::Instant::now();
    let outcomes = executor.run_spec(&spec, &cache)?;
    let parallel_time = started.elapsed();

    // Warm re-run over the shared cache: zero recompilations.
    let started = std::time::Instant::now();
    let warm = executor.run_spec(&spec, &cache)?;
    let warm_time = started.elapsed();
    let warm_hits = warm.iter().filter(|o| o.cached).count();
    let valid = warm.iter().filter(|o| o.result.is_ok()).count();
    assert_eq!(warm_hits, valid, "every valid point must be a cache hit on the warm run");

    println!("sequential (1 worker):  {sequential_time:>10.2?}");
    println!("parallel  ({workers} workers):  {parallel_time:>10.2?}");
    println!("warm re-run (cached):   {warm_time:>10.2?}  ({warm_hits} hits, 0 recompilations)");

    // Parallel and sequential sweeps agree point-for-point.
    for (a, b) in baseline.iter().zip(&outcomes) {
        assert_eq!(a.point, b.point);
        assert_eq!(
            a.evaluation().map(|e| e.simulation.total_cycles),
            b.evaluation().map(|e| e.simulation.total_cycles),
        );
    }

    let failed: Vec<_> = outcomes.iter().filter(|o| o.result.is_err()).collect();
    println!("\n{} of {} points failed (reported per point):", failed.len(), outcomes.len());
    for outcome in failed.iter().take(3) {
        if let Err(e) = &outcome.result {
            println!("  {} -> {e}", outcome.point.label());
        }
    }
    if failed.len() > 3 {
        println!("  ... and {} more", failed.len() - 3);
    }

    println!("\n(cycles, energy) Pareto frontier per model:");
    for (model, frontier) in analysis::pareto_frontier_by_model(&outcomes) {
        println!("  {model}:");
        for index in frontier {
            let outcome = &outcomes[index];
            if let Some(evaluation) = outcome.evaluation() {
                println!(
                    "    {:<56} {:>11} cycles {:>9.3} mJ",
                    outcome.point.label(),
                    evaluation.simulation.total_cycles,
                    evaluation.simulation.energy_mj()
                );
            }
        }
    }

    println!("\nfastest configuration per model:");
    for (model, index) in analysis::best_per_model(&outcomes) {
        let outcome = &outcomes[index];
        if let Some(evaluation) = outcome.evaluation() {
            println!(
                "  {model:<16} {} ({:.3} TOPS)",
                outcome.point.label(),
                evaluation.simulation.throughput_tops()
            );
        }
    }

    // The exporters turn the same outcomes into CSV / JSON artifacts.
    let csv = export::to_csv(&outcomes);
    println!("\nCSV export: {} rows, header: {}", csv.lines().count() - 1, export::CSV_HEADER);
    Ok(())
}
