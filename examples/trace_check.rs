//! Validates a Chrome `trace_event` JSON file produced by `--trace-out`
//! (or any `Tracer::to_chrome_json()` export): the file must parse, carry
//! a non-empty `traceEvents` array, and every event must be a well-formed
//! complete (`ph: "X"`) or metadata (`ph: "M"`) record.
//!
//! Run with `cargo run --release --example trace_check -- <trace.json>`.
//! Exits non-zero (via panic) on a malformed trace, so CI can gate on it.

use serde_json::Value;

fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value.as_map()?.iter().find_map(|(k, v)| (k == key).then_some(v))
}

fn require<'a>(value: &'a Value, key: &str, context: &str) -> &'a Value {
    field(value, key).unwrap_or_else(|| panic!("{context}: missing key `{key}`"))
}

fn require_u64(value: &Value, key: &str, context: &str) -> u64 {
    match require(value, key, context) {
        Value::U64(v) => *v,
        other => panic!("{context}: `{key}` must be a non-negative integer, got {other:?}"),
    }
}

fn require_str<'a>(value: &'a Value, key: &str, context: &str) -> &'a str {
    require(value, key, context)
        .as_str()
        .unwrap_or_else(|| panic!("{context}: `{key}` must be a string"))
}

fn main() {
    let path =
        std::env::args().nth(1).expect("usage: cargo run --example trace_check -- <trace.json>");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let parsed: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path}: not valid JSON: {e}"));

    let events = require(&parsed, "traceEvents", &path)
        .as_seq()
        .unwrap_or_else(|| panic!("{path}: `traceEvents` must be an array"));
    assert!(!events.is_empty(), "{path}: empty trace — no events were recorded");

    let mut spans = 0usize;
    let mut metadata = 0usize;
    for (index, event) in events.iter().enumerate() {
        let context = format!("{path}: event #{index}");
        match require_str(event, "ph", &context) {
            "X" => {
                require_str(event, "name", &context);
                require_str(event, "cat", &context);
                require_u64(event, "ts", &context);
                require_u64(event, "dur", &context);
                require_u64(event, "pid", &context);
                require_u64(event, "tid", &context);
                spans += 1;
            }
            "M" => {
                require_str(event, "name", &context);
                require(event, "args", &context);
                metadata += 1;
            }
            other => panic!("{context}: unexpected phase `{other}`"),
        }
    }
    assert!(spans > 0, "{path}: no complete (`ph: \"X\"`) spans");
    println!("{path}: ok — {spans} span(s), {metadata} metadata record(s)");
}
