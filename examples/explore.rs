//! Adaptive Pareto-guided exploration with the `cimflow-dse` engine:
//! the same multi-axis space is swept exhaustively and then *explored*
//! under a quarter of the budget with both algorithms (successive
//! halving and evolutionary search), comparing the discovered per-model
//! (cycles, energy) frontiers by hypervolume — and demonstrating
//! journal-backed resumption replaying a trajectory for free.
//!
//! Run with `cargo run --release --example explore`.

use std::sync::Arc;

use cimflow::Strategy;
use cimflow_dse::{
    analysis, explore, explore_journaled, EvalCache, EvalService, Executor, ExploreAlgorithm,
    ExploreSpec, ServiceConfig, SweepJournal, SweepSpec,
};

fn main() -> Result<(), cimflow_dse::DseError> {
    let space = SweepSpec::new()
        .named("explore example")
        .with_model("mobilenetv2", 32)
        .with_model("resnet18", 32)
        .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized])
        .with_mg_sizes(&[2, 4, 8, 16])
        .with_flit_sizes(&[8, 16]);
    let grid_points = space.point_count();
    println!("space: {grid_points} grid points over 2 models x 2 strategies x 4 MG x 2 flit");

    // The exhaustive baseline the exploration is judged against.
    let cache = EvalCache::new();
    let started = std::time::Instant::now();
    let grid = Executor::new().run_spec(&space, &cache)?;
    println!("exhaustive grid: {} evaluations in {:.2?}", grid.len(), started.elapsed());

    // One reference point per model, weakly worse than every grid point,
    // shared by every hypervolume comparison below.
    let references = analysis::reference_points(&grid, 1.01);
    let grid_volume = analysis::hypervolume_by_model(&grid, &references);

    // Explore the same space at a quarter of the budget with both
    // algorithms. The service shares the grid's cache, so this example
    // costs no re-evaluation — budget accounting is unaffected.
    let budget = (grid_points as u64) / 4;
    for algorithm in [ExploreAlgorithm::SuccessiveHalving, ExploreAlgorithm::Evolutionary] {
        let spec = ExploreSpec::new(space.clone())
            .with_budget(budget)
            .with_algorithm(algorithm)
            .with_seed(17);
        let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
        let report = explore(&spec, &service)?;
        assert!(report.budget_used <= budget, "the budget is a hard cap");

        let volume = analysis::hypervolume_by_model(&report.outcomes, &references);
        println!(
            "\n{algorithm}: {} of {} budget used ({} full-fidelity, {} coarse), {} generation(s)",
            report.budget_used,
            report.budget,
            report.evaluated,
            report.coarse_evaluated,
            report.generations.len()
        );
        for (model, &grid_hv) in &grid_volume {
            let ratio = if grid_hv > 0.0 { volume[model] / grid_hv } else { 1.0 };
            println!(
                "  {model:<16} frontier hypervolume {:>6.1}% of the exhaustive grid's \
                 ({} frontier point(s))",
                ratio * 100.0,
                report.frontier.get(model).map_or(0, Vec::len)
            );
        }
    }

    // Full-budget exploration recovers the exact grid frontier.
    let spec = ExploreSpec::new(space.clone()).with_budget(grid_points as u64).with_seed(17);
    let service = EvalService::with_cache(ServiceConfig::new(), cache.clone());
    let full = explore(&spec, &service)?;
    assert_eq!(full.evaluated, grid_points, "full budget exhausts the space");
    let full_volume = analysis::hypervolume_by_model(&full.outcomes, &references);
    for (model, &grid_hv) in &grid_volume {
        assert!(
            (full_volume[model] - grid_hv).abs() < 1e-9,
            "{model}: full-budget exploration must match the grid frontier"
        );
    }
    println!("\nfull budget ({grid_points}): frontier identical to the exhaustive grid");

    // Journal-backed resumption: the same spec and seed replay their
    // trajectory with every point served from the journal.
    let journal_path = std::env::temp_dir().join("cimflow-explore-example.jsonl");
    std::fs::remove_file(&journal_path).ok();
    let spec = ExploreSpec::new(space).with_budget(budget).with_seed(17);
    let journal = Arc::new(SweepJournal::open(&journal_path)?);
    let cold_service = EvalService::new(ServiceConfig::new());
    let cold = explore_journaled(&spec, &cold_service, &journal)?;

    let journal = Arc::new(SweepJournal::open(&journal_path)?);
    let warm_service = EvalService::new(ServiceConfig::new());
    let warm = explore_journaled(&spec, &warm_service, &journal)?;
    assert_eq!(
        cold.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
        warm.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
        "the trajectory is deterministic"
    );
    assert!(warm.outcomes.iter().all(|o| o.cached), "resumption re-evaluates nothing");
    assert_eq!(warm_service.cache().stats().misses, 0);
    println!(
        "resume: {} point(s) replayed from {} with zero re-evaluations",
        warm.evaluated,
        journal_path.display()
    );
    std::fs::remove_file(&journal_path).ok();
    Ok(())
}
