//! Architectural design-space exploration: sweep the macro-group size and
//! the NoC flit size for a compact model — a miniature version of the
//! Fig. 6 / Fig. 7 experiments.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use cimflow::dse;
use cimflow::{models, ArchConfig, Strategy};

fn main() -> Result<(), cimflow::CimFlowError> {
    let base = ArchConfig::paper_default();
    let model = models::efficientnet_b0(32);

    println!(
        "{:<10} {:>8} {:>8} {:>14} {:>12} {:>10}",
        "strategy", "MG size", "flit", "TOPS", "energy (mJ)", "NoC share"
    );
    let points = dse::sweep_strategies(
        &base,
        &model,
        &[4, 8, 12, 16],
        &[8, 16],
        &[Strategy::GenericMapping, Strategy::DpOptimized],
    )?;
    for point in &points {
        println!(
            "{:<10} {:>8} {:>8} {:>14.3} {:>12.3} {:>9.1}%",
            point.strategy.to_string(),
            point.mg_size,
            point.flit_bytes,
            point.throughput_tops(),
            point.energy_mj(),
            point.evaluation.simulation.energy.noc_share() * 100.0
        );
    }
    Ok(())
}
