//! Multi-chip scale-out with the system level of the architecture: a
//! workload whose weights exceed one chip's CIM arrays is compiled across
//! chips (cut activations travel over the inter-chip interconnect) and
//! the chip-count axis is swept through the `cimflow-dse` engine.
//!
//! Run with `cargo run --release --example multichip`.

use cimflow::{models, ArchConfig, CimFlow, InterChipTopology, Strategy};
use cimflow_dse::{EvalCache, Executor, SweepSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // VGG19 at 64 px carries more weights than one default chip's 32 MiB
    // of CIM arrays — the workload class the system level unlocks.
    let model = models::vgg19(64);
    let weights_mib = model.graph.stats().total_weight_bytes >> 20;
    let single = ArchConfig::paper_default();
    println!(
        "vgg19: {weights_mib} MiB of weights vs {} MiB per chip",
        single.chip_weight_capacity_bytes() >> 20
    );

    // One explicit two-chip evaluation through the facade.
    let dual = single.with_chip_count(2).with_interchip_link_bytes(32);
    let flow = CimFlow::new(dual)?;
    let compiled = flow.compile(&model, Strategy::DpOptimized)?;
    println!(
        "compiled across {} chips: {} per-core programs, {} inter-chip transfer(s), {} KiB cut",
        compiled.system.chip_count,
        compiled.per_core.len(),
        compiled.system.transfers.len(),
        compiled.system.cut_bytes() >> 10,
    );
    let evaluation = flow.evaluate(&model, Strategy::DpOptimized)?;
    println!("{}", evaluation.simulation);

    // The chip-count sweep axis: scale-out curve through the DSE engine,
    // here over a ring interconnect.
    let spec = SweepSpec::new()
        .named("multichip example")
        .with_base(single.with_interchip_topology(InterChipTopology::Ring))
        .with_model("vgg19", 64)
        .with_strategies(&[Strategy::DpOptimized])
        .with_chip_counts(&[1, 2, 4]);
    let outcomes = Executor::new().run_spec(&spec, &EvalCache::new())?;
    println!("{:>6} {:>12} {:>14} {:>12}", "chips", "latency cyc", "pipelined TOPS", "energy mJ");
    for outcome in &outcomes {
        let sim = &outcome.result.as_ref().expect("all points valid").simulation;
        println!(
            "{:>6} {:>12} {:>14.3} {:>12.3}",
            outcome.point.chip_count,
            sim.total_cycles,
            sim.pipelined_throughput_tops(),
            sim.energy_mj()
        );
    }
    let first = outcomes.first().and_then(|o| o.evaluation()).expect("single-chip point");
    let last = outcomes.last().and_then(|o| o.evaluation()).expect("four-chip point");
    assert!(
        last.simulation.pipeline_interval_cycles() < first.simulation.pipeline_interval_cycles(),
        "adding chips must shrink the pipeline bottleneck"
    );
    println!(
        "scale-out: pipeline interval {} -> {} cycles at 4 chips",
        first.simulation.pipeline_interval_cycles(),
        last.simulation.pipeline_interval_cycles()
    );
    Ok(())
}
