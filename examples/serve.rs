//! The evaluation service end to end: an in-process [`EvalService`] with
//! a bounded queue and per-tenant quotas, served over a TCP loopback
//! listener, driven by two typed [`Client`]s — non-blocking submission,
//! streamed batch progress, quota backpressure, duplicate-point
//! coalescing through the shared cache, and a clean shutdown.
//!
//! Run with `cargo run --release --example serve`.

use std::sync::Arc;

use cimflow::Strategy;
use cimflow_serve::{
    Client, ClientError, EvalRequest, EvalService, Priority, ServiceConfig, SweepSpec, TcpServer,
};

fn main() -> Result<(), ClientError> {
    // A service sized like a small deployment: 4 workers, at most 64
    // queued points, and no tenant may hold more than 8 points in flight.
    let service = Arc::new(EvalService::new(
        ServiceConfig::new().with_workers(4).with_queue_capacity(64).with_tenant_quota(8),
    ));
    let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind a loopback port");
    println!("serving on {} with {} workers\n", server.addr(), service.workers());

    // --- Tenant `alice`: a single high-priority request, then a sweep. --
    let mut alice = Client::connect(server.addr())?;
    let job = alice.submit(
        &EvalRequest::new("mobilenetv2", 32, Strategy::DpOptimized)
            .with_tenant("alice")
            .with_priority(Priority::High),
    )?;
    println!("alice: job {job} accepted (returns immediately; the pool works in background)");
    let outcome = alice.wait_job(job)?;
    println!(
        "alice: job {job} -> {} cycles, {:.3} mJ ({})",
        outcome.total_cycles.expect("success"),
        outcome.energy_mj.expect("success"),
        if outcome.cached { "cache hit" } else { "evaluated" },
    );

    let sweep = SweepSpec::new()
        .named("serve example")
        .with_model("mobilenetv2", 32)
        .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized])
        .with_mg_sizes(&[4, 8]);
    let ticket = alice.submit_sweep(&sweep, Some("alice"), None)?;
    println!(
        "alice: batch {} accepted with {} points (jobs {:?})",
        ticket.batch, ticket.points, ticket.jobs
    );
    let outcomes = alice.wait_batch(ticket.batch)?;
    assert_eq!(outcomes.len(), 4);
    for outcome in &outcomes {
        println!(
            "alice:   {:<56} {:>9} cycles {}",
            outcome.label,
            outcome.total_cycles.expect("success"),
            if outcome.cached { "(hit)" } else { "" },
        );
    }

    // --- Tenant `bob`: the same sweep coalesces onto warm results. -----
    let mut bob = Client::connect(server.addr())?;
    let ticket = bob.submit_sweep(&sweep, Some("bob"), None)?;
    let warm = bob.wait_batch(ticket.batch)?;
    assert!(warm.iter().all(|o| o.ok && o.cached), "bob shares alice's evaluations");
    println!("\nbob: same {} points, all served from the shared cache", warm.len());

    // --- Quota backpressure: a 16-point burst exceeds bob's quota of 8,
    //     atomically, while alice keeps flowing. ------------------------
    let burst = SweepSpec::new()
        .with_model("resnet18", 32)
        .with_strategies(&[Strategy::GenericMapping])
        .with_mg_sizes(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
    match bob.submit_sweep(&burst, Some("bob"), None) {
        Err(ClientError::Rejected { kind, reason }) => {
            assert_eq!(kind, "quota_exceeded");
            println!("bob: 16-point burst rejected with backpressure: {reason}");
        }
        other => panic!("expected quota backpressure, got {other:?}"),
    }
    let job = alice
        .submit(&EvalRequest::new("resnet18", 32, Strategy::DpOptimized).with_tenant("alice"))?;
    assert!(alice.wait_job(job)?.ok);
    println!("alice: still admitted while bob backs off");

    // --- Counters, then a clean shutdown. ------------------------------
    let stats = alice.stats()?;
    println!(
        "\nservice: {} submitted, {} completed, {} rejected; cache {} hits / {} misses ({} entries)",
        stats.service.submitted,
        stats.service.completed,
        stats.service.rejected,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache_entries,
    );
    assert_eq!(stats.service.completed, 10, "1 + 4 + 4 warm + 1 follow-up");
    assert!(stats.cache.hits >= 4, "bob's whole batch coalesced");

    alice.shutdown()?;
    server.wait_for_shutdown();
    println!("shutdown acknowledged; listener stopped");
    Ok(())
}
