//! Online inference traffic: serve deterministic request streams
//! against a compiled design point and sweep the offered rate through
//! the DSE engine's SLO objective.
//!
//! Two surfaces are shown:
//!
//! 1. the raw serving mode — two models co-located on one 4-chip
//!    system, a seeded Poisson arrival stream, and the latency/goodput
//!    ladder as the offered rate climbs from idle to overload;
//! 2. the DSE engine's traffic axis: a sweep whose grid includes
//!    `offered_qps`, analyzed under the `{p99_latency_us, energy}`
//!    Pareto objective instead of the offline `{cycles, energy}` one.
//!
//! Run with `cargo run --release --example traffic`.

use cimflow::compiler::compile;
use cimflow::dse_engine::{analysis, EvalCache, Executor, SweepSpec, TrafficSpec};
use cimflow::sim::{SimOptions, Simulator};
use cimflow::{models, ArchConfig, ServeModel, Strategy, WorkloadSpec};

fn main() -> Result<(), cimflow_dse::DseError> {
    // --- 1. The raw serving mode -----------------------------------------
    let arch = ArchConfig::paper_default().with_chip_count(4);
    let mobilenet = compile(&models::mobilenet_v2(32), &arch, Strategy::DpOptimized)
        .expect("mobilenetv2 compiles on 4 chips");
    let resnet = compile(&models::resnet18(32), &arch, Strategy::DpOptimized)
        .expect("resnet18 compiles on 4 chips");
    let served = [
        ServeModel::compiled("mobilenetv2@32", &mobilenet),
        ServeModel::compiled("resnet18@32", &resnet),
    ];
    // One seeded Poisson stream, replayed identically at every rate:
    // the rate axis compresses the same arrival pattern, so the ladder
    // below is deterministic run to run.
    let workload = WorkloadSpec { requests: 128, ..WorkloadSpec::default() };

    println!("co-located serving, mobilenetv2 + resnet18 on 4 chips:");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "offered qps", "p50 us", "p99 us", "goodput qps", "mean batch", "backlog"
    );
    for offered_qps in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let report = Simulator::serve(&served, &workload, offered_qps, SimOptions::default())
            .expect("the workload serves");
        println!(
            "{:>12} {:>12.1} {:>12.1} {:>12.1} {:>10.2} {:>8}",
            offered_qps,
            report.p50_latency_us(),
            report.p99_latency_us(),
            report.goodput_qps,
            report.mean_batch,
            report.peak_queue_depth
        );
        if offered_qps == 1_000_000 {
            println!(
                "    saturation: goodput pinned at {:.1} qps (pipeline bound {:.1} qps)",
                report.goodput_qps, report.saturation_qps
            );
        }
    }

    // --- 2. The DSE traffic axis -----------------------------------------
    // The same scenario as a declarative sweep: the offered rate is one
    // more grid axis, and the analysis layer trades p99 tail latency
    // against serving energy instead of offline cycles.
    let spec = SweepSpec::new()
        .with_model("mobilenetv2", 32)
        .with_model("resnet18", 32)
        .with_strategies(&[Strategy::DpOptimized])
        .with_chip_counts(&[4])
        .with_traffic(
            TrafficSpec::new(&[1_000, 50_000, 1_000_000])
                .with_workload(WorkloadSpec { requests: 64, ..WorkloadSpec::default() })
                .colocated(),
        );
    let cache = EvalCache::new();
    let outcomes = Executor::with_workers(2).run_spec(&spec, &cache)?;

    println!("\nDSE sweep over the offered-QPS axis ({} points):", outcomes.len());
    let frontier = analysis::pareto_frontier_with(&outcomes, analysis::Objective::P99Latency);
    for (index, outcome) in outcomes.iter().enumerate() {
        let Some(serving) = outcome.evaluation().and_then(|e| e.serving.as_ref()) else {
            continue;
        };
        println!(
            "  {:<16} @ {:>9} qps: p99 {:>10.1} us, {:>8.3} mJ, goodput {:>10.1} qps{}",
            outcome.point.model.name,
            serving.offered_qps,
            serving.p99_latency_us,
            serving.energy_mj,
            serving.goodput_qps,
            if frontier.contains(&index) { "  <- p99/energy frontier" } else { "" }
        );
    }
    Ok(())
}
