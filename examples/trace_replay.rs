//! Trace-recorded timing replay: compile + record a design point once,
//! then re-time whole families of timing-only variants (frequency,
//! memory-port placement) by replaying the recorded trace — bit-exact
//! against the full interpreter, at a fraction of its cost.
//!
//! Two surfaces are shown:
//!
//! 1. the raw `Simulator::record` / `ReplayEngine` pair on one compiled
//!    program, with a bit-exactness check against a from-scratch
//!    compile + simulate of a re-timed architecture;
//! 2. the DSE engine's trace-aware batch path: a sweep whose grid
//!    includes the timing-only frequency/memory-port axes records each
//!    trace group once and replays the rest, reported per point through
//!    `Evaluation::eval_path`.
//!
//! Run with `cargo run --release --example trace_replay`.

use std::time::Instant;

use cimflow::compiler::compile;
use cimflow::sim::{ReplayEngine, SimOptions, Simulator};
use cimflow::{ArchConfig, Strategy};
use cimflow_dse::{EvalCache, Executor, SweepSpec};
use cimflow_nn::models;

fn main() -> Result<(), cimflow_dse::DseError> {
    // --- 1. The raw engine -----------------------------------------------
    let model = models::mobilenet_v2(32);
    let arch = ArchConfig::paper_default();
    let compiled = compile(&model, &arch, Strategy::DpOptimized).expect("the seed model compiles");

    let started = Instant::now();
    let (trace, recorded_report) = Simulator::record(&compiled).expect("the recording run");
    let record_time = started.elapsed();
    println!(
        "recorded mobilenetv2@32 in {record_time:.2?}: {} trace ops, {} cycles",
        trace.op_count(),
        recorded_report.total_cycles
    );

    // A 24-point timing-only family: 6 frequencies x 4 port placements.
    let points: Vec<(ArchConfig, SimOptions)> = [400u32, 600, 800, 1000, 1200, 1600]
        .iter()
        .flat_map(|&frequency| {
            [0u32, 13, 27, 41].iter().map(move |&port| {
                (
                    ArchConfig::paper_default()
                        .with_frequency_mhz(frequency)
                        .with_memory_port(port),
                    SimOptions::default(),
                )
            })
        })
        .collect();

    let engine = ReplayEngine::new(&trace);
    let started = Instant::now();
    let reports = engine.replay_batch(&points);
    let replay_time = started.elapsed();
    assert!(reports.iter().all(Result::is_ok), "every timing-only variant replays");
    let replay_rate = points.len() as f64 / replay_time.as_secs_f64();
    println!(
        "replayed {} timing-only variants in {replay_time:.2?} ({replay_rate:.0} points/s)",
        points.len(),
    );

    // Bit-exactness spot check: the replay of one re-timed point equals a
    // from-scratch compile + simulate of that architecture.
    let (retimed, options) = &points[7];
    let fresh_compiled = compile(&model, retimed, Strategy::DpOptimized).expect("recompiles");
    let fresh = Simulator::with_options(&fresh_compiled, *options).run().expect("simulates");
    let replayed = reports[7].as_ref().expect("replayed");
    assert_eq!(replayed, &fresh, "replay must be bit-exact, never an approximation");
    println!(
        "bit-exact: replay of {} MHz / port {} matches the interpreter ({} cycles, {:.3} mJ)",
        retimed.chip().frequency_mhz,
        retimed.chip().memory_port,
        fresh.total_cycles,
        fresh.energy_mj()
    );

    // --- 2. The DSE batch surface ----------------------------------------
    // The same reuse, driven from a sweep grid: points sharing a compile
    // fingerprint form one trace group; the executor records each group
    // once and replays the rest.
    let spec = SweepSpec::new()
        .named("trace_replay example")
        .with_model("mobilenetv2", 32)
        .with_strategies(&[Strategy::DpOptimized])
        .with_chip_counts(&[1, 2])
        .with_frequencies_mhz(&[500, 750, 1000])
        .with_memory_ports(&[0, 27]);
    println!(
        "\nsweep of {} points = 2 trace groups (one per chip count) x 6 timing variants",
        spec.point_count()
    );

    let cache = EvalCache::new();
    let started = Instant::now();
    let outcomes = Executor::with_workers(4).run_spec(&spec, &cache)?;
    let elapsed = started.elapsed();

    assert!(outcomes.iter().all(|o| o.result.is_ok()), "every point evaluates");
    let replayed = outcomes
        .iter()
        .filter(|o| o.result.as_ref().is_ok_and(|e| e.eval_path.is_replayed()))
        .count();
    let interpreted = outcomes.len() - replayed;
    assert!(replayed > 0, "timing-only sweeps must replay");
    assert_eq!(interpreted, 2, "exactly one recording per trace group");
    println!(
        "{} points in {elapsed:.2?}: {interpreted} interpreted (recordings), {replayed} replayed",
        outcomes.len(),
    );

    // Replayed points carry full reports: distinct timings per frequency.
    let cycles_at = |frequency: u64, port: u64, chips: u64| {
        outcomes
            .iter()
            .find(|o| {
                o.point.frequency_mhz == frequency
                    && o.point.memory_port == port
                    && o.point.chip_count == chips
            })
            .and_then(|o| o.evaluation())
            .map(|e| e.simulation.total_cycles)
            .expect("grid point present")
    };
    assert_eq!(
        cycles_at(500, 0, 1),
        cycles_at(1000, 0, 1),
        "cycle counts are frequency-invariant (latency scales, cycles do not)"
    );
    assert_ne!(cycles_at(1000, 0, 1), cycles_at(1000, 27, 1), "port placement re-times the NoC");
    println!(
        "port placement effect at 1 chip: port 0 -> {} cycles, port 27 -> {} cycles",
        cycles_at(1000, 0, 1),
        cycles_at(1000, 27, 1)
    );
    Ok(())
}
