//! Quick start: compile and simulate one benchmark model on the default
//! CIMFlow architecture (Table I) and print the detailed report.
//!
//! Run with `cargo run --release --example quickstart`.

use cimflow::{models, CimFlow, Strategy};

fn main() -> Result<(), cimflow::CimFlowError> {
    // The default architecture of Table I: 64 cores, 16 MGs × 8 macros of
    // 512×64 bit-cells per core, 512 KB local memory, 8-byte NoC flits.
    let flow = CimFlow::with_default_arch();

    // A reduced-resolution ResNet18 keeps the quick start fast; use 224
    // for the full ImageNet geometry.
    let model = models::resnet18(64);
    println!("workload: {model}");

    let evaluation = flow.evaluate(&model, Strategy::DpOptimized)?;
    println!("\n=== evaluation ===");
    println!("{evaluation}");
    println!("compilation: {}", evaluation.compilation);
    Ok(())
}
