//! Compare the three compilation strategies of the paper (generic
//! mapping, CIM-MLC-style operator duplication, DP-based optimization) on
//! the benchmark suite — a miniature version of the Fig. 5 experiment.
//!
//! Run with `cargo run --release --example compiler_strategies`.

use cimflow::{models, CimFlow, Strategy};

fn main() -> Result<(), cimflow::CimFlowError> {
    let flow = CimFlow::with_default_arch();
    let resolution = 32;

    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>12} {:>8}",
        "model", "strategy", "cycles", "speedup", "energy (mJ)", "stages"
    );
    for model in models::benchmark_suite(resolution) {
        let baseline = flow.evaluate(&model, Strategy::GenericMapping)?;
        for strategy in Strategy::ALL {
            let evaluation = flow.evaluate(&model, strategy)?;
            println!(
                "{:<16} {:>12} {:>14} {:>12.2} {:>12.3} {:>8}",
                model.name,
                strategy.to_string(),
                evaluation.simulation.total_cycles,
                evaluation.speedup_over(&baseline),
                evaluation.simulation.energy_mj(),
                evaluation.stages
            );
        }
    }
    Ok(())
}
