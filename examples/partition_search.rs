//! Joint hierarchical partition search in five minutes: compile a
//! weight-heavy model for a 2-chip system under both `SearchMode`s,
//! compare the searched split against the sequential pass order, and
//! watch the tile-streaming hand-off overlap the chips inside one
//! inference.
//!
//! Run with `cargo run --release --example partition_search`.

use cimflow::compiler::{compile_with_options, CompileOptions};
use cimflow::sim::{HandoffMode, SimOptions, Simulator};
use cimflow::{models, ArchConfig, SearchMode, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = models::vgg19(32);
    let arch = ArchConfig::paper_default().with_chip_count(2);

    let mut compiled = Vec::new();
    for search in [SearchMode::Sequential, SearchMode::Joint] {
        let options =
            CompileOptions { strategy: Strategy::DpOptimized, search, ..CompileOptions::default() };
        let program = compile_with_options(&model, &arch, options)?;
        println!(
            "{search:>10}: {} candidate(s) explored, estimated interval {} cycles, split {:?}",
            program.system.explored_candidates,
            program.system.estimated_interval_cycles,
            (0..program.system.chip_count)
                .map(|chip| program.system.chip_groups(chip).len())
                .collect::<Vec<_>>(),
        );
        compiled.push((search, program));
    }
    let (_, sequential) = &compiled[0];
    let (_, joint) = &compiled[1];
    assert!(
        joint.system.estimated_interval_cycles <= sequential.system.estimated_interval_cycles,
        "the joint search is never worse than the sequential seed"
    );
    assert!(joint.system.explored_candidates > 1);
    assert_eq!(joint.report.search_candidates, joint.system.explored_candidates as usize);

    println!();
    for (search, program) in &compiled {
        let stream = Simulator::new(program).run()?;
        let retire = Simulator::with_options(
            program,
            SimOptions { handoff: HandoffMode::AtRetirement, ..SimOptions::default() },
        )
        .run()?;
        println!(
            "{search:>10}: interval {} cycles, latency {} (streaming) vs {} (at-retirement), \
             overlap {} cycles",
            stream.pipeline_interval_cycles(),
            stream.total_cycles,
            retire.total_cycles,
            stream.total_overlap_cycles(),
        );
        assert!(stream.total_cycles <= retire.total_cycles, "streaming never slows a run down");
        assert_eq!(retire.total_overlap_cycles(), 0);
    }

    // The joint split's estimated advantage holds up in the simulator on
    // this workload.
    let sim_seq = Simulator::new(sequential).run()?;
    let sim_joint = Simulator::new(joint).run()?;
    assert!(sim_joint.pipeline_interval_cycles() <= sim_seq.pipeline_interval_cycles());
    println!(
        "\njoint search: measured pipeline interval {} -> {} cycles",
        sim_seq.pipeline_interval_cycles(),
        sim_joint.pipeline_interval_cycles()
    );
    Ok(())
}
