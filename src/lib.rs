//! Workspace umbrella crate: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`) of the CIMFlow
//! reproduction. The library surface simply re-exports the [`cimflow`]
//! facade crate; depend on `cimflow` directly in downstream projects.

pub use cimflow::*;
